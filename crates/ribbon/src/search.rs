//! Ribbon's BO-driven search for the optimal diverse-pool configuration.
//!
//! The loop implements Sec. 4 of the paper: a Gaussian-Process surrogate (Matérn 5/2 with the
//! integer rounding kernel) is refitted after every evaluation, Expected Improvement picks the
//! next configuration among those not yet explored and not pruned, and *active pruning*
//! removes (a) the entire dominated box under any configuration that violates QoS by more than
//! a threshold θ and (b) the dominating box above any QoS-satisfying configuration (which can
//! only be more expensive).
//!
//! # The ask/tell search driver
//!
//! [`SearchDriver`] runs any [`ribbon_bo::Optimizer`] (the GP engine, TPE, or a baseline
//! adapter) against a [`ConfigEvaluator`]: it asks for a batch of up to `batch` candidates,
//! pipelines the batch into the parallel [`ConfigEvaluator::evaluate_many`], and tells each
//! completed evaluation back. With `batch = 1` the loop is bit-identical to the historical
//! one-suggestion-at-a-time loop (pinned by the `ask_tell_differential` suite); larger
//! batches amortize the acquisition scan over several evaluations.
//!
//! With a `fidelity` fraction set the driver adds **multi-fidelity successive halving**:
//! each asked batch is first scored on a prefix of the query stream (the evaluator's
//! reduced-fidelity cache tier), candidates whose *provable* full-stream objective upper
//! bound falls below the best full evaluation so far are discarded as estimates, and only
//! the survivors are promoted to full simulations. Fidelity spend is accounted exactly in
//! [`SearchTrace::fidelity`].
//!
//! [`ConfigEvaluator`]: crate::evaluator::ConfigEvaluator
//! [`ConfigEvaluator::evaluate_many`]: crate::evaluator::ConfigEvaluator::evaluate_many

use crate::evaluator::{BatchEvaluator, Evaluation};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use ribbon_bo::{Acquisition, BoError, BoOptimizer, BoSettings, Optimizer, Outcome};
use ribbon_gp::FitConfig;
use serde::{Deserialize, Serialize};

/// Settings for Ribbon's search.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RibbonSettings {
    /// Maximum number of configuration evaluations per search.
    pub max_evaluations: usize,
    /// Random space-filling evaluations before the GP takes over.
    pub initial_samples: usize,
    /// Prune threshold θ: a configuration violating QoS by more than this (i.e. with
    /// `rate < T_qos − θ`) prunes its entire dominated box.
    pub prune_threshold: f64,
    /// Acquisition function (Expected Improvement by default).
    pub acquisition: Acquisition,
    /// GP hyperparameter grid.
    pub fit: FitConfig,
    /// Optional starting configuration evaluated before the BO loop (the paper's search
    /// starts from the currently deployed configuration).
    pub start_config: Option<Vec<u32>>,
    /// Reuse the GP surrogate incrementally across iterations (see
    /// [`ribbon_bo::BoSettings::reuse_surrogate`]); `false` restores the historical
    /// refit-everything-per-iteration behaviour, which produces bit-identical traces and is
    /// kept as the measurable baseline for the perf-trajectory harness.
    pub reuse_surrogate: bool,
    /// Worker threads for the BO acquisition scan (`None` = available parallelism); the
    /// suggested configurations are identical for every thread count.
    pub scan_threads: Option<usize>,
    /// Candidates asked per ask/tell round (`1` = the historical one-at-a-time loop,
    /// bit-identical to the committed golden traces; larger values amortize the
    /// acquisition scan over a diverse batch evaluated in parallel).
    #[serde(default)]
    pub batch: usize,
    /// Optional multi-fidelity fraction in `(0, 1)`: asked batches are first scored on
    /// this fraction of the query stream and only provably-competitive candidates are
    /// promoted to full simulations (`None` = always full fidelity).
    #[serde(default)]
    pub fidelity: Option<f64>,
}

impl Default for RibbonSettings {
    fn default() -> Self {
        RibbonSettings {
            max_evaluations: 40,
            initial_samples: 3,
            prune_threshold: 0.01,
            acquisition: Acquisition::default(),
            fit: FitConfig::default(),
            start_config: None,
            reuse_surrogate: true,
            scan_threads: None,
            batch: 1,
            fidelity: None,
        }
    }
}

impl RibbonSettings {
    /// A faster variant using the coarse GP grid (used inside benchmarks and tests).
    pub fn fast() -> Self {
        RibbonSettings {
            fit: FitConfig::coarse(),
            ..Default::default()
        }
    }
}

/// Exact accounting of reduced-fidelity (prefix-stream) work done by a search — the cost
/// side of the multi-fidelity ledger, measured in *simulated queries* so partial streams
/// add up exactly.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FidelitySpend {
    /// Number of prefix simulations run (reduced-fidelity cache misses).
    pub prefix_evaluations: usize,
    /// Total queries simulated across all prefix simulations.
    pub prefix_queries: usize,
    /// Length of the full query stream (the denominator for full-sim equivalents).
    pub full_stream_len: usize,
}

impl FidelitySpend {
    /// Prefix spend expressed in full-simulation equivalents (e.g. two half-stream
    /// prefixes = 1.0).
    pub fn full_equivalents(&self) -> f64 {
        if self.full_stream_len == 0 {
            0.0
        } else {
            self.prefix_queries as f64 / self.full_stream_len as f64
        }
    }

    /// Merges another spend record (same evaluator / stream length).
    pub fn merge(&mut self, other: &FidelitySpend) {
        self.prefix_evaluations += other.prefix_evaluations;
        self.prefix_queries += other.prefix_queries;
        self.full_stream_len = self.full_stream_len.max(other.full_stream_len);
    }
}

/// The ordered record of one search run: every configuration evaluated, in order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchTrace {
    /// Name of the strategy that produced the trace.
    pub strategy: String,
    /// Evaluations in the order they were performed.
    pub evaluations: Vec<Evaluation>,
    /// Reduced-fidelity (prefix-stream) measurements of candidates successive halving
    /// discarded without a full simulation, in discard order. Estimates never enter
    /// [`SearchTrace::evaluations`] or the best-of queries below — they are the auditable
    /// record of what the multi-fidelity stage ruled out.
    #[serde(default)]
    pub estimates: Vec<Evaluation>,
    /// Exact reduced-fidelity spend of this run.
    #[serde(default)]
    pub fidelity: FidelitySpend,
}

impl SearchTrace {
    /// Creates an empty trace for a strategy.
    pub fn new(strategy: impl Into<String>) -> Self {
        SearchTrace {
            strategy: strategy.into(),
            evaluations: Vec::new(),
            estimates: Vec::new(),
            fidelity: FidelitySpend::default(),
        }
    }

    /// Number of evaluations in the trace.
    pub fn len(&self) -> usize {
        self.evaluations.len()
    }

    /// `true` if no configuration was evaluated.
    pub fn is_empty(&self) -> bool {
        self.evaluations.is_empty()
    }

    /// The evaluations in order.
    pub fn evaluations(&self) -> &[Evaluation] {
        &self.evaluations
    }

    /// The cheapest QoS-satisfying configuration found.
    pub fn best_satisfying(&self) -> Option<&Evaluation> {
        self.evaluations
            .iter()
            .filter(|e| e.meets_qos)
            .min_by(|a, b| a.hourly_cost.partial_cmp(&b.hourly_cost).unwrap())
    }

    /// The evaluation with the highest Eq. 2 objective value.
    pub fn best_objective(&self) -> Option<&Evaluation> {
        self.evaluations
            .iter()
            .max_by(|a, b| a.objective.partial_cmp(&b.objective).unwrap())
    }

    /// Number of evaluated configurations that violate QoS.
    pub fn num_violations(&self) -> usize {
        self.evaluations.iter().filter(|e| !e.meets_qos).count()
    }

    /// Index (1-based sample count) of the first QoS-satisfying evaluation whose hourly cost
    /// is at most `cost` (with a small tolerance); `None` if never reached.
    pub fn samples_until_cost_at_most(&self, cost: f64) -> Option<usize> {
        self.evaluations
            .iter()
            .position(|e| e.meets_qos && e.hourly_cost <= cost + 1e-9)
            .map(|i| i + 1)
    }

    /// Sum of the hourly costs of every evaluated configuration — the exploration-cost proxy
    /// used by Fig. 13 (every evaluation runs for the same wall-clock time, so cost is
    /// proportional to the evaluated pools' hourly prices).
    pub fn exploration_cost(&self) -> f64 {
        self.evaluations.iter().map(|e| e.hourly_cost).sum()
    }

    /// Appends another trace's evaluations (used to merge a warm-start evaluation with the
    /// subsequent search). Estimates and fidelity spend are carried along.
    pub fn extend_from(&mut self, other: &SearchTrace) {
        self.evaluations.extend(other.evaluations.iter().cloned());
        self.estimates.extend(other.estimates.iter().cloned());
        self.fidelity.merge(&other.fidelity);
    }
}

/// Budget-aware ask/tell search loop over one evaluator (see the module docs).
///
/// The driver owns the three mechanical concerns every strategy shares — batching,
/// parallel evaluation, and multi-fidelity promotion — while the [`Optimizer`] owns *what*
/// to ask and the `outcome_of` rule owns how an [`Evaluation`] maps to the strategy's
/// [`Outcome`] (objective value + pruning verdicts).
pub struct SearchDriver<'a> {
    evaluator: &'a dyn BatchEvaluator,
    batch: usize,
    fidelity: Option<f64>,
}

impl<'a> SearchDriver<'a> {
    /// A driver with the historical one-at-a-time behaviour (`batch = 1`, full fidelity).
    pub fn new(evaluator: &'a dyn BatchEvaluator) -> Self {
        SearchDriver {
            evaluator,
            batch: 1,
            fidelity: None,
        }
    }

    /// Sets the ask-batch size (clamped to at least 1).
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// Sets the multi-fidelity fraction (`None` or `>= 1.0` disables successive halving).
    pub fn with_fidelity(mut self, fidelity: Option<f64>) -> Self {
        self.fidelity = fidelity.filter(|f| *f > 0.0 && *f < 1.0);
        self
    }

    /// Runs the ask → evaluate → tell loop until `budget` evaluations are *spent* or the
    /// optimizer's space is exhausted. Appends to an existing `trace` (so a warm-start
    /// evaluation performed by the caller counts against the budget).
    ///
    /// Budget accounting is **exact-cost**: every full simulation costs 1, and in
    /// multi-fidelity mode each prefix score costs its exact fraction of a full stream
    /// (`prefix_len / full_stream_len`), so a fidelity-0.25 run that prefix-screens 40
    /// candidates and promotes 20 has spent `20 + 40 × 0.25 = 30` evaluations — the same
    /// bill as 30 one-at-a-time full simulations. The spend is charged per asked
    /// candidate (not per cache miss), so identical runs cost the same regardless of
    /// cache state.
    pub fn run(
        &self,
        opt: &mut dyn Optimizer,
        rng: &mut dyn RngCore,
        budget: usize,
        outcome_of: &dyn Fn(&Evaluation) -> Outcome,
        trace: &mut SearchTrace,
    ) {
        let full_len = self.evaluator.num_queries().max(1);
        let mut prefix_evaluations: usize = 0;
        let mut prefix_queries: usize = 0;

        while trace.len() < budget {
            // Exact-cost budget: prefix spend counts at its fraction of a full stream.
            let spent = trace.len() as f64 + prefix_queries as f64 / full_len as f64;
            if spent >= budget as f64 {
                break;
            }
            // In multi-fidelity mode ask the full batch even near the budget edge: the
            // prefix scores decide which few candidates deserve the remaining full
            // simulations, and the rest are handed back via `forget`.
            let q = if self.fidelity.is_some() {
                self.batch
            } else {
                self.batch.min(budget - trace.len())
            };
            let asked = match opt.ask(rng, q) {
                Ok(batch) if !batch.is_empty() => batch,
                _ => break,
            };
            match self.fidelity {
                Some(f) if asked.len() > 1 => {
                    let k = self.evaluator.prefix_len(f);
                    prefix_evaluations += asked.len();
                    prefix_queries += k * asked.len();
                    // Full evaluations still affordable once every prefix score so far
                    // (including this rung's) is billed at its exact cost.
                    let cap = (budget as f64 - prefix_queries as f64 / full_len as f64)
                        .floor()
                        .max(0.0) as usize;
                    self.run_rung(opt, &asked, k, cap, outcome_of, trace);
                }
                _ => {
                    for eval in self.evaluator.evaluate_many(&asked) {
                        if trace.len() >= budget {
                            opt.forget(&eval.config);
                            continue;
                        }
                        let recorded = opt.tell(outcome_of(&eval)).unwrap_or(false);
                        if recorded {
                            trace.evaluations.push(eval);
                        }
                    }
                }
            }
        }

        trace.fidelity.prefix_evaluations += prefix_evaluations;
        trace.fidelity.prefix_queries += prefix_queries;
        trace.fidelity.full_stream_len = full_len;
    }

    /// One successive-halving rung: prefix-score the asked batch (`k` queries each),
    /// discard candidates whose provable objective upper bound cannot beat the best full
    /// evaluation so far, promote the rest (best-bound first) to full parallel
    /// simulations, up to `cap` total full evaluations. The best-bound candidate is
    /// promoted unconditionally — even past `cap` — so every rung grows the trace and
    /// the budget loop terminates in at most `budget` rungs.
    ///
    /// Soundness: a candidate is discarded only when `upper_bound < best_full`, and
    /// `best_full` is the objective of a full evaluation already in the trace — so a
    /// discarded candidate's true full-fidelity objective is *strictly* below something the
    /// trace kept. The `sh_never_discards_the_best` proptest pins this end to end.
    fn run_rung(
        &self,
        opt: &mut dyn Optimizer,
        asked: &[Vec<u32>],
        k: usize,
        cap: usize,
        outcome_of: &dyn Fn(&Evaluation) -> Outcome,
        trace: &mut SearchTrace,
    ) {
        let prefix = self.evaluator.evaluate_many_prefix(asked, k);
        let best_full = trace
            .evaluations
            .iter()
            .map(|e| e.objective)
            .fold(f64::NEG_INFINITY, f64::max);

        // Stable sort: best upper bound first, ask order on ties.
        let mut order: Vec<usize> = (0..asked.len()).collect();
        order.sort_by(|&a, &b| {
            prefix[b]
                .objective_upper_bound
                .partial_cmp(&prefix[a].objective_upper_bound)
                .unwrap_or(std::cmp::Ordering::Equal)
        });

        let mut promoted: Vec<Vec<u32>> = Vec::new();
        for &i in &order {
            let pe = &prefix[i];
            if promoted.is_empty() {
                // Every rung promotes at least its best-bound candidate (the classic
                // successive-halving rule). Without this, a streak of all-discard rungs
                // would leave the trace unchanged while the budget loop grinds through
                // the open set one batch-sized full acquisition scan at a time.
                promoted.push(asked[i].clone());
            } else if pe.objective_upper_bound < best_full {
                // Provably cannot be the best: hand the prefix score back as an estimate —
                // the optimizer retires the configuration without counting it as a real
                // observation — and skip the full simulation.
                let _ = opt.tell(Outcome::estimate(asked[i].clone(), pe.evaluation.objective));
                trace.estimates.push(pe.evaluation.clone());
            } else if trace.len() + promoted.len() < cap {
                promoted.push(asked[i].clone());
            } else {
                // The remaining budget cannot cover this survivor: hand it back unasked.
                opt.forget(&asked[i]);
            }
        }

        for eval in self.evaluator.evaluate_many(&promoted) {
            let recorded = opt.tell(outcome_of(&eval)).unwrap_or(false);
            if recorded {
                trace.evaluations.push(eval);
            }
        }
    }
}

/// Ribbon's Bayesian-Optimization search strategy.
#[derive(Debug, Clone, Default)]
pub struct RibbonSearch {
    settings: RibbonSettings,
}

impl RibbonSearch {
    /// Creates a search with the given settings.
    pub fn new(settings: RibbonSettings) -> Self {
        RibbonSearch { settings }
    }

    /// The settings in use.
    pub fn settings(&self) -> &RibbonSettings {
        &self.settings
    }

    /// Runs the search from scratch on an evaluator.
    pub fn run(&self, evaluator: &dyn BatchEvaluator, seed: u64) -> SearchTrace {
        let mut bo = self.make_optimizer(evaluator);
        self.run_with(evaluator, &mut bo, seed)
    }

    /// Builds the BO optimizer for an evaluator's lattice (exposed so the load adapter can
    /// warm-start it with estimates and pruning before running).
    pub fn make_optimizer(&self, evaluator: &dyn BatchEvaluator) -> BoOptimizer {
        BoOptimizer::new(
            evaluator.lattice(),
            BoSettings {
                initial_samples: self.settings.initial_samples,
                acquisition: self.settings.acquisition,
                fit: self.settings.fit.clone(),
                reuse_surrogate: self.settings.reuse_surrogate,
                scan_threads: self.settings.scan_threads,
            },
        )
    }

    /// The strategy's rule for turning an [`Evaluation`] into an ask/tell [`Outcome`]:
    /// Eq. 2 objective plus the paper's active-pruning verdicts (prune the dominated box
    /// under a `rate < T_qos − θ` violator, the dominating box above any satisfier).
    pub fn outcome_rule(
        &self,
        evaluator: &dyn BatchEvaluator,
    ) -> impl Fn(&Evaluation) -> Outcome + 'static {
        let target_rate = evaluator.target_rate();
        let threshold = self.settings.prune_threshold;
        move |e: &Evaluation| {
            Outcome::new(e.config.clone(), e.objective)
                .with_prunes(e.satisfaction_rate < target_rate - threshold, e.meets_qos)
        }
    }

    /// Runs the search loop with an existing (possibly warm-started) optimizer, through
    /// the ask/tell [`SearchDriver`] (batch size and fidelity from the settings; the
    /// default `batch = 1` is bit-identical to [`RibbonSearch::run_legacy_with`]).
    ///
    /// At most `max_evaluations` *new* evaluations are performed in this call.
    pub fn run_with(
        &self,
        evaluator: &dyn BatchEvaluator,
        bo: &mut BoOptimizer,
        seed: u64,
    ) -> SearchTrace {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut trace = SearchTrace::new("RIBBON");
        let outcome_of = self.outcome_rule(evaluator);

        if let Some(start) = &self.settings.start_config {
            if bo.lattice().contains(start) && !bo.is_explored(start) {
                let eval = evaluator.evaluate(start);
                let _ = bo.tell(outcome_of(&eval));
                trace.evaluations.push(eval);
            }
        }

        SearchDriver::new(evaluator)
            .with_batch(self.settings.batch)
            .with_fidelity(self.settings.fidelity)
            .run(
                bo,
                &mut rng,
                self.settings.max_evaluations,
                &outcome_of,
                &mut trace,
            );
        trace
    }

    /// The historical one-suggestion-at-a-time loop, kept verbatim as the differential
    /// oracle for the ask/tell driver (`tests/ask_tell_differential.rs` pins
    /// [`RibbonSearch::run_with`] at `batch = 1` bit-identical to this).
    pub fn run_legacy_with(
        &self,
        evaluator: &dyn BatchEvaluator,
        bo: &mut BoOptimizer,
        seed: u64,
    ) -> SearchTrace {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut trace = SearchTrace::new("RIBBON");
        let target_rate = evaluator.target_rate();

        if let Some(start) = &self.settings.start_config {
            if bo.lattice().contains(start) && !bo.is_explored(start) {
                self.evaluate_and_record(evaluator, bo, start.clone(), target_rate, &mut trace);
            }
        }

        while trace.len() < self.settings.max_evaluations {
            let suggestion = match bo.suggest(&mut rng) {
                Ok(s) => s,
                Err(BoError::SpaceExhausted) => break,
                Err(_) => break,
            };
            self.evaluate_and_record(evaluator, bo, suggestion.config, target_rate, &mut trace);
        }
        trace
    }

    fn evaluate_and_record(
        &self,
        evaluator: &dyn BatchEvaluator,
        bo: &mut BoOptimizer,
        config: Vec<u32>,
        target_rate: f64,
        trace: &mut SearchTrace,
    ) {
        let eval = evaluator.evaluate(&config);
        // A BO observe can only fail for invalid configs / non-finite objectives, neither of
        // which the evaluator can produce; ignore the result defensively.
        let _ = bo.observe(config.clone(), eval.objective);
        if eval.satisfaction_rate < target_rate - self.settings.prune_threshold {
            bo.prune_below(config.clone());
        }
        if eval.meets_qos {
            bo.prune_above(config);
        }
        trace.evaluations.push(eval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::{ConfigEvaluator, EvaluatorSettings};
    use ribbon_models::{ModelKind, Workload};

    fn small_evaluator() -> ConfigEvaluator {
        let mut w = Workload::standard(ModelKind::MtWnd);
        w.num_queries = 800;
        ConfigEvaluator::new(
            &w,
            EvaluatorSettings {
                explicit_bounds: Some(vec![6, 4, 6]),
                ..Default::default()
            },
        )
    }

    fn fast_settings(max_evals: usize) -> RibbonSettings {
        RibbonSettings {
            max_evaluations: max_evals,
            ..RibbonSettings::fast()
        }
    }

    #[test]
    fn search_respects_the_evaluation_budget() {
        let ev = small_evaluator();
        let trace = RibbonSearch::new(fast_settings(8)).run(&ev, 1);
        assert!(trace.len() <= 8);
        assert!(!trace.is_empty());
        assert_eq!(trace.strategy, "RIBBON");
    }

    #[test]
    fn search_never_evaluates_the_same_configuration_twice() {
        let ev = small_evaluator();
        let trace = RibbonSearch::new(fast_settings(15)).run(&ev, 2);
        let mut seen = std::collections::HashSet::new();
        for e in trace.evaluations() {
            assert!(seen.insert(e.config.clone()), "duplicate {:?}", e.config);
        }
    }

    #[test]
    fn search_finds_a_qos_satisfying_configuration() {
        let ev = small_evaluator();
        let trace = RibbonSearch::new(fast_settings(20)).run(&ev, 3);
        let best = trace.best_satisfying();
        assert!(
            best.is_some(),
            "20 evaluations must find at least one satisfying pool"
        );
        assert!(best.unwrap().meets_qos);
    }

    #[test]
    fn start_config_is_evaluated_first() {
        let ev = small_evaluator();
        let mut settings = fast_settings(6);
        settings.start_config = Some(vec![5, 0, 0]);
        let trace = RibbonSearch::new(settings).run(&ev, 4);
        assert_eq!(trace.evaluations()[0].config, vec![5, 0, 0]);
    }

    #[test]
    fn out_of_lattice_start_config_is_ignored() {
        let ev = small_evaluator();
        let mut settings = fast_settings(4);
        settings.start_config = Some(vec![50, 0, 0]);
        let trace = RibbonSearch::new(settings).run(&ev, 5);
        assert!(trace
            .evaluations()
            .iter()
            .all(|e| e.config != vec![50, 0, 0]));
    }

    #[test]
    fn same_seed_reproduces_the_same_trace() {
        let ev1 = small_evaluator();
        let ev2 = small_evaluator();
        let t1 = RibbonSearch::new(fast_settings(10)).run(&ev1, 77);
        let t2 = RibbonSearch::new(fast_settings(10)).run(&ev2, 77);
        let c1: Vec<_> = t1.evaluations().iter().map(|e| e.config.clone()).collect();
        let c2: Vec<_> = t2.evaluations().iter().map(|e| e.config.clone()).collect();
        assert_eq!(c1, c2);
    }

    #[test]
    fn trace_metrics_are_consistent() {
        let ev = small_evaluator();
        let trace = RibbonSearch::new(fast_settings(12)).run(&ev, 6);
        assert_eq!(
            trace.num_violations(),
            trace.evaluations().iter().filter(|e| !e.meets_qos).count()
        );
        let cost_sum: f64 = trace.evaluations().iter().map(|e| e.hourly_cost).sum();
        assert!((trace.exploration_cost() - cost_sum).abs() < 1e-9);
        if let Some(best) = trace.best_satisfying() {
            assert!(trace.samples_until_cost_at_most(best.hourly_cost).is_some());
            assert!(trace.samples_until_cost_at_most(0.0).is_none());
        }
        if let Some(bo) = trace.best_objective() {
            assert!(trace
                .evaluations()
                .iter()
                .all(|e| e.objective <= bo.objective));
        }
    }

    #[test]
    fn small_lattice_terminates_before_budget_when_exhausted() {
        let mut w = Workload::standard(ModelKind::MtWnd);
        w.num_queries = 400;
        let ev = ConfigEvaluator::new(
            &w,
            EvaluatorSettings {
                explicit_bounds: Some(vec![1, 1, 1]),
                ..Default::default()
            },
        );
        let trace = RibbonSearch::new(fast_settings(100)).run(&ev, 7);
        assert!(
            trace.len() <= 7,
            "only 7 non-empty configs exist in a 2x2x2 lattice"
        );
    }

    #[test]
    fn batched_driver_is_bit_identical_to_the_legacy_loop_at_batch_1() {
        let ev1 = small_evaluator();
        let ev2 = small_evaluator();
        let search = RibbonSearch::new(fast_settings(14));
        let mut bo_new = search.make_optimizer(&ev1);
        let mut bo_old = search.make_optimizer(&ev2);
        let new = search.run_with(&ev1, &mut bo_new, 42);
        let old = search.run_legacy_with(&ev2, &mut bo_old, 42);
        assert_eq!(new.evaluations, old.evaluations);
        assert!(new.estimates.is_empty());
        assert_eq!(new.fidelity.prefix_evaluations, 0);
    }

    #[test]
    fn batched_search_stays_within_budget_and_never_repeats() {
        let ev = small_evaluator();
        let mut settings = fast_settings(16);
        settings.batch = 5;
        let trace = RibbonSearch::new(settings).run(&ev, 11);
        assert!(trace.len() <= 16);
        let mut seen = std::collections::HashSet::new();
        for e in trace.evaluations() {
            assert!(seen.insert(e.config.clone()), "duplicate {:?}", e.config);
        }
        assert!(
            trace.best_satisfying().is_some(),
            "batched search should still find a satisfying pool"
        );
    }

    #[test]
    fn multi_fidelity_discards_are_recorded_as_estimates_with_exact_spend() {
        let ev = small_evaluator();
        let mut settings = fast_settings(12);
        settings.batch = 6;
        settings.fidelity = Some(0.25);
        let trace = RibbonSearch::new(settings).run(&ev, 13);
        assert!(trace.len() <= 12);
        // Whatever was prefix-simulated is accounted exactly.
        let k = ev.prefix_len(0.25);
        assert_eq!(trace.fidelity.full_stream_len, ev.queries().len());
        assert_eq!(
            trace.fidelity.prefix_evaluations,
            ev.num_prefix_simulations()
        );
        assert_eq!(
            trace.fidelity.prefix_queries,
            ev.num_prefix_simulations() * k
        );
        // No estimate's config also appears as a full evaluation.
        for est in &trace.estimates {
            assert!(
                trace.evaluations.iter().all(|e| e.config != est.config),
                "{:?} both estimated and fully evaluated",
                est.config
            );
        }
        // Soundness: no discarded candidate would have beaten the best kept one.
        if let Some(best) = trace.best_objective() {
            for est in &trace.estimates {
                let full = ev.evaluate(&est.config);
                assert!(
                    full.objective < best.objective,
                    "discarded {:?} (full {}) beats kept best {}",
                    est.config,
                    full.objective,
                    best.objective
                );
            }
        }
    }

    #[test]
    fn extend_from_concatenates_traces() {
        let mut a = SearchTrace::new("A");
        let b = SearchTrace::new("B");
        a.extend_from(&b);
        assert!(a.is_empty());
        let ev = small_evaluator();
        let t = RibbonSearch::new(fast_settings(3)).run(&ev, 8);
        let mut merged = SearchTrace::new("merged");
        merged.extend_from(&t);
        merged.extend_from(&t);
        assert_eq!(merged.len(), 2 * t.len());
    }
}
