//! Ribbon's BO-driven search for the optimal diverse-pool configuration.
//!
//! The loop implements Sec. 4 of the paper: a Gaussian-Process surrogate (Matérn 5/2 with the
//! integer rounding kernel) is refitted after every evaluation, Expected Improvement picks the
//! next configuration among those not yet explored and not pruned, and *active pruning*
//! removes (a) the entire dominated box under any configuration that violates QoS by more than
//! a threshold θ and (b) the dominating box above any QoS-satisfying configuration (which can
//! only be more expensive).

use crate::evaluator::{ConfigEvaluator, Evaluation};
use rand::rngs::StdRng;
use rand::SeedableRng;
use ribbon_bo::{Acquisition, BoError, BoOptimizer, BoSettings};
use ribbon_gp::FitConfig;
use serde::{Deserialize, Serialize};

/// Settings for Ribbon's search.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RibbonSettings {
    /// Maximum number of configuration evaluations per search.
    pub max_evaluations: usize,
    /// Random space-filling evaluations before the GP takes over.
    pub initial_samples: usize,
    /// Prune threshold θ: a configuration violating QoS by more than this (i.e. with
    /// `rate < T_qos − θ`) prunes its entire dominated box.
    pub prune_threshold: f64,
    /// Acquisition function (Expected Improvement by default).
    pub acquisition: Acquisition,
    /// GP hyperparameter grid.
    pub fit: FitConfig,
    /// Optional starting configuration evaluated before the BO loop (the paper's search
    /// starts from the currently deployed configuration).
    pub start_config: Option<Vec<u32>>,
    /// Reuse the GP surrogate incrementally across iterations (see
    /// [`ribbon_bo::BoSettings::reuse_surrogate`]); `false` restores the historical
    /// refit-everything-per-iteration behaviour, which produces bit-identical traces and is
    /// kept as the measurable baseline for the perf-trajectory harness.
    pub reuse_surrogate: bool,
    /// Worker threads for the BO acquisition scan (`None` = available parallelism); the
    /// suggested configurations are identical for every thread count.
    pub scan_threads: Option<usize>,
}

impl Default for RibbonSettings {
    fn default() -> Self {
        RibbonSettings {
            max_evaluations: 40,
            initial_samples: 3,
            prune_threshold: 0.01,
            acquisition: Acquisition::default(),
            fit: FitConfig::default(),
            start_config: None,
            reuse_surrogate: true,
            scan_threads: None,
        }
    }
}

impl RibbonSettings {
    /// A faster variant using the coarse GP grid (used inside benchmarks and tests).
    pub fn fast() -> Self {
        RibbonSettings {
            fit: FitConfig::coarse(),
            ..Default::default()
        }
    }
}

/// The ordered record of one search run: every configuration evaluated, in order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchTrace {
    /// Name of the strategy that produced the trace.
    pub strategy: String,
    /// Evaluations in the order they were performed.
    pub evaluations: Vec<Evaluation>,
}

impl SearchTrace {
    /// Creates an empty trace for a strategy.
    pub fn new(strategy: impl Into<String>) -> Self {
        SearchTrace {
            strategy: strategy.into(),
            evaluations: Vec::new(),
        }
    }

    /// Number of evaluations in the trace.
    pub fn len(&self) -> usize {
        self.evaluations.len()
    }

    /// `true` if no configuration was evaluated.
    pub fn is_empty(&self) -> bool {
        self.evaluations.is_empty()
    }

    /// The evaluations in order.
    pub fn evaluations(&self) -> &[Evaluation] {
        &self.evaluations
    }

    /// The cheapest QoS-satisfying configuration found.
    pub fn best_satisfying(&self) -> Option<&Evaluation> {
        self.evaluations
            .iter()
            .filter(|e| e.meets_qos)
            .min_by(|a, b| a.hourly_cost.partial_cmp(&b.hourly_cost).unwrap())
    }

    /// The evaluation with the highest Eq. 2 objective value.
    pub fn best_objective(&self) -> Option<&Evaluation> {
        self.evaluations
            .iter()
            .max_by(|a, b| a.objective.partial_cmp(&b.objective).unwrap())
    }

    /// Number of evaluated configurations that violate QoS.
    pub fn num_violations(&self) -> usize {
        self.evaluations.iter().filter(|e| !e.meets_qos).count()
    }

    /// Index (1-based sample count) of the first QoS-satisfying evaluation whose hourly cost
    /// is at most `cost` (with a small tolerance); `None` if never reached.
    pub fn samples_until_cost_at_most(&self, cost: f64) -> Option<usize> {
        self.evaluations
            .iter()
            .position(|e| e.meets_qos && e.hourly_cost <= cost + 1e-9)
            .map(|i| i + 1)
    }

    /// Sum of the hourly costs of every evaluated configuration — the exploration-cost proxy
    /// used by Fig. 13 (every evaluation runs for the same wall-clock time, so cost is
    /// proportional to the evaluated pools' hourly prices).
    pub fn exploration_cost(&self) -> f64 {
        self.evaluations.iter().map(|e| e.hourly_cost).sum()
    }

    /// Appends another trace's evaluations (used to merge a warm-start evaluation with the
    /// subsequent search).
    pub fn extend_from(&mut self, other: &SearchTrace) {
        self.evaluations.extend(other.evaluations.iter().cloned());
    }
}

/// Ribbon's Bayesian-Optimization search strategy.
#[derive(Debug, Clone, Default)]
pub struct RibbonSearch {
    settings: RibbonSettings,
}

impl RibbonSearch {
    /// Creates a search with the given settings.
    pub fn new(settings: RibbonSettings) -> Self {
        RibbonSearch { settings }
    }

    /// The settings in use.
    pub fn settings(&self) -> &RibbonSettings {
        &self.settings
    }

    /// Runs the search from scratch on an evaluator.
    pub fn run(&self, evaluator: &ConfigEvaluator, seed: u64) -> SearchTrace {
        let mut bo = self.make_optimizer(evaluator);
        self.run_with(evaluator, &mut bo, seed)
    }

    /// Builds the BO optimizer for an evaluator's lattice (exposed so the load adapter can
    /// warm-start it with estimates and pruning before running).
    pub fn make_optimizer(&self, evaluator: &ConfigEvaluator) -> BoOptimizer {
        BoOptimizer::new(
            evaluator.lattice(),
            BoSettings {
                initial_samples: self.settings.initial_samples,
                acquisition: self.settings.acquisition,
                fit: self.settings.fit.clone(),
                reuse_surrogate: self.settings.reuse_surrogate,
                scan_threads: self.settings.scan_threads,
            },
        )
    }

    /// Runs the search loop with an existing (possibly warm-started) optimizer.
    ///
    /// At most `max_evaluations` *new* evaluations are performed in this call.
    pub fn run_with(
        &self,
        evaluator: &ConfigEvaluator,
        bo: &mut BoOptimizer,
        seed: u64,
    ) -> SearchTrace {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut trace = SearchTrace::new("RIBBON");
        let target_rate = evaluator.objective().target_rate();

        if let Some(start) = &self.settings.start_config {
            if bo.lattice().contains(start) && !bo.is_explored(start) {
                self.evaluate_and_record(evaluator, bo, start.clone(), target_rate, &mut trace);
            }
        }

        while trace.len() < self.settings.max_evaluations {
            let suggestion = match bo.suggest(&mut rng) {
                Ok(s) => s,
                Err(BoError::SpaceExhausted) => break,
                Err(_) => break,
            };
            self.evaluate_and_record(evaluator, bo, suggestion.config, target_rate, &mut trace);
        }
        trace
    }

    fn evaluate_and_record(
        &self,
        evaluator: &ConfigEvaluator,
        bo: &mut BoOptimizer,
        config: Vec<u32>,
        target_rate: f64,
        trace: &mut SearchTrace,
    ) {
        let eval = evaluator.evaluate(&config);
        // A BO observe can only fail for invalid configs / non-finite objectives, neither of
        // which the evaluator can produce; ignore the result defensively.
        let _ = bo.observe(config.clone(), eval.objective);
        if eval.satisfaction_rate < target_rate - self.settings.prune_threshold {
            bo.prune_below(config.clone());
        }
        if eval.meets_qos {
            bo.prune_above(config);
        }
        trace.evaluations.push(eval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::EvaluatorSettings;
    use ribbon_models::{ModelKind, Workload};

    fn small_evaluator() -> ConfigEvaluator {
        let mut w = Workload::standard(ModelKind::MtWnd);
        w.num_queries = 800;
        ConfigEvaluator::new(
            &w,
            EvaluatorSettings {
                explicit_bounds: Some(vec![6, 4, 6]),
                ..Default::default()
            },
        )
    }

    fn fast_settings(max_evals: usize) -> RibbonSettings {
        RibbonSettings {
            max_evaluations: max_evals,
            ..RibbonSettings::fast()
        }
    }

    #[test]
    fn search_respects_the_evaluation_budget() {
        let ev = small_evaluator();
        let trace = RibbonSearch::new(fast_settings(8)).run(&ev, 1);
        assert!(trace.len() <= 8);
        assert!(!trace.is_empty());
        assert_eq!(trace.strategy, "RIBBON");
    }

    #[test]
    fn search_never_evaluates_the_same_configuration_twice() {
        let ev = small_evaluator();
        let trace = RibbonSearch::new(fast_settings(15)).run(&ev, 2);
        let mut seen = std::collections::HashSet::new();
        for e in trace.evaluations() {
            assert!(seen.insert(e.config.clone()), "duplicate {:?}", e.config);
        }
    }

    #[test]
    fn search_finds_a_qos_satisfying_configuration() {
        let ev = small_evaluator();
        let trace = RibbonSearch::new(fast_settings(20)).run(&ev, 3);
        let best = trace.best_satisfying();
        assert!(
            best.is_some(),
            "20 evaluations must find at least one satisfying pool"
        );
        assert!(best.unwrap().meets_qos);
    }

    #[test]
    fn start_config_is_evaluated_first() {
        let ev = small_evaluator();
        let mut settings = fast_settings(6);
        settings.start_config = Some(vec![5, 0, 0]);
        let trace = RibbonSearch::new(settings).run(&ev, 4);
        assert_eq!(trace.evaluations()[0].config, vec![5, 0, 0]);
    }

    #[test]
    fn out_of_lattice_start_config_is_ignored() {
        let ev = small_evaluator();
        let mut settings = fast_settings(4);
        settings.start_config = Some(vec![50, 0, 0]);
        let trace = RibbonSearch::new(settings).run(&ev, 5);
        assert!(trace
            .evaluations()
            .iter()
            .all(|e| e.config != vec![50, 0, 0]));
    }

    #[test]
    fn same_seed_reproduces_the_same_trace() {
        let ev1 = small_evaluator();
        let ev2 = small_evaluator();
        let t1 = RibbonSearch::new(fast_settings(10)).run(&ev1, 77);
        let t2 = RibbonSearch::new(fast_settings(10)).run(&ev2, 77);
        let c1: Vec<_> = t1.evaluations().iter().map(|e| e.config.clone()).collect();
        let c2: Vec<_> = t2.evaluations().iter().map(|e| e.config.clone()).collect();
        assert_eq!(c1, c2);
    }

    #[test]
    fn trace_metrics_are_consistent() {
        let ev = small_evaluator();
        let trace = RibbonSearch::new(fast_settings(12)).run(&ev, 6);
        assert_eq!(
            trace.num_violations(),
            trace.evaluations().iter().filter(|e| !e.meets_qos).count()
        );
        let cost_sum: f64 = trace.evaluations().iter().map(|e| e.hourly_cost).sum();
        assert!((trace.exploration_cost() - cost_sum).abs() < 1e-9);
        if let Some(best) = trace.best_satisfying() {
            assert!(trace.samples_until_cost_at_most(best.hourly_cost).is_some());
            assert!(trace.samples_until_cost_at_most(0.0).is_none());
        }
        if let Some(bo) = trace.best_objective() {
            assert!(trace
                .evaluations()
                .iter()
                .all(|e| e.objective <= bo.objective));
        }
    }

    #[test]
    fn small_lattice_terminates_before_budget_when_exhausted() {
        let mut w = Workload::standard(ModelKind::MtWnd);
        w.num_queries = 400;
        let ev = ConfigEvaluator::new(
            &w,
            EvaluatorSettings {
                explicit_bounds: Some(vec![1, 1, 1]),
                ..Default::default()
            },
        );
        let trace = RibbonSearch::new(fast_settings(100)).run(&ev, 7);
        assert!(
            trace.len() <= 7,
            "only 7 non-empty configs exist in a 2x2x2 lattice"
        );
    }

    #[test]
    fn extend_from_concatenates_traces() {
        let mut a = SearchTrace::new("A");
        let b = SearchTrace::new("B");
        a.extend_from(&b);
        assert!(a.is_empty());
        let ev = small_evaluator();
        let t = RibbonSearch::new(fast_settings(3)).run(&ev, 8);
        let mut merged = SearchTrace::new("merged");
        merged.extend_from(&t);
        merged.extend_from(&t);
        assert_eq!(merged.len(), 2 * t.len());
    }
}
