//! Derived metrics over search traces: the homogeneous baseline, cost savings, exploration
//! cost, samples-to-savings curves, and QoS-violation counts — everything the paper's
//! Figs. 9, 10, 13, 14 and 15 report — plus the cost accounting of *online* serving:
//! reconfiguration transition costs and time-averaged cost reports against the naive
//! always-max-pool baseline.

use crate::evaluator::{ConfigEvaluator, Evaluation};
use crate::search::SearchTrace;
use ribbon_cloudsim::{CostModel, InstanceType, PoolSpec};
use serde::{Deserialize, Serialize};

/// The optimal *homogeneous* pool: the smallest number of base-type instances meeting QoS.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HomogeneousOptimum {
    /// Number of base-type instances.
    pub count: u32,
    /// Hourly cost of the homogeneous pool.
    pub hourly_cost: f64,
    /// The full evaluation of that pool.
    pub evaluation: Evaluation,
}

/// Finds the minimal homogeneous pool of the workload's base type that meets QoS, probing
/// counts 1..=`max_count`. Returns `None` if even `max_count` instances violate QoS.
///
/// Counts are probed in windows of the evaluator's parallelism through
/// [`ConfigEvaluator::evaluate_many`]: a window evaluates concurrently, then the replay
/// stops at the first satisfying count — the same answer as the serial scan, at the cost of
/// speculatively simulating at most one window past it (cached for later use). A 1-thread
/// evaluator degenerates to the exact serial probe.
pub fn homogeneous_optimum(
    evaluator: &ConfigEvaluator,
    max_count: u32,
) -> Option<HomogeneousOptimum> {
    let window = evaluator.parallelism().max(1) as u32;
    let mut count = 1u32;
    while count <= max_count {
        let configs: Vec<Vec<u32>> = (count..=max_count.min(count + window - 1))
            .map(|c| evaluator.homogeneous_config(c))
            .collect();
        for eval in evaluator.evaluate_many(&configs) {
            if eval.meets_qos {
                return Some(HomogeneousOptimum {
                    count,
                    hourly_cost: eval.hourly_cost,
                    evaluation: eval,
                });
            }
            count += 1;
        }
    }
    None
}

/// Metrics derived from one search trace relative to a homogeneous baseline cost and,
/// optionally, the ground-truth heterogeneous optimum cost.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceMetrics {
    /// Strategy name.
    pub strategy: String,
    /// Total evaluations in the trace.
    pub num_evaluations: usize,
    /// Number of QoS-violating configurations evaluated.
    pub num_violations: usize,
    /// Hourly cost of the cheapest QoS-satisfying configuration found (if any).
    pub best_cost: Option<f64>,
    /// Per-type counts of that configuration.
    pub best_config: Option<Vec<u32>>,
    /// Cost saving of the best found configuration vs the homogeneous baseline, in percent.
    pub saving_percent: Option<f64>,
    /// Sum of hourly costs over every evaluated configuration (exploration-cost proxy).
    pub exploration_cost: f64,
}

impl TraceMetrics {
    /// Computes the metrics of a trace against a homogeneous baseline cost.
    pub fn new(trace: &SearchTrace, homogeneous_cost: f64) -> Self {
        let best = trace.best_satisfying();
        TraceMetrics {
            strategy: trace.strategy.clone(),
            num_evaluations: trace.len(),
            num_violations: trace.num_violations(),
            best_cost: best.map(|e| e.hourly_cost),
            best_config: best.map(|e| e.config.clone()),
            saving_percent: best
                .map(|e| CostModel::saving_percent(homogeneous_cost, e.hourly_cost)),
            exploration_cost: trace.exploration_cost(),
        }
    }

    /// Exploration cost as a percentage of an exhaustive-search exploration cost (Fig. 13).
    pub fn exploration_cost_percent(&self, exhaustive_cost: f64) -> f64 {
        if exhaustive_cost <= 0.0 {
            return 0.0;
        }
        self.exploration_cost / exhaustive_cost * 100.0
    }
}

/// Number of samples a trace needed before first reaching a configuration that (a) meets QoS
/// and (b) achieves at least `saving_percent` savings versus `homogeneous_cost` (Fig. 10).
/// Returns `None` if the trace never reaches that saving.
pub fn samples_to_reach_saving(
    trace: &SearchTrace,
    homogeneous_cost: f64,
    saving_percent: f64,
) -> Option<usize> {
    let cost_target = homogeneous_cost * (1.0 - saving_percent / 100.0);
    trace.samples_until_cost_at_most(cost_target)
}

/// Number of samples a trace needed before first evaluating a QoS-satisfying configuration
/// whose cost matches the ground-truth optimal cost (within a tolerance).
pub fn samples_to_reach_optimum(trace: &SearchTrace, optimal_cost: f64) -> Option<usize> {
    trace.samples_until_cost_at_most(optimal_cost)
}

/// Number of QoS-violating configurations sampled strictly before the optimum was first
/// reached (Fig. 14). If the optimum is never reached, counts violations over the whole trace.
pub fn violations_before_optimum(trace: &SearchTrace, optimal_cost: f64) -> usize {
    let cutoff = samples_to_reach_optimum(trace, optimal_cost).unwrap_or(trace.len());
    trace.evaluations()[..cutoff]
        .iter()
        .filter(|e| !e.meets_qos)
        .count()
}

/// Estimated cost of one reconfiguration's transition window: while the outgoing
/// instances drain and the incoming ones spin up, the **per-type union** of the two pools
/// coexists and is billed for the `overlap_s` seconds.
///
/// The union — not the sum — is what actually runs: instances surviving from `old` into
/// `new` exist once, so summing both pools would double-bill them. The streaming
/// simulator's per-slot accounting ([`ribbon_cloudsim::StreamingSim::cost_so_far`]) is the
/// exact ground truth; this helper is the closed-form estimate charged to each
/// [`crate::online::ReconfigEvent`] so controller reports can attribute cost to decisions.
pub fn transition_overlap_cost(old: &PoolSpec, new: &PoolSpec, overlap_s: f64) -> f64 {
    let mut union: std::collections::BTreeMap<InstanceType, u32> =
        std::collections::BTreeMap::new();
    for (ty, &count) in old.types.iter().zip(&old.counts) {
        let c = union.entry(*ty).or_insert(0);
        *c = (*c).max(count);
    }
    for (ty, &count) in new.types.iter().zip(&new.counts) {
        let c = union.entry(*ty).or_insert(0);
        *c = (*c).max(count);
    }
    let union_hourly: f64 = union
        .iter()
        .map(|(ty, &c)| ty.hourly_price() * c as f64)
        .sum();
    union_hourly * overlap_s.max(0.0) / 3600.0
}

/// Hourly cost of the naive "provision for the peak" pool: every type at its search bound.
/// The online controller's time-averaged cost must beat this to justify existing.
pub fn max_pool_hourly_cost(types: &[InstanceType], bounds: &[u32]) -> f64 {
    PoolSpec::from_counts(types, bounds).hourly_cost()
}

/// Time-averaged cost of an online serving run, compared against a static baseline pool
/// (typically [`max_pool_hourly_cost`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineCostReport {
    /// Total accrued cost of the run in USD (exact per-slot billing).
    pub total_cost_usd: f64,
    /// Wall-clock duration of the run in seconds.
    pub duration_s: f64,
    /// Time-averaged hourly cost in USD/hr.
    pub mean_hourly_cost: f64,
    /// The static baseline's hourly cost in USD/hr.
    pub baseline_hourly_cost: f64,
    /// Saving of the online run vs the baseline, in percent (positive = cheaper).
    pub saving_percent: f64,
}

/// Time-averaged hourly cost of a run: `total × 3600 / duration`, 0.0 for an
/// instantaneous run. The single definition behind [`OnlineCostReport`] and the
/// scenario layer's serve reports.
pub fn mean_hourly_cost(total_cost_usd: f64, duration_s: f64) -> f64 {
    if duration_s > 0.0 {
        total_cost_usd * 3600.0 / duration_s
    } else {
        0.0
    }
}

impl OnlineCostReport {
    /// Builds a report from a run's exact accrued cost and duration.
    pub fn new(total_cost_usd: f64, duration_s: f64, baseline_hourly_cost: f64) -> Self {
        let mean_hourly_cost = mean_hourly_cost(total_cost_usd, duration_s);
        OnlineCostReport {
            total_cost_usd,
            duration_s,
            mean_hourly_cost,
            baseline_hourly_cost,
            saving_percent: CostModel::saving_percent(baseline_hourly_cost, mean_hourly_cost),
        }
    }
}

/// The series of achievable cost savings (percent vs the homogeneous baseline) as a function
/// of the number of samples: entry `i` is the best saving among the first `i + 1` samples
/// (monotone non-decreasing, `None` until a QoS-satisfying configuration is seen).
pub fn saving_curve(trace: &SearchTrace, homogeneous_cost: f64) -> Vec<Option<f64>> {
    let mut best_cost = f64::INFINITY;
    trace
        .evaluations()
        .iter()
        .map(|e| {
            if e.meets_qos && e.hourly_cost < best_cost {
                best_cost = e.hourly_cost;
            }
            if best_cost.is_finite() {
                Some(CostModel::saving_percent(homogeneous_cost, best_cost))
            } else {
                None
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::EvaluatorSettings;
    use crate::search::{RibbonSearch, RibbonSettings, SearchTrace};
    use crate::strategies::{ExhaustiveSearch, SearchStrategy};
    use ribbon_cloudsim::PoolSpec;
    use ribbon_models::{ModelKind, Workload};

    fn evaluator() -> ConfigEvaluator {
        let mut w = Workload::standard(ModelKind::MtWnd);
        w.num_queries = 800;
        ConfigEvaluator::new(
            &w,
            EvaluatorSettings {
                explicit_bounds: Some(vec![6, 4, 6]),
                ..Default::default()
            },
        )
    }

    /// Builds a synthetic trace from (config, cost, meets_qos) triples without simulation.
    fn synthetic_trace(entries: &[(Vec<u32>, f64, bool)]) -> SearchTrace {
        let mut t = SearchTrace::new("synthetic");
        for (config, cost, meets) in entries {
            t.evaluations.push(Evaluation {
                config: config.clone(),
                pool: PoolSpec::homogeneous(ribbon_cloudsim::InstanceType::T3, 1),
                satisfaction_rate: if *meets { 0.999 } else { 0.5 },
                hourly_cost: *cost,
                meets_qos: *meets,
                objective: if *meets { 0.8 } else { 0.2 },
                mean_latency_s: 0.01,
                tail_latency_s: 0.02,
                tier_totals: Vec::new(),
            });
        }
        t
    }

    #[test]
    fn homogeneous_optimum_is_minimal() {
        let ev = evaluator();
        let opt = homogeneous_optimum(&ev, 8).expect("g4dn can satisfy MT-WND QoS");
        assert!(opt.evaluation.meets_qos);
        if opt.count > 1 {
            assert!(!ev.evaluate_homogeneous(opt.count - 1).meets_qos);
        }
        assert!((opt.hourly_cost - opt.count as f64 * 0.526).abs() < 1e-9);
    }

    #[test]
    fn homogeneous_optimum_none_when_unreachable() {
        let ev = evaluator();
        // One instance can never satisfy this load.
        assert!(homogeneous_optimum(&ev, 1).is_none());
    }

    #[test]
    fn trace_metrics_reflect_best_found() {
        let trace = synthetic_trace(&[
            (vec![1, 0, 0], 3.0, false),
            (vec![2, 0, 0], 2.0, true),
            (vec![3, 0, 0], 1.5, true),
            (vec![4, 0, 0], 2.5, false),
        ]);
        let m = TraceMetrics::new(&trace, 2.0);
        assert_eq!(m.num_evaluations, 4);
        assert_eq!(m.num_violations, 2);
        assert_eq!(m.best_cost, Some(1.5));
        assert_eq!(m.best_config, Some(vec![3, 0, 0]));
        assert!((m.saving_percent.unwrap() - 25.0).abs() < 1e-9);
        assert!((m.exploration_cost - 9.0).abs() < 1e-9);
        assert!((m.exploration_cost_percent(90.0) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn trace_metrics_without_satisfying_configs() {
        let trace = synthetic_trace(&[(vec![1, 0, 0], 3.0, false)]);
        let m = TraceMetrics::new(&trace, 2.0);
        assert_eq!(m.best_cost, None);
        assert_eq!(m.saving_percent, None);
    }

    #[test]
    fn samples_to_reach_saving_finds_the_first_qualifying_sample() {
        let trace = synthetic_trace(&[
            (vec![1, 0, 0], 3.0, false),
            (vec![2, 0, 0], 1.9, true), // 5% saving vs 2.0
            (vec![3, 0, 0], 1.5, true), // 25% saving
        ]);
        assert_eq!(samples_to_reach_saving(&trace, 2.0, 5.0), Some(2));
        assert_eq!(samples_to_reach_saving(&trace, 2.0, 20.0), Some(3));
        assert_eq!(samples_to_reach_saving(&trace, 2.0, 40.0), None);
    }

    #[test]
    fn violations_before_optimum_counts_only_the_prefix() {
        let trace = synthetic_trace(&[
            (vec![1, 0, 0], 3.0, false),
            (vec![2, 0, 0], 2.0, true),
            (vec![3, 0, 0], 1.5, true), // optimum reached at sample 3
            (vec![4, 0, 0], 2.5, false),
        ]);
        assert_eq!(samples_to_reach_optimum(&trace, 1.5), Some(3));
        assert_eq!(violations_before_optimum(&trace, 1.5), 1);
        // If the optimum cost is never reached, every violation counts.
        assert_eq!(violations_before_optimum(&trace, 1.0), 2);
    }

    #[test]
    fn saving_curve_is_monotone_non_decreasing() {
        let trace = synthetic_trace(&[
            (vec![1, 0, 0], 3.0, false),
            (vec![2, 0, 0], 1.9, true),
            (vec![3, 0, 0], 2.5, true),
            (vec![4, 0, 0], 1.4, true),
        ]);
        let curve = saving_curve(&trace, 2.0);
        assert_eq!(curve[0], None);
        let vals: Vec<f64> = curve.iter().flatten().copied().collect();
        assert_eq!(vals.len(), 3);
        for w in vals.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert!((vals.last().unwrap() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn end_to_end_ribbon_beats_homogeneous_baseline_on_the_small_workload() {
        let ev = evaluator();
        let homo = homogeneous_optimum(&ev, 8).unwrap();
        let trace = RibbonSearch::new(RibbonSettings {
            max_evaluations: 25,
            ..RibbonSettings::fast()
        })
        .run_search(&ev, 11);
        let metrics = TraceMetrics::new(&trace, homo.hourly_cost);
        let best = metrics.best_cost.expect("ribbon finds a satisfying config");
        assert!(
            best <= homo.hourly_cost + 1e-9,
            "heterogeneous best ${best:.3} should not exceed homogeneous ${:.3}",
            homo.hourly_cost
        );
    }

    #[test]
    fn transition_cost_bills_the_union_pool_for_the_overlap() {
        use ribbon_cloudsim::InstanceType::*;
        // [5xg4dn] -> [3xg4dn + 4xt3]: during the overlap 5 g4dn coexist with 4 t3 (the
        // 3 surviving g4dn are NOT double-billed), so the union is [5xg4dn + 4xt3].
        let old = PoolSpec::from_counts(&[G4dn, T3], &[5, 0]);
        let new = PoolSpec::from_counts(&[G4dn, T3], &[3, 4]);
        let union_hourly = 5.0 * 0.526 + 4.0 * 0.1664;
        let expected = union_hourly * 36.0 / 3600.0;
        assert!((transition_overlap_cost(&old, &new, 36.0) - expected).abs() < 1e-12);
        assert_eq!(transition_overlap_cost(&old, &new, -1.0), 0.0);
        // Disjoint type sets degenerate to the sum (nothing survives).
        let cpu = PoolSpec::from_counts(&[T3], &[2]);
        let gpu = PoolSpec::from_counts(&[G4dn], &[1]);
        let sum = (2.0 * 0.1664 + 0.526) * 10.0 / 3600.0;
        assert!((transition_overlap_cost(&cpu, &gpu, 10.0) - sum).abs() < 1e-12);
    }

    #[test]
    fn online_cost_report_time_averages_and_compares_to_baseline() {
        // $1 over 30 minutes → $2/hr, 50% below a $4/hr always-max baseline.
        let r = OnlineCostReport::new(1.0, 1800.0, 4.0);
        assert!((r.mean_hourly_cost - 2.0).abs() < 1e-12);
        assert!((r.saving_percent - 50.0).abs() < 1e-12);
        assert_eq!(OnlineCostReport::new(1.0, 0.0, 4.0).mean_hourly_cost, 0.0);
    }

    #[test]
    fn max_pool_cost_is_every_type_at_its_bound() {
        use ribbon_cloudsim::InstanceType::*;
        let cost = max_pool_hourly_cost(&[G4dn, C5, R5n], &[7, 4, 7]);
        assert!((cost - (7.0 * 0.526 + 4.0 * 0.34 + 7.0 * 0.149)).abs() < 1e-9);
    }

    #[test]
    fn exploration_cost_of_any_strategy_is_below_exhaustive() {
        let mut w = Workload::standard(ModelKind::MtWnd);
        w.num_queries = 600;
        let ev = ConfigEvaluator::new(
            &w,
            EvaluatorSettings {
                explicit_bounds: Some(vec![5, 0, 4]),
                ..Default::default()
            },
        );
        let exhaustive = ExhaustiveSearch::full().run_search(&ev, 0);
        let ribbon = RibbonSearch::new(RibbonSettings {
            max_evaluations: 10,
            ..RibbonSettings::fast()
        })
        .run_search(&ev, 1);
        assert!(ribbon.exploration_cost() < exhaustive.exploration_cost());
    }
}
