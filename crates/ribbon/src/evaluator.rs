//! Configuration evaluation: "deploying" a pool configuration on the simulated cloud and
//! measuring its QoS satisfaction rate, cost, and objective value.
//!
//! Every search strategy shares one [`ConfigEvaluator`] per workload. The evaluator
//! pre-generates the query stream once (so all configurations are judged against the same
//! trace), computes the per-type search bounds m_i at construction, and caches evaluations —
//! a configuration's satisfaction rate is deterministic given the stream, so re-evaluating it
//! would only waste time.
//!
//! # Batch evaluation and parallelism
//!
//! [`ConfigEvaluator::evaluate_many`] evaluates a batch of *independent* configurations,
//! fanning the cache misses out over the workspace's parallel engine
//! ([`ribbon_cloudsim::parallel`]) behind the shared, thread-safe evaluation cache. The
//! contract every caller relies on:
//!
//! * **order-preserving** — results come back parallel to the input batch;
//! * **bit-identical to serial** — the simulation is a pure function of
//!   `(pool, queries, model)`, and any *stochastic* per-configuration component added in the
//!   future must seed its RNG from [`ConfigEvaluator::config_seed`] (a stable per-config
//!   derivation) rather than a shared RNG, so scheduling order can never leak into results;
//! * **single-simulation** — duplicates inside a batch, and configurations already cached,
//!   are simulated at most once; the cache is shared with the serial [`evaluate`] path.
//!
//! [`evaluate`]: ConfigEvaluator::evaluate

use crate::bounds::{find_bounds, BoundSettings};
use crate::objective::RibbonObjective;
use parking_lot::Mutex;
use ribbon_bo::ConfigLattice;
use ribbon_cloudsim::{
    parallel, simulate_stats, PoolSpec, QosEvidence, QosPolicy, Query, StreamingSim,
    StreamingSimConfig, TierSet, TierTotals, WindowConfig,
};
use ribbon_models::{ModelProfile, Workload};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Settings controlling evaluator construction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvaluatorSettings {
    /// Hard cap on every per-type bound m_i.
    pub max_per_type: u32,
    /// Satisfaction-rate improvement below which the bound probe considers a type saturated.
    pub saturation_epsilon: f64,
    /// Explicit bounds overriding the probe (must match the pool's type count when set).
    pub explicit_bounds: Option<Vec<u32>>,
    /// Worker threads for batch evaluation (`None` = the machine's available parallelism;
    /// `Some(1)` forces fully serial evaluation, useful for differential tests).
    pub threads: Option<usize>,
}

impl Default for EvaluatorSettings {
    fn default() -> Self {
        EvaluatorSettings {
            max_per_type: 12,
            saturation_epsilon: 0.001,
            explicit_bounds: None,
            threads: None,
        }
    }
}

/// The outcome of evaluating one pool configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    /// Per-type instance counts, parallel to the workload's diverse pool.
    pub config: Vec<u32>,
    /// The concrete pool that was simulated.
    pub pool: PoolSpec,
    /// The QoS policy's achievement score in `[0, 1]`. For the default tail-rate policy
    /// this is the fraction of queries within the latency target; other policies grade
    /// their own criterion (see [`ribbon_cloudsim::QosPolicy::score`]).
    pub satisfaction_rate: f64,
    /// Hourly cost of the pool in USD.
    pub hourly_cost: f64,
    /// Whether the QoS target is met.
    pub meets_qos: bool,
    /// The Eq. 2 objective value.
    pub objective: f64,
    /// Mean end-to-end latency in seconds.
    pub mean_latency_s: f64,
    /// Tail latency at the QoS percentile, in seconds.
    pub tail_latency_s: f64,
    /// Per-tier whole-stream totals (tier-set order) when the workload declares
    /// `[[qos.tiers]]`; empty — and absent from serialized traces — otherwise.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub tier_totals: Vec<TierTotals>,
}

/// A reduced-fidelity evaluation of a configuration against a **prefix** of the query
/// stream, produced by [`ConfigEvaluator::evaluate_many_prefix`].
///
/// Besides the prefix measurement itself it carries a *sound upper bound* on the Eq. 2
/// objective the configuration could achieve on the **full** stream: the simulator is
/// prefix-closed (the first k latencies of a full run equal the k-query run — see
/// [`ribbon_cloudsim::QosPolicy::prefix_score_upper_bound`]), so the bound lets successive
/// halving discard candidates provably rather than heuristically.
#[derive(Debug, Clone, PartialEq)]
pub struct PrefixEvaluation {
    /// The prefix measurement (satisfaction rate, cost, objective — all on the prefix).
    pub evaluation: Evaluation,
    /// Number of queries in the evaluated prefix.
    pub prefix_len: usize,
    /// Upper bound on the full-stream Eq. 2 objective of this configuration.
    pub objective_upper_bound: f64,
}

/// The evaluator interface the ask/tell search machinery drives: a cached, batch-parallel
/// mapping from lattice configurations to [`Evaluation`]s, with a reduced-fidelity prefix
/// tier whose objective upper bounds are *sound* (never below the configuration's true
/// full-stream objective — the invariant successive halving's discards rely on).
///
/// [`ConfigEvaluator`] is the pool-only implementation; `VariantEvaluator` extends the
/// lattice with a per-type serving-variant axis. The search driver and [`RibbonSearch`]
/// accept `&dyn BatchEvaluator`, so `&ConfigEvaluator` call sites coerce unchanged.
///
/// [`RibbonSearch`]: crate::search::RibbonSearch
pub trait BatchEvaluator {
    /// Length of the full query stream (the denominator for fidelity accounting).
    fn num_queries(&self) -> usize;
    /// The prefix length (in queries) of a fidelity fraction in `(0, 1]`, at least 1 and
    /// at most the full stream.
    fn prefix_len(&self, fidelity: f64) -> usize;
    /// The configuration lattice the optimizer searches.
    fn lattice(&self) -> ConfigLattice;
    /// The QoS target rate that pruning verdicts compare satisfaction against.
    fn target_rate(&self) -> f64;
    /// Evaluates one configuration (cached).
    fn evaluate(&self, config: &[u32]) -> Evaluation;
    /// Evaluates a batch of configurations, order-preserving and bit-identical to calling
    /// [`BatchEvaluator::evaluate`] serially.
    fn evaluate_many(&self, configs: &[Vec<u32>]) -> Vec<Evaluation>;
    /// Reduced-fidelity batch evaluation against the first `k` queries, with sound
    /// full-stream objective upper bounds.
    fn evaluate_many_prefix(&self, configs: &[Vec<u32>], k: usize) -> Vec<PrefixEvaluation>;
}

impl BatchEvaluator for ConfigEvaluator {
    fn num_queries(&self) -> usize {
        self.queries.len()
    }
    fn prefix_len(&self, fidelity: f64) -> usize {
        ConfigEvaluator::prefix_len(self, fidelity)
    }
    fn lattice(&self) -> ConfigLattice {
        ConfigEvaluator::lattice(self)
    }
    fn target_rate(&self) -> f64 {
        self.objective.target_rate()
    }
    fn evaluate(&self, config: &[u32]) -> Evaluation {
        ConfigEvaluator::evaluate(self, config)
    }
    fn evaluate_many(&self, configs: &[Vec<u32>]) -> Vec<Evaluation> {
        ConfigEvaluator::evaluate_many(self, configs)
    }
    fn evaluate_many_prefix(&self, configs: &[Vec<u32>], k: usize) -> Vec<PrefixEvaluation> {
        ConfigEvaluator::evaluate_many_prefix(self, configs, k)
    }
}

/// Evaluates pool configurations for one workload on the simulated cloud.
pub struct ConfigEvaluator {
    workload: Workload,
    profile: ModelProfile,
    policy: Arc<dyn QosPolicy>,
    queries: Vec<Query>,
    objective: RibbonObjective,
    bounds: Vec<u32>,
    tiers: Option<TierSet>,
    threads: usize,
    // lint:allow(hash-container): lookup-only memo (insert/get by exact key); never iterated
    cache: Mutex<HashMap<Vec<u32>, Evaluation>>,
    simulations: AtomicUsize,
    /// Reduced-fidelity cache tier, keyed by `(prefix length, config)` so different rungs
    /// never collide with each other or with the full-fidelity cache above.
    // lint:allow(hash-container): lookup-only memo (insert/get by exact key); never iterated
    prefix_cache: Mutex<HashMap<(usize, Vec<u32>), PrefixEvaluation>>,
    prefix_simulations: AtomicUsize,
    prefix_queries: AtomicUsize,
}

impl ConfigEvaluator {
    /// Builds an evaluator: generates the workload's query stream, probes the per-type
    /// bounds m_i (unless explicitly provided), and prepares the Eq. 2 objective. The
    /// acceptance criterion is the workload's tail-rate [`ribbon_cloudsim::QosTarget`];
    /// use [`ConfigEvaluator::with_policy`] to judge configurations by any other
    /// [`QosPolicy`].
    pub fn new(workload: &Workload, settings: EvaluatorSettings) -> Self {
        Self::with_policy(workload, settings, Arc::new(workload.qos))
    }

    /// Builds an evaluator that judges configurations against an arbitrary QoS policy.
    ///
    /// With `Arc::new(workload.qos)` this is exactly [`ConfigEvaluator::new`] — same
    /// bounds, same objective, bit-identical evaluations (the invariant the golden search
    /// traces pin).
    pub fn with_policy(
        workload: &Workload,
        settings: EvaluatorSettings,
        policy: Arc<dyn QosPolicy>,
    ) -> Self {
        Self::with_policy_tiered(workload, settings, policy, None)
    }

    /// Builds an evaluator that additionally scores configurations by the tier-weighted
    /// Eq. 2: the planning stream is split across the tier set's priority classes
    /// (deterministic largest-remainder assignment) and simulated through the tiered
    /// serving engine, so premium preemption, best-effort admission drops, and per-tier
    /// deadlines all shape the plan. `tiers: None` is exactly [`with_policy`] —
    /// bit-identical evaluations through the untiered fast path.
    ///
    /// [`with_policy`]: ConfigEvaluator::with_policy
    pub fn with_policy_tiered(
        workload: &Workload,
        settings: EvaluatorSettings,
        policy: Arc<dyn QosPolicy>,
        tiers: Option<TierSet>,
    ) -> Self {
        let profile = workload.profile();
        let queries = workload.stream_config().generate();
        let threads = settings
            .threads
            .unwrap_or_else(parallel::default_threads)
            .max(1);
        let bounds = match settings.explicit_bounds {
            Some(b) => {
                assert_eq!(
                    b.len(),
                    workload.diverse_pool.len(),
                    "explicit bounds must match the pool's type count"
                );
                b
            }
            None => find_bounds(
                &workload.diverse_pool,
                &queries,
                &profile,
                policy.deadline_s(),
                &BoundSettings {
                    max_per_type: settings.max_per_type,
                    saturation_epsilon: settings.saturation_epsilon,
                    threads,
                },
            ),
        };
        let objective = RibbonObjective::new(&workload.diverse_pool, &bounds, policy.threshold());
        ConfigEvaluator {
            workload: workload.clone(),
            profile,
            policy,
            queries,
            objective,
            bounds,
            tiers,
            threads,
            // lint:allow(hash-container): lookup-only memo; never iterated
            cache: Mutex::new(HashMap::new()),
            simulations: AtomicUsize::new(0),
            // lint:allow(hash-container): lookup-only memo; never iterated
            prefix_cache: Mutex::new(HashMap::new()),
            prefix_simulations: AtomicUsize::new(0),
            prefix_queries: AtomicUsize::new(0),
        }
    }

    /// The workload this evaluator serves.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// The QoS policy configurations are judged against.
    pub fn policy(&self) -> &Arc<dyn QosPolicy> {
        &self.policy
    }

    /// The per-type bounds m_i.
    pub fn bounds(&self) -> &[u32] {
        &self.bounds
    }

    /// The configuration lattice spanned by the bounds.
    pub fn lattice(&self) -> ConfigLattice {
        ConfigLattice::new(self.bounds.clone())
    }

    /// The Eq. 2 objective.
    pub fn objective(&self) -> &RibbonObjective {
        &self.objective
    }

    /// The tier set configurations are scored against, when the workload is tiered.
    pub fn tiers(&self) -> Option<&TierSet> {
        self.tiers.as_ref()
    }

    /// Number of distinct pool simulations run so far (cache misses).
    pub fn num_simulations(&self) -> usize {
        self.simulations.load(Ordering::Relaxed)
    }

    /// Worker threads used for batch evaluation (at least 1).
    pub fn parallelism(&self) -> usize {
        self.threads
    }

    /// The deterministic RNG seed for any stochastic per-configuration component.
    ///
    /// Derived stably from the workload's stream seed and the configuration's coordinates
    /// (see [`ribbon_cloudsim::parallel::stable_seed`]), so a configuration's randomness is
    /// a function of *what* is evaluated, never of *when* or *on which thread* — the
    /// invariant that keeps [`ConfigEvaluator::evaluate_many`] bit-identical to serial
    /// evaluation. Today's simulator is fully deterministic and does not consume it, but
    /// extensions (per-config measurement noise, replicated streams) must draw from here.
    pub fn config_seed(&self, config: &[u32]) -> u64 {
        parallel::stable_seed(self.workload.seed, config)
    }

    /// The query stream all configurations are evaluated against.
    pub fn queries(&self) -> &[Query] {
        &self.queries
    }

    /// The homogeneous configuration `[count, 0, 0, ...]` of the workload's base type.
    pub fn homogeneous_config(&self, count: u32) -> Vec<u32> {
        let mut cfg = vec![0u32; self.workload.diverse_pool.len()];
        cfg[0] = count;
        cfg
    }

    /// Panics unless `config` matches the pool's dimensionality and is non-empty.
    fn validate(&self, config: &[u32]) {
        assert_eq!(
            config.len(),
            self.workload.diverse_pool.len(),
            "configuration has {} entries but the pool has {} types",
            config.len(),
            self.workload.diverse_pool.len()
        );
        assert!(
            config.iter().any(|&c| c > 0),
            "cannot evaluate an empty pool"
        );
    }

    /// Runs the actual pool simulation for one configuration — a pure function of the
    /// evaluator's immutable state, shared by the serial and batch paths.
    ///
    /// Uses the simulator's lean [`simulate_stats`] fast path: satisfaction, mean, and tail
    /// come out of a single pass over the latencies (tail via O(n) selection) without
    /// materializing the per-query batch-size / assignment trace a full
    /// [`ribbon_cloudsim::SimResult`] carries. The resulting `Evaluation` is bit-identical
    /// to one computed from the full trace (pinned by `evaluation_matches_full_simulation`).
    fn simulate_config(&self, config: &[u32]) -> Evaluation {
        if let Some(set) = &self.tiers {
            return self.simulate_config_tiered(config, set, &self.queries);
        }
        let pool = PoolSpec::from_counts(&self.workload.diverse_pool, config);
        let stats = simulate_stats(
            &pool,
            &self.queries,
            &self.profile,
            self.policy.deadline_s(),
            self.policy.tail_percentile(),
        );
        // A zero-query stream is vacuously satisfied for the evaluator's purpose: the
        // objective needs *some* score, and an empty workload cannot violate QoS.
        // Monitoring paths (windowed stats) keep the explicit `None` instead. For the
        // default tail-rate policy the score IS the satisfaction rate, so this path is
        // bit-identical to the historical rate-based evaluation.
        let rate = self
            .policy
            .score(&QosEvidence::from_stats(&stats))
            .unwrap_or(1.0);
        Evaluation {
            config: config.to_vec(),
            hourly_cost: pool.hourly_cost(),
            satisfaction_rate: rate,
            meets_qos: self.objective.meets_qos(rate),
            objective: self.objective.value(config, rate),
            mean_latency_s: stats.mean_latency_s,
            tail_latency_s: stats.tail_latency_s,
            tier_totals: Vec::new(),
            pool,
        }
    }

    /// The tiered twin of [`simulate_config`](Self::simulate_config): drives the given
    /// query slice through the tiered serving engine (premium preemption, best-effort
    /// admission drops) and scores the tier-weighted Eq. 2 over the per-tier
    /// satisfaction rates. Only gating tiers (premium/standard) decide `meets_qos`;
    /// best-effort rides the slack, and its admission drops are reported in
    /// [`Evaluation::tier_totals`] rather than folded into a gating rate.
    fn simulate_config_tiered(
        &self,
        config: &[u32],
        set: &TierSet,
        queries: &[Query],
    ) -> Evaluation {
        let pool = PoolSpec::from_counts(&self.workload.diverse_pool, config);
        // Plan-time evaluation needs no windowed monitoring: one never-closing window.
        let mut sim = StreamingSim::new(
            &pool,
            &self.profile,
            StreamingSimConfig::new(
                self.policy.deadline_s(),
                self.policy.tail_percentile(),
                WindowConfig::tumbling(1e18),
            ),
        );
        sim.enable_tiers(set.clone());
        let mut assigner = set.assigner();
        let mut closed = Vec::new();
        for q in queries {
            sim.push_tiered_into(q, assigner.next_tier(), &mut closed);
        }
        let stats = sim.stats();
        let tier_totals = sim.tier_totals().to_vec();
        let tier_rates: Vec<Option<f64>> =
            tier_totals.iter().map(|t| t.satisfaction_rate()).collect();
        let rate = self
            .policy
            .score(&QosEvidence::from_stats(&stats))
            .unwrap_or(1.0);
        Evaluation {
            config: config.to_vec(),
            hourly_cost: pool.hourly_cost(),
            satisfaction_rate: rate,
            meets_qos: self.objective.meets_tiered_qos(&tier_rates, set),
            objective: self.objective.tier_value(config, &tier_rates, set),
            mean_latency_s: stats.mean_latency_s,
            tail_latency_s: stats.tail_latency_s,
            tier_totals,
            pool,
        }
    }

    /// Evaluates a configuration (cached).
    ///
    /// # Panics
    /// Panics if the configuration's dimensionality does not match the diverse pool or if
    /// the configuration is empty (all zeros).
    pub fn evaluate(&self, config: &[u32]) -> Evaluation {
        self.validate(config);

        if let Some(hit) = self.cache.lock().get(config) {
            return hit.clone();
        }

        let eval = self.simulate_config(config);
        self.simulations.fetch_add(1, Ordering::Relaxed);
        self.cache.lock().insert(config.to_vec(), eval.clone());
        eval
    }

    /// Evaluates a batch of configurations, fanning cache misses out across worker threads,
    /// and returns the evaluations **in input order**.
    ///
    /// Semantically identical to calling [`ConfigEvaluator::evaluate`] on each configuration
    /// in order — same `Evaluation`s bit for bit, same cache contents afterwards — but cache
    /// misses are simulated concurrently on up to [`ConfigEvaluator::parallelism`] threads.
    /// Duplicate configurations within the batch are simulated once.
    ///
    /// # Panics
    /// Panics if any configuration has the wrong dimensionality or is empty (all zeros),
    /// before any simulation runs.
    pub fn evaluate_many(&self, configs: &[Vec<u32>]) -> Vec<Evaluation> {
        for c in configs {
            self.validate(c);
        }

        // Partition into cache hits and distinct misses (first-seen order) under one lock.
        let mut results: Vec<Option<Evaluation>> = vec![None; configs.len()];
        let mut misses: Vec<Vec<u32>> = Vec::new();
        {
            let cache = self.cache.lock();
            let mut queued: BTreeSet<&[u32]> = BTreeSet::new();
            for (slot, config) in results.iter_mut().zip(configs) {
                if let Some(hit) = cache.get(config.as_slice()) {
                    *slot = Some(hit.clone());
                } else if queued.insert(config.as_slice()) {
                    misses.push(config.clone());
                }
            }
        }

        // Simulate the misses outside the lock; the engine preserves input order.
        let fresh = parallel::par_map(&misses, self.threads, |c| self.simulate_config(c));
        self.simulations.fetch_add(fresh.len(), Ordering::Relaxed);
        {
            let mut cache = self.cache.lock();
            for eval in &fresh {
                cache.insert(eval.config.clone(), eval.clone());
            }
        }

        let by_config: BTreeMap<&[u32], &Evaluation> =
            fresh.iter().map(|e| (e.config.as_slice(), e)).collect();
        results
            .into_iter()
            .zip(configs)
            .map(|(slot, config)| match slot {
                Some(eval) => eval,
                None => (*by_config
                    .get(config.as_slice())
                    .expect("every miss was simulated"))
                .clone(),
            })
            .collect()
    }

    /// Evaluates a homogeneous pool of `count` base-type instances.
    pub fn evaluate_homogeneous(&self, count: u32) -> Evaluation {
        self.evaluate(&self.homogeneous_config(count))
    }

    /// Number of reduced-fidelity (prefix) simulations run so far.
    pub fn num_prefix_simulations(&self) -> usize {
        self.prefix_simulations.load(Ordering::Relaxed)
    }

    /// Total queries simulated across all prefix simulations — with
    /// [`ConfigEvaluator::queries`]`.len()` this gives the *exact* fidelity spend in
    /// full-simulation equivalents.
    pub fn num_prefix_queries(&self) -> usize {
        self.prefix_queries.load(Ordering::Relaxed)
    }

    /// The prefix length (in queries) of a fidelity fraction in `(0, 1]`, at least 1 and at
    /// most the full stream.
    pub fn prefix_len(&self, fidelity: f64) -> usize {
        let n = self.queries.len();
        (((n as f64) * fidelity).ceil() as usize).clamp(1, n.max(1))
    }

    /// Runs the reduced-fidelity simulation of one configuration on the first `k` queries.
    fn simulate_config_prefix(&self, config: &[u32], k: usize) -> PrefixEvaluation {
        let k = k.min(self.queries.len());
        if let Some(set) = &self.tiers {
            let set = set.clone();
            let evaluation = self.simulate_config_tiered(config, &set, &self.queries[..k]);
            let remaining = (self.queries.len() - k) as u64;
            // Sound per-tier bound: every remaining query could land in tier t and be
            // satisfied, and (sat + x)/(n + x) is nondecreasing in x for sat ≤ n — so
            // this dominates every possible assignment of the suffix. The tier-weighted
            // objective is monotone nondecreasing in each rate, so bounding the rates
            // bounds the objective.
            let ub_rates: Vec<Option<f64>> = evaluation
                .tier_totals
                .iter()
                .map(|t| {
                    (t.served > 0)
                        .then(|| (t.satisfied + remaining) as f64 / (t.served + remaining) as f64)
                })
                .collect();
            let objective_upper_bound = self.objective.tier_value(config, &ub_rates, &set);
            return PrefixEvaluation {
                evaluation,
                prefix_len: k,
                objective_upper_bound,
            };
        }
        let pool = PoolSpec::from_counts(&self.workload.diverse_pool, config);
        let stats = simulate_stats(
            &pool,
            &self.queries[..k],
            &self.profile,
            self.policy.deadline_s(),
            self.policy.tail_percentile(),
        );
        let evidence = QosEvidence::from_stats(&stats);
        let rate = self.policy.score(&evidence).unwrap_or(1.0);
        let remaining = self.queries.len() - k;
        let ub_rate = self.policy.prefix_score_upper_bound(&evidence, remaining);
        // Eq. 2 is monotone nondecreasing in the rate for a fixed configuration (the
        // violating branch grows linearly and tops out below the rate-independent
        // satisfying branch), so an upper bound on the rate is an upper bound on the
        // objective.
        let objective_upper_bound = self.objective.value(config, ub_rate);
        PrefixEvaluation {
            evaluation: Evaluation {
                config: config.to_vec(),
                hourly_cost: pool.hourly_cost(),
                satisfaction_rate: rate,
                meets_qos: self.objective.meets_qos(rate),
                objective: self.objective.value(config, rate),
                mean_latency_s: stats.mean_latency_s,
                tail_latency_s: stats.tail_latency_s,
                tier_totals: Vec::new(),
                pool,
            },
            prefix_len: k,
            objective_upper_bound,
        }
    }

    /// Evaluates a batch of configurations at reduced fidelity — against the first `k`
    /// queries of the stream — returning prefix evaluations **in input order**.
    ///
    /// Mirrors [`ConfigEvaluator::evaluate_many`] (order-preserving, duplicate-collapsing,
    /// parallel over cache misses) but reads and fills the dedicated prefix cache tier, so
    /// reduced-fidelity scores can never contaminate full-fidelity results or vice versa.
    ///
    /// # Panics
    /// Panics on dimensionality mismatches, empty (all-zero) configurations, or `k == 0`.
    pub fn evaluate_many_prefix(&self, configs: &[Vec<u32>], k: usize) -> Vec<PrefixEvaluation> {
        assert!(k > 0, "prefix length must be at least 1");
        let k = k.min(self.queries.len());
        for c in configs {
            self.validate(c);
        }

        let mut results: Vec<Option<PrefixEvaluation>> = vec![None; configs.len()];
        let mut misses: Vec<Vec<u32>> = Vec::new();
        {
            let cache = self.prefix_cache.lock();
            let mut queued: BTreeSet<&[u32]> = BTreeSet::new();
            for (slot, config) in results.iter_mut().zip(configs) {
                if let Some(hit) = cache.get(&(k, config.clone())) {
                    *slot = Some(hit.clone());
                } else if queued.insert(config.as_slice()) {
                    misses.push(config.clone());
                }
            }
        }

        let fresh = parallel::par_map(&misses, self.threads, |c| self.simulate_config_prefix(c, k));
        self.prefix_simulations
            .fetch_add(fresh.len(), Ordering::Relaxed);
        self.prefix_queries
            .fetch_add(fresh.len() * k, Ordering::Relaxed);
        {
            let mut cache = self.prefix_cache.lock();
            for pe in &fresh {
                cache.insert((k, pe.evaluation.config.clone()), pe.clone());
            }
        }

        let by_config: BTreeMap<&[u32], &PrefixEvaluation> = fresh
            .iter()
            .map(|pe| (pe.evaluation.config.as_slice(), pe))
            .collect();
        results
            .into_iter()
            .zip(configs)
            .map(|(slot, config)| match slot {
                Some(pe) => pe,
                None => (*by_config
                    .get(config.as_slice())
                    .expect("every prefix miss was simulated"))
                .clone(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ribbon_models::{ModelKind, Workload};

    /// A small, fast workload for unit tests: few queries and a tight per-type cap.
    fn test_workload() -> Workload {
        let mut w = Workload::standard(ModelKind::MtWnd);
        w.num_queries = 800;
        w
    }

    fn test_settings() -> EvaluatorSettings {
        EvaluatorSettings {
            max_per_type: 6,
            ..Default::default()
        }
    }

    #[test]
    fn bounds_match_pool_dimensionality_and_cap() {
        let ev = ConfigEvaluator::new(&test_workload(), test_settings());
        assert_eq!(ev.bounds().len(), 3);
        assert!(ev.bounds().iter().all(|&b| (1..=6).contains(&b)));
        assert_eq!(ev.lattice().dims(), 3);
    }

    #[test]
    fn explicit_bounds_skip_the_probe() {
        let ev = ConfigEvaluator::new(
            &test_workload(),
            EvaluatorSettings {
                explicit_bounds: Some(vec![5, 4, 3]),
                ..Default::default()
            },
        );
        assert_eq!(ev.bounds(), &[5, 4, 3]);
    }

    #[test]
    #[should_panic(expected = "explicit bounds must match")]
    fn explicit_bounds_must_match_pool_size() {
        let _ = ConfigEvaluator::new(
            &test_workload(),
            EvaluatorSettings {
                explicit_bounds: Some(vec![5, 4]),
                ..Default::default()
            },
        );
    }

    #[test]
    fn evaluate_is_deterministic_and_cached() {
        let ev = ConfigEvaluator::new(
            &test_workload(),
            EvaluatorSettings {
                explicit_bounds: Some(vec![6, 6, 6]),
                ..Default::default()
            },
        );
        let sims_before = ev.num_simulations();
        let a = ev.evaluate(&[3, 1, 2]);
        let b = ev.evaluate(&[3, 1, 2]);
        assert_eq!(a, b);
        assert_eq!(
            ev.num_simulations(),
            sims_before + 1,
            "second call must hit the cache"
        );
    }

    #[test]
    fn evaluation_fields_are_consistent() {
        let ev = ConfigEvaluator::new(
            &test_workload(),
            EvaluatorSettings {
                explicit_bounds: Some(vec![6, 6, 6]),
                ..Default::default()
            },
        );
        let e = ev.evaluate(&[4, 0, 0]);
        assert_eq!(e.config, vec![4, 0, 0]);
        assert_eq!(e.pool.describe(), "4xg4dn");
        assert!((e.hourly_cost - 4.0 * 0.526).abs() < 1e-9);
        assert!((0.0..=1.0).contains(&e.satisfaction_rate));
        assert_eq!(e.meets_qos, e.satisfaction_rate >= 0.99);
        assert!((0.0..=1.0).contains(&e.objective));
        assert!(e.mean_latency_s > 0.0);
        assert!(e.tail_latency_s >= e.mean_latency_s);
    }

    #[test]
    fn evaluation_matches_full_simulation() {
        // The lean stats path must reproduce the full-trace metrics bit for bit.
        let w = test_workload();
        let ev = ConfigEvaluator::new(
            &w,
            EvaluatorSettings {
                explicit_bounds: Some(vec![6, 6, 6]),
                ..Default::default()
            },
        );
        for config in [[3u32, 1, 2], [5, 0, 0], [0, 2, 4]] {
            let e = ev.evaluate(&config);
            let pool = PoolSpec::from_counts(&w.diverse_pool, &config);
            let full = ribbon_cloudsim::simulate(&pool, ev.queries(), &w.profile());
            assert_eq!(
                Some(e.satisfaction_rate),
                full.satisfaction_rate(w.qos.latency_target_s),
                "{config:?}"
            );
            assert_eq!(e.mean_latency_s, full.mean_latency(), "{config:?}");
            assert_eq!(
                e.tail_latency_s,
                full.tail_latency(w.qos.target_rate * 100.0),
                "{config:?}"
            );
        }
    }

    #[test]
    fn more_instances_do_not_hurt_satisfaction() {
        let ev = ConfigEvaluator::new(
            &test_workload(),
            EvaluatorSettings {
                explicit_bounds: Some(vec![6, 6, 6]),
                ..Default::default()
            },
        );
        let small = ev.evaluate(&[2, 0, 0]);
        let large = ev.evaluate(&[6, 0, 0]);
        assert!(large.satisfaction_rate >= small.satisfaction_rate);
    }

    #[test]
    fn homogeneous_config_helper() {
        let ev = ConfigEvaluator::new(
            &test_workload(),
            EvaluatorSettings {
                explicit_bounds: Some(vec![6, 6, 6]),
                ..Default::default()
            },
        );
        assert_eq!(ev.homogeneous_config(5), vec![5, 0, 0]);
        let e = ev.evaluate_homogeneous(5);
        assert_eq!(e.pool.describe(), "5xg4dn");
    }

    #[test]
    #[should_panic(expected = "empty pool")]
    fn evaluating_all_zero_config_panics() {
        let ev = ConfigEvaluator::new(
            &test_workload(),
            EvaluatorSettings {
                explicit_bounds: Some(vec![3, 3, 3]),
                ..Default::default()
            },
        );
        let _ = ev.evaluate(&[0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "configuration has")]
    fn evaluating_wrong_dimension_panics() {
        let ev = ConfigEvaluator::new(
            &test_workload(),
            EvaluatorSettings {
                explicit_bounds: Some(vec![3, 3, 3]),
                ..Default::default()
            },
        );
        let _ = ev.evaluate(&[1, 1]);
    }

    #[test]
    fn with_policy_on_the_workload_target_is_bit_identical_to_new() {
        let w = test_workload();
        let settings = EvaluatorSettings {
            explicit_bounds: Some(vec![6, 6, 6]),
            ..Default::default()
        };
        let a = ConfigEvaluator::new(&w, settings.clone());
        let b = ConfigEvaluator::with_policy(&w, settings, std::sync::Arc::new(w.qos));
        for config in [[3u32, 1, 2], [5, 0, 0], [0, 2, 4]] {
            assert_eq!(a.evaluate(&config), b.evaluate(&config), "{config:?}");
        }
    }

    #[test]
    fn mean_latency_policy_changes_the_acceptance_criterion() {
        use ribbon_cloudsim::MeanLatencyPolicy;
        let w = test_workload();
        let settings = EvaluatorSettings {
            explicit_bounds: Some(vec![6, 6, 6]),
            ..Default::default()
        };
        // A generous mean budget (double the tail target) accepts pools the p99 target
        // rejects; a absurdly tight one rejects everything.
        let generous = ConfigEvaluator::with_policy(
            &w,
            settings.clone(),
            std::sync::Arc::new(MeanLatencyPolicy::try_new(0.040, 0.020).unwrap()),
        );
        let tight = ConfigEvaluator::with_policy(
            &w,
            settings,
            std::sync::Arc::new(MeanLatencyPolicy::try_new(1e-6, 0.020).unwrap()),
        );
        let e = generous.evaluate(&[6, 4, 6]);
        assert!(e.meets_qos, "largest pool meets a 40 ms mean budget");
        let t = tight.evaluate(&[6, 4, 6]);
        assert!(!t.meets_qos);
        assert!(
            t.satisfaction_rate < 1.0,
            "violating mean policy grades below threshold"
        );
        assert!(t.objective < 0.5, "violating branch of Eq. 2");
    }

    #[test]
    fn prefix_tier_is_cached_separately_and_bounds_the_full_objective() {
        let ev = ConfigEvaluator::new(
            &test_workload(),
            EvaluatorSettings {
                explicit_bounds: Some(vec![6, 6, 6]),
                ..Default::default()
            },
        );
        let k = ev.prefix_len(0.25);
        assert_eq!(k, 200, "25% of the 800-query stream");
        let configs = vec![vec![3u32, 1, 2], vec![5, 0, 0], vec![3, 1, 2]];
        let sims_before = ev.num_simulations();
        let pe = ev.evaluate_many_prefix(&configs, k);
        // Duplicates collapse; the full-fidelity cache is untouched.
        assert_eq!(ev.num_prefix_simulations(), 2);
        assert_eq!(ev.num_prefix_queries(), 2 * k);
        assert_eq!(ev.num_simulations(), sims_before);
        assert_eq!(pe[0], pe[2]);
        // A second identical batch is all cache hits.
        let again = ev.evaluate_many_prefix(&configs, k);
        assert_eq!(ev.num_prefix_simulations(), 2);
        assert_eq!(pe, again);
        // The upper bound is sound: never below the true full-stream objective.
        for p in &pe {
            let full = ev.evaluate(&p.evaluation.config);
            assert!(
                p.objective_upper_bound >= full.objective - 1e-12,
                "{:?}: ub {} < full {}",
                p.evaluation.config,
                p.objective_upper_bound,
                full.objective
            );
            assert_eq!(p.prefix_len, k);
        }
    }

    #[test]
    fn full_length_prefix_bound_equals_the_exact_objective() {
        let ev = ConfigEvaluator::new(
            &test_workload(),
            EvaluatorSettings {
                explicit_bounds: Some(vec![6, 6, 6]),
                ..Default::default()
            },
        );
        let n = ev.queries().len();
        let pe = &ev.evaluate_many_prefix(&[vec![2u32, 1, 1]], n)[0];
        let full = ev.evaluate(&[2, 1, 1]);
        assert_eq!(pe.evaluation.satisfaction_rate, full.satisfaction_rate);
        assert_eq!(pe.evaluation.objective, full.objective);
        assert!((pe.objective_upper_bound - full.objective).abs() < 1e-12);
    }

    #[test]
    fn prefix_len_clamps_to_the_stream() {
        let ev = ConfigEvaluator::new(
            &test_workload(),
            EvaluatorSettings {
                explicit_bounds: Some(vec![6, 6, 6]),
                ..Default::default()
            },
        );
        assert_eq!(ev.prefix_len(1.0), 800);
        assert_eq!(ev.prefix_len(2.0), 800);
        assert_eq!(ev.prefix_len(1e-9), 1);
    }

    #[test]
    fn objective_orders_satisfying_configs_by_cost() {
        let ev = ConfigEvaluator::new(
            &test_workload(),
            EvaluatorSettings {
                explicit_bounds: Some(vec![6, 6, 6]),
                ..Default::default()
            },
        );
        // A pool big enough to certainly satisfy vs. an even bigger, more expensive pool.
        let a = ev.evaluate(&[6, 3, 3]);
        let b = ev.evaluate(&[6, 6, 6]);
        if a.meets_qos && b.meets_qos {
            assert!(
                a.objective > b.objective,
                "cheaper satisfying pool must score higher"
            );
        }
    }
}
