//! Online serving: a QoS-watching controller that reconfigures the pool *mid-stream*.
//!
//! The offline pipeline ([`crate::adapt`]) reproduces Fig. 16 as two searches glued
//! together around a one-shot load step. This module closes the loop the way a production
//! system would (INFaaS-style managed serving): queries keep arriving through
//! [`ribbon_cloudsim::StreamingSim`], per-window QoS statistics stream out, and an
//! [`OnlineController`] watches them with **hysteresis**:
//!
//! * **sustained QoS violation** — `violation_windows` consecutive violating windows
//!   trigger a scale-up replan at the load observed during the violation;
//! * **sustained over-provisioning** — `overprovision_windows` consecutive healthy windows
//!   whose offered load sits below `overprovision_headroom ×` the planned load trigger a
//!   scale-down replan;
//! * empty windows advance **neither** counter — no queries means no evidence (see
//!   [`ribbon_cloudsim::WindowStats`]), and a quiet period must not look like either
//!   health or trouble;
//! * a replan starts a `cooldown_windows`-window cooldown so the controller does not
//!   thrash while freshly launched instances are still spinning up.
//!
//! A replan is a short, warm-started Bayesian-Optimization search: the controller keeps
//! the exploration record of its previous planning phase and injects it into the new
//! search via [`crate::adapt::inject_pseudo_observations`] — the same Sec. 4 machinery the
//! offline adapter uses — so mid-stream decisions cost a handful of evaluations, not a
//! from-scratch search. The chosen pool is applied through
//! [`StreamingSim::reconfigure`], whose drain/spin-up overlap is billed exactly by the
//! simulator and attributed per decision via
//! [`crate::accounting::transition_overlap_cost`].

use crate::accounting::transition_overlap_cost;
use crate::adapt::inject_pseudo_observations;
use crate::evaluator::{ConfigEvaluator, Evaluation, EvaluatorSettings};
use crate::search::{RibbonSearch, RibbonSettings};
use ribbon_cloudsim::streaming::{Reconfiguration, StreamingSim, StreamingSimConfig};
use ribbon_cloudsim::{
    AdmissionClass, PhasedStreamConfig, QosPolicy, SimStats, TierSet, TierTotals, WindowConfig,
    WindowStats,
};
use ribbon_models::Workload;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Hysteresis thresholds and replanning budget of the online controller.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OnlineControllerSettings {
    /// Consecutive violating windows before a scale-up replan.
    pub violation_windows: usize,
    /// Consecutive healthy-but-underloaded windows before a scale-down replan.
    pub overprovision_windows: usize,
    /// A healthy window counts toward over-provisioning only when its offered load is
    /// below this fraction of the load the current configuration was planned for.
    pub overprovision_headroom: f64,
    /// Windows to ignore after a replan (lets spin-up and queue drain settle).
    pub cooldown_windows: usize,
    /// Multiplier on the observed load when planning a scale-up (> 1 over-provisions so
    /// the backlog accumulated during detection and spin-up actually drains).
    pub scale_up_margin: f64,
    /// Multiplier on the observed load when planning a scale-down (> 1 keeps headroom so
    /// the shrunk pool does not land on the QoS cliff edge and immediately re-trigger a
    /// scale-up — the thrash the hysteresis exists to prevent).
    pub scale_down_margin: f64,
    /// Search settings of a replan (short budgets: the warm start does the heavy lifting).
    pub replan: RibbonSettings,
    /// Evaluator settings shared by the initial search and every replan.
    pub evaluator: EvaluatorSettings,
    /// Queries per planning stream at the *base* load (scaled with the replan's load
    /// factor to keep planning-stream durations comparable).
    pub planning_queries: usize,
}

impl Default for OnlineControllerSettings {
    fn default() -> Self {
        OnlineControllerSettings {
            violation_windows: 2,
            overprovision_windows: 4,
            overprovision_headroom: 0.8,
            cooldown_windows: 3,
            scale_up_margin: 1.1,
            scale_down_margin: 1.15,
            replan: RibbonSettings {
                max_evaluations: 12,
                ..RibbonSettings::fast()
            },
            evaluator: EvaluatorSettings::default(),
            planning_queries: 3000,
        }
    }
}

/// Why the controller decided to reconfigure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReconfigTrigger {
    /// Sustained QoS violation: the pool must grow.
    QosViolation,
    /// Sustained over-provisioning: the pool can shrink.
    OverProvisioning,
}

/// A reconfiguration the controller wants applied.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedReconfig {
    /// Per-type counts of the new configuration.
    pub config: Vec<u32>,
    /// The load (queries/second) the new configuration was planned for.
    pub planned_qps: f64,
    /// What tripped the hysteresis.
    pub trigger: ReconfigTrigger,
    /// Index of the monitoring window that made the decision.
    pub window_index: u64,
    /// The planning evaluation backing the choice.
    pub expected: Evaluation,
}

/// A decision of [`OnlineController::observe_action`]: either a pool reconfiguration or
/// a serving-variant switch (the cheaper first resort on workloads with a variant
/// palette — no search, no spin-up, no transition cost).
#[derive(Debug, Clone, PartialEq)]
pub enum ControllerAction {
    /// Reconfigure the pool (make-before-break, billed transition).
    Reconfig(PlannedReconfig),
    /// Switch the serving variant of the deployed pool.
    SwitchVariant {
        /// Palette index served before the switch.
        from: u32,
        /// Palette index to serve from now on.
        to: u32,
        /// What tripped the hysteresis.
        trigger: ReconfigTrigger,
        /// Index of the monitoring window that made the decision.
        window_index: u64,
    },
}

/// One applied serving-variant switch, as reported by [`serve_online`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariantSwitchEvent {
    /// What tripped the hysteresis.
    pub trigger: ReconfigTrigger,
    /// Index of the window that tripped the decision.
    pub window_index: u64,
    /// Stream time the switch took effect (the deciding window's end).
    pub at_s: f64,
    /// Palette index served before the switch.
    pub from: u32,
    /// Palette index served after the switch.
    pub to: u32,
}

/// The window-watching controller. Feed it every closed [`WindowStats`] via
/// [`OnlineController::observe`]; apply any returned [`PlannedReconfig`] to the stream.
pub struct OnlineController {
    settings: OnlineControllerSettings,
    base: Workload,
    policy: Arc<dyn QosPolicy>,
    seed: u64,
    current: Vec<u32>,
    planned_qps: f64,
    /// Exploration record of the most recent planning phase (the warm-start source; the
    /// injection ratio is derived from satisfaction rates, not from the record's load).
    record: Vec<Evaluation>,
    consecutive_violations: usize,
    violating_qps_sum: f64,
    consecutive_overprov: usize,
    overprov_qps_sum: f64,
    cooldown: usize,
    replans: usize,
    /// Size of the workload's serving-variant palette (1 when it has none — every
    /// variant branch below is then dead and the controller is bit-identical to the
    /// pre-variant implementation).
    num_variants: u32,
    serving_variant: u32,
    /// The workload's tier set, when it serves differentiated QoS tiers. `None` keeps
    /// every tier branch dead and the controller bit-identical to the untiered one.
    tiers: Option<TierSet>,
    /// Consecutive windows in which a premium tier (with served evidence) missed its
    /// effective rate target. Premium runs on a shorter fuse than the blended policy:
    /// see [`OnlineController::premium_patience`].
    consecutive_premium: usize,
    premium_qps_sum: f64,
}

impl OnlineController {
    /// Runs the initial configuration search for `workload` and builds a controller
    /// deployed at the cheapest QoS-satisfying configuration found. Returns `None` if the
    /// initial search finds no satisfying configuration.
    pub fn bootstrap(
        workload: &Workload,
        initial_search: &RibbonSettings,
        settings: OnlineControllerSettings,
        seed: u64,
    ) -> Option<OnlineController> {
        Self::bootstrap_with_policy(
            workload,
            initial_search,
            settings,
            seed,
            Arc::new(workload.qos),
        )
    }

    /// [`OnlineController::bootstrap`] with an explicit QoS policy: planning evaluations
    /// and window judgments both use `policy` instead of the workload's tail-rate target.
    /// With `Arc::new(workload.qos)` the two constructors are bit-identical.
    pub fn bootstrap_with_policy(
        workload: &Workload,
        initial_search: &RibbonSettings,
        settings: OnlineControllerSettings,
        seed: u64,
        policy: Arc<dyn QosPolicy>,
    ) -> Option<OnlineController> {
        let mut planning = workload.clone();
        planning.num_queries = settings.planning_queries;
        let evaluator =
            ConfigEvaluator::with_policy(&planning, settings.evaluator.clone(), policy.clone());
        let trace = RibbonSearch::new(initial_search.clone()).run(&evaluator, seed);
        let best = trace.best_satisfying()?.clone();
        Some(OnlineController {
            settings,
            base: workload.clone(),
            policy,
            seed,
            current: best.config.clone(),
            planned_qps: workload.qps,
            record: trace.evaluations().to_vec(),
            consecutive_violations: 0,
            violating_qps_sum: 0.0,
            consecutive_overprov: 0,
            overprov_qps_sum: 0.0,
            cooldown: 0,
            replans: 0,
            num_variants: workload.num_variants().max(1),
            serving_variant: 0,
            tiers: None,
            consecutive_premium: 0,
            premium_qps_sum: 0.0,
        })
    }

    /// Builds a controller around an *already-planned* deployment, skipping the
    /// bootstrap search: `record` is the planning exploration record the warm starts
    /// draw from (it should contain an evaluation of `config`; one is appended when
    /// missing so [`OnlineController::current_evaluation`] never comes up empty), and
    /// `config` is the deployed configuration. `planned_qps` is the load `config` was
    /// planned to carry — for a fleet member whose traffic is partly served by shared
    /// slots, that is the *lane's* share of the model load, not the whole stream. The
    /// fleet serve path uses this — the joint fleet planner, not a per-model search,
    /// chose each model's slice.
    #[allow(clippy::too_many_arguments)]
    pub fn from_plan(
        workload: &Workload,
        settings: OnlineControllerSettings,
        seed: u64,
        policy: Arc<dyn QosPolicy>,
        mut record: Vec<Evaluation>,
        config: Vec<u32>,
        expected: Evaluation,
        planned_qps: f64,
    ) -> OnlineController {
        if !record.iter().any(|e| e.config == config) {
            record.push(expected);
        }
        OnlineController {
            settings,
            base: workload.clone(),
            policy,
            seed,
            current: config,
            planned_qps,
            record,
            consecutive_violations: 0,
            violating_qps_sum: 0.0,
            consecutive_overprov: 0,
            overprov_qps_sum: 0.0,
            cooldown: 0,
            replans: 0,
            num_variants: workload.num_variants().max(1),
            serving_variant: 0,
            tiers: None,
            consecutive_premium: 0,
            premium_qps_sum: 0.0,
        }
    }

    /// Attaches the workload's tier set: premium-tier violations then trip the
    /// controller on a shorter fuse than the blended policy (see
    /// [`OnlineController::premium_patience`]). `None` is the untiered behaviour.
    pub fn with_tiers(mut self, tiers: Option<TierSet>) -> Self {
        self.tiers = tiers;
        self
    }

    /// Consecutive premium-violating windows before the controller reacts: half the
    /// blended patience (at least one window), so a premium breach triggers the
    /// variant-degrade/replan ladder *before* a standard one would.
    pub fn premium_patience(&self) -> usize {
        (self.settings.violation_windows / 2).max(1)
    }

    /// The configuration the controller currently believes is deployed.
    pub fn current_config(&self) -> &[u32] {
        &self.current
    }

    /// The planning evaluation of the current configuration (from the latest record).
    pub fn current_evaluation(&self) -> Option<&Evaluation> {
        self.record.iter().find(|e| e.config == self.current)
    }

    /// The load the current configuration was planned for, in queries/second.
    pub fn planned_qps(&self) -> f64 {
        self.planned_qps
    }

    /// Number of replanning searches run so far.
    pub fn replans(&self) -> usize {
        self.replans
    }

    /// The palette index the controller currently serves (always 0 without a palette).
    pub fn serving_variant(&self) -> u32 {
        self.serving_variant
    }

    /// Feeds one closed monitoring window to the hysteresis logic. Returns a
    /// reconfiguration plan when a threshold trips *and* the replan picks a configuration
    /// different from the current one.
    ///
    /// On a workload with a variant palette, a tripped threshold may instead be absorbed
    /// by a serving-variant switch; this legacy entry point reports those as `None`. Use
    /// [`OnlineController::observe_action`] to see both decision kinds.
    pub fn observe(&mut self, window: &WindowStats) -> Option<PlannedReconfig> {
        match self.observe_action(window)? {
            ControllerAction::Reconfig(plan) => Some(plan),
            ControllerAction::SwitchVariant { .. } => None,
        }
    }

    /// Feeds one closed monitoring window to the hysteresis logic and returns the
    /// controller's decision, if any.
    ///
    /// With a variant palette, switching the serving variant is the **cheaper first
    /// resort**: a sustained violation degrades one palette step (no search, no
    /// spin-up) and only replans the pool once the worst variant is already serving;
    /// sustained over-provisioning symmetrically upgrades back toward the accuracy-best
    /// variant before it will shrink the pool. Palette entries below the scenario's
    /// `min_accuracy` floor were rejected at compile time, so every step stays
    /// accuracy-admissible.
    pub fn observe_action(&mut self, window: &WindowStats) -> Option<ControllerAction> {
        if self.cooldown > 0 {
            self.cooldown -= 1;
            return None;
        }
        // Empty window: no evidence either way — hold every counter where it is.
        let met = window.meets_policy(self.policy.as_ref())?;

        // Premium fast path (tiered serving only): a premium breach escalates on the
        // shorter premium patience, through the same degrade-then-replan ladder, even
        // while the blended policy still reads healthy — the firm contract must not
        // wait for the whole stream to sour.
        match self.premium_window_violated(window) {
            Some(true) => {
                self.consecutive_premium += 1;
                self.premium_qps_sum += window.arrival_qps;
                if self.consecutive_premium >= self.premium_patience() {
                    if self.serving_variant + 1 < self.num_variants {
                        return Some(self.switch_variant(
                            self.serving_variant + 1,
                            ReconfigTrigger::QosViolation,
                            window.index,
                        ));
                    }
                    let observed = self.premium_qps_sum / self.consecutive_premium as f64;
                    let target = (observed * self.settings.scale_up_margin).max(self.planned_qps);
                    return self
                        .replan(target, window.index, ReconfigTrigger::QosViolation)
                        .map(ControllerAction::Reconfig);
                }
            }
            Some(false) => {
                self.consecutive_premium = 0;
                self.premium_qps_sum = 0.0;
            }
            // A silent premium slice is evidence of nothing — hold the streak.
            None => {}
        }

        if !met {
            self.consecutive_violations += 1;
            self.violating_qps_sum += window.arrival_qps;
            self.consecutive_overprov = 0;
            self.overprov_qps_sum = 0.0;
            if self.consecutive_violations >= self.settings.violation_windows {
                if self.serving_variant + 1 < self.num_variants {
                    return Some(self.switch_variant(
                        self.serving_variant + 1,
                        ReconfigTrigger::QosViolation,
                        window.index,
                    ));
                }
                let observed = self.violating_qps_sum / self.consecutive_violations as f64;
                // Plan for the observed load with a safety margin, and never for less
                // than the load already planned for.
                let target = (observed * self.settings.scale_up_margin).max(self.planned_qps);
                return self
                    .replan(target, window.index, ReconfigTrigger::QosViolation)
                    .map(ControllerAction::Reconfig);
            }
        } else {
            self.consecutive_violations = 0;
            self.violating_qps_sum = 0.0;
            if window.arrival_qps < self.settings.overprovision_headroom * self.planned_qps {
                self.consecutive_overprov += 1;
                self.overprov_qps_sum += window.arrival_qps;
                if self.consecutive_overprov >= self.settings.overprovision_windows {
                    if self.serving_variant > 0 {
                        return Some(self.switch_variant(
                            self.serving_variant - 1,
                            ReconfigTrigger::OverProvisioning,
                            window.index,
                        ));
                    }
                    let observed = self.overprov_qps_sum / self.consecutive_overprov as f64;
                    // Plan with headroom, but stay a scale-down.
                    let target = (observed * self.settings.scale_down_margin).min(self.planned_qps);
                    return self
                        .replan(target, window.index, ReconfigTrigger::OverProvisioning)
                        .map(ControllerAction::Reconfig);
                }
            } else {
                self.consecutive_overprov = 0;
                self.overprov_qps_sum = 0.0;
            }
        }
        None
    }

    /// Whether a premium tier with served evidence missed its effective rate target in
    /// `window`: `Some(true)` when any did, `Some(false)` when all premium evidence is
    /// healthy, `None` when there is none (untiered controller, untiered window, or a
    /// window whose premium slices are all empty).
    fn premium_window_violated(&self, window: &WindowStats) -> Option<bool> {
        let set = self.tiers.as_ref()?;
        let mut verdict = None;
        for (t, spec) in set.tiers().iter().enumerate() {
            if spec.class != AdmissionClass::Premium {
                continue;
            }
            let Some(rate) = window.tiers.get(t).and_then(|tw| tw.satisfaction_rate) else {
                continue;
            };
            let target = set.effective_rate(t, self.policy.threshold());
            verdict = Some(verdict.unwrap_or(false) || rate < target);
        }
        verdict
    }

    /// Applies a serving-variant switch: like a replan it resets every hysteresis
    /// counter and starts the cooldown (the switched pool needs fresh evidence), but it
    /// burns no search budget and leaves the planned load untouched.
    fn switch_variant(
        &mut self,
        to: u32,
        trigger: ReconfigTrigger,
        window_index: u64,
    ) -> ControllerAction {
        self.consecutive_violations = 0;
        self.violating_qps_sum = 0.0;
        self.consecutive_overprov = 0;
        self.overprov_qps_sum = 0.0;
        self.consecutive_premium = 0;
        self.premium_qps_sum = 0.0;
        self.cooldown = self.settings.cooldown_windows;
        let from = self.serving_variant;
        self.serving_variant = to;
        ControllerAction::SwitchVariant {
            from,
            to,
            trigger,
            window_index,
        }
    }

    /// Runs a warm-started search for `target_qps` and updates the controller state.
    fn replan(
        &mut self,
        target_qps: f64,
        window_index: u64,
        trigger: ReconfigTrigger,
    ) -> Option<PlannedReconfig> {
        self.consecutive_violations = 0;
        self.violating_qps_sum = 0.0;
        self.consecutive_overprov = 0;
        self.overprov_qps_sum = 0.0;
        self.consecutive_premium = 0;
        self.premium_qps_sum = 0.0;
        self.cooldown = self.settings.cooldown_windows;
        self.replans += 1;

        let mut planning = self.base.clone();
        planning.num_queries = self.settings.planning_queries;
        let planning = planning.scaled_load(target_qps / self.base.qps);
        let evaluator = ConfigEvaluator::with_policy(
            &planning,
            self.settings.evaluator.clone(),
            self.policy.clone(),
        );
        let search = RibbonSearch::new(self.settings.replan.clone());
        let mut bo = search.make_optimizer(&evaluator);
        let lattice = evaluator.lattice();

        // Re-evaluate the deployed configuration on the planning load: the warm-start
        // anchor (and, when it still satisfies, a scale-down upper bound).
        let prev_on_new = evaluator.evaluate(&self.current);
        if lattice.contains(&self.current) {
            let _ = bo.observe(self.current.clone(), prev_on_new.objective);
        }
        if prev_on_new.meets_qos {
            // Everything above the still-satisfying deployment can only cost more.
            bo.prune_above(self.current.clone());
        } else if let Some(old_best) = self.current_evaluation().cloned() {
            // Inject the previous planning record as pseudo-observations, scaled by the
            // observed satisfaction drop (Sec. 4 warm start).
            inject_pseudo_observations(&mut bo, &self.record, &old_best, &prev_on_new, &evaluator);
        }

        let replan_seed = self
            .seed
            .wrapping_add((self.replans as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let trace = search.run_with(&evaluator, &mut bo, replan_seed);

        // Choose: the cheapest satisfying configuration, considering the re-evaluated
        // deployment too.
        let mut best = trace.best_satisfying().cloned();
        if prev_on_new.meets_qos
            && best
                .as_ref()
                .is_none_or(|b| prev_on_new.hourly_cost <= b.hourly_cost)
        {
            best = Some(prev_on_new.clone());
        }
        // A scale-up that found nothing satisfying falls back to the biggest pool the
        // search bounds allow — degraded service beats an unbounded queue.
        let best = best.or_else(|| {
            matches!(trigger, ReconfigTrigger::QosViolation)
                .then(|| evaluator.evaluate(evaluator.bounds()))
        })?;

        // The new planning phase becomes the warm-start record for the next replan. The
        // chosen configuration must be in it — a fallback (max-bounds) deployment is not
        // part of the search trace, and losing it would silently skip the warm start on
        // the *next* replan (`current_evaluation()` would find nothing).
        self.record = trace.evaluations().to_vec();
        self.record.push(prev_on_new);
        if !self.record.iter().any(|e| e.config == best.config) {
            self.record.push(best.clone());
        }
        self.planned_qps = planning.qps;

        if best.config == self.current {
            return None; // the deployed configuration is already the right one
        }
        self.current = best.config.clone();
        Some(PlannedReconfig {
            config: best.config.clone(),
            planned_qps: planning.qps,
            trigger,
            window_index,
            expected: best,
        })
    }
}

/// Shape of one full online serving run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OnlineRunSettings {
    /// Settings of the initial (pre-deployment) configuration search.
    pub initial_search: RibbonSettings,
    /// Controller hysteresis and replanning settings.
    pub controller: OnlineControllerSettings,
    /// Monitoring window shape.
    pub window: WindowConfig,
    /// Multiplier on per-type spin-up delays (see
    /// [`ribbon_cloudsim::InstanceType::spin_up_s`]).
    pub spin_up_factor: f64,
}

impl Default for OnlineRunSettings {
    fn default() -> Self {
        OnlineRunSettings {
            initial_search: RibbonSettings {
                max_evaluations: 20,
                ..RibbonSettings::fast()
            },
            controller: OnlineControllerSettings::default(),
            window: WindowConfig::tumbling(2.5),
            spin_up_factor: 1.0,
        }
    }
}

/// One applied reconfiguration, as reported by [`serve_online`].
///
/// A decision that both launches and retires instances is applied **make-before-break**:
/// the first phase grows the pool to the per-type union of old and new counts (`applied`),
/// and only once the newcomers are ready does the second phase retire the excess
/// (`completed`). Capacity therefore never dips below the old pool mid-transition — the
/// price is the union pool's cost for the spin-up overlap, which is exactly what the
/// simulator bills and [`transition_overlap_cost`] estimates.
#[derive(Debug, Clone, PartialEq)]
pub struct ReconfigEvent {
    /// The controller's decision.
    pub trigger: ReconfigTrigger,
    /// Index of the window that tripped the decision.
    pub window_index: u64,
    /// The load the new configuration was planned for.
    pub planned_qps: f64,
    /// The final per-type configuration of the decision.
    pub config: Vec<u32>,
    /// The first (possibly union-pool) application.
    pub applied: Reconfiguration,
    /// The deferred retire phase of a make-before-break transition, once applied.
    pub completed: Option<Reconfiguration>,
    /// Closed-form transition-cost estimate (both generations billed for the overlap).
    pub transition_cost_usd: f64,
}

/// Outcome of one [`serve_online`] run.
#[derive(Debug, Clone)]
pub struct OnlineOutcome {
    /// The configuration deployed at stream start.
    pub initial_config: Vec<u32>,
    /// Every monitoring window, in order (including those flushed at stream end).
    pub windows: Vec<WindowStats>,
    /// Every applied reconfiguration, in order.
    pub events: Vec<ReconfigEvent>,
    /// Every applied serving-variant switch, in order (empty without a palette).
    pub variant_events: Vec<VariantSwitchEvent>,
    /// Queries served per palette index (a single entry without a palette).
    pub variant_served: Vec<u64>,
    /// Palette index serving when the stream ended.
    pub final_variant: u32,
    /// Whole-stream aggregate statistics.
    pub stats: SimStats,
    /// Exact accrued cost in USD over the whole run (per-slot billing).
    pub total_cost_usd: f64,
    /// Run duration in seconds (last completion).
    pub duration_s: f64,
    /// The configuration deployed when the stream ended.
    pub final_config: Vec<u32>,
    /// Hourly cost of the final pool.
    pub final_hourly_cost: f64,
    /// The tier set the run served, when tiered (reporting key for `tier_totals`).
    pub tiers: Option<TierSet>,
    /// Whole-stream per-tier totals, index-aligned with `tiers` (empty when untiered).
    pub tier_totals: Vec<TierTotals>,
}

impl OnlineOutcome {
    /// Index of the first window at or after `from_index` whose satisfaction meets `rate`.
    pub fn first_healthy_window_after(&self, from_index: u64, rate: f64) -> Option<u64> {
        self.windows
            .iter()
            .filter(|w| w.index >= from_index)
            .find(|w| w.meets_rate(rate) == Some(true))
            .map(|w| w.index)
    }
}

/// Runs the full online scenario: search an initial configuration for `workload`, then
/// serve the phased `traffic` through a [`StreamingSim`] while the controller watches the
/// window stream and reconfigures mid-stream. Returns `None` if the initial search finds
/// no QoS-satisfying configuration.
///
/// Fully deterministic given `(workload, traffic, settings, seed)`: planning evaluations
/// are bit-identical across thread counts (the evaluator's invariant), so the decision
/// sequence is reproducible and CI pins it as a golden trace.
pub fn serve_online(
    workload: &Workload,
    traffic: &PhasedStreamConfig,
    settings: &OnlineRunSettings,
    seed: u64,
) -> Option<OnlineOutcome> {
    serve_online_with_policy(workload, traffic, settings, seed, Arc::new(workload.qos))
}

/// [`serve_online`] with an explicit [`QosPolicy`]: the streaming simulator classifies
/// queries against the policy's deadline, and the controller judges windows and plans
/// replans by the policy. With `Arc::new(workload.qos)` this is exactly [`serve_online`].
pub fn serve_online_with_policy(
    workload: &Workload,
    traffic: &PhasedStreamConfig,
    settings: &OnlineRunSettings,
    seed: u64,
    policy: Arc<dyn QosPolicy>,
) -> Option<OnlineOutcome> {
    serve_online_tiered(workload, traffic, settings, seed, policy, None)
}

/// [`serve_online_with_policy`] over a tiered stream: queries are tagged by the set's
/// deterministic [`TierAssigner`](ribbon_cloudsim::TierAssigner), the simulator runs
/// tier-aware dispatch (premium firm-clock preemption, best-effort admission caps), and
/// the controller watches premium windows on its shorter fuse. `tiers: None` is exactly
/// [`serve_online_with_policy`].
pub fn serve_online_tiered(
    workload: &Workload,
    traffic: &PhasedStreamConfig,
    settings: &OnlineRunSettings,
    seed: u64,
    policy: Arc<dyn QosPolicy>,
    tiers: Option<TierSet>,
) -> Option<OnlineOutcome> {
    let mut controller = OnlineController::bootstrap_with_policy(
        workload,
        &settings.initial_search,
        settings.controller.clone(),
        seed,
        policy.clone(),
    )?
    .with_tiers(tiers.clone());
    let initial_config = controller.current_config().to_vec();
    // With a variant palette the simulator times dispatches by the palette's latency
    // model (index 0, the initial serving variant, is the accuracy-best entry); without
    // one, the plain profile — the exact pre-variant code path.
    let base_profile = workload.profile();
    let variant_profile = workload
        .has_variant_axis()
        .then(|| workload.variant_profile());
    let model: &dyn ribbon_cloudsim::LatencyModel = match &variant_profile {
        Some(vp) => vp,
        None => &base_profile,
    };
    let pool = workload.diverse_pool_spec(&initial_config);
    let sim_config = StreamingSimConfig {
        target_latency_s: policy.deadline_s(),
        tail_percentile: policy.tail_percentile(),
        window: settings.window,
        spin_up_factor: settings.spin_up_factor,
    };
    let mut sim = StreamingSim::new(&pool, model, sim_config);
    let mut assigner = tiers.as_ref().map(|set| {
        sim.enable_tiers(set.clone());
        set.assigner()
    });

    let mut windows = Vec::new();
    let mut events: Vec<ReconfigEvent> = Vec::new();
    let mut variant_events: Vec<VariantSwitchEvent> = Vec::new();
    // Deferred retire phase of a make-before-break transition: (final pool, apply at,
    // index of the event it completes).
    let mut pending: Option<(ribbon_cloudsim::PoolSpec, f64, usize)> = None;
    // One closed-window buffer reused across every push: the hot loop allocates
    // nothing per query.
    let mut closed = Vec::new();
    for q in ribbon_cloudsim::PhasedQueryStream::new(traffic.clone()) {
        if let Some((final_pool, apply_at, event_idx)) = pending.take() {
            if q.arrival >= apply_at {
                events[event_idx].completed = Some(sim.reconfigure(&final_pool, apply_at));
            } else {
                pending = Some((final_pool, apply_at, event_idx));
            }
        }
        match assigner.as_mut() {
            Some(a) => {
                sim.push_tiered_into(&q, a.next_tier(), &mut closed);
            }
            None => sim.push_into(&q, &mut closed),
        }
        for w in closed.drain(..) {
            let end_s = w.end_s;
            let action = controller.observe_action(&w);
            if let Some(ControllerAction::SwitchVariant {
                from,
                to,
                trigger,
                window_index,
            }) = action
            {
                sim.set_serving_variant(to);
                variant_events.push(VariantSwitchEvent {
                    trigger,
                    window_index,
                    at_s: end_s,
                    from,
                    to,
                });
            } else if let Some(ControllerAction::Reconfig(plan)) = action {
                // A new decision supersedes any not-yet-completed retire phase.
                pending = None;
                let new_pool = workload.diverse_pool_spec(&plan.config);
                // Make-before-break: when the decision both launches and retires, grow to
                // the per-type union first and retire only once the newcomers are ready.
                let old_counts = sim.current_pool().counts.clone();
                let union: Vec<u32> = plan
                    .config
                    .iter()
                    .zip(&old_counts)
                    .map(|(&n, &o)| n.max(o))
                    .collect();
                let two_phase = union != plan.config && union != old_counts;
                let first_pool = if two_phase {
                    workload.diverse_pool_spec(&union)
                } else {
                    new_pool.clone()
                };
                let applied = sim.reconfigure(&first_pool, end_s);
                let transition_cost_usd = transition_overlap_cost(
                    &applied.old_pool,
                    &new_pool,
                    applied.ready_at_s - applied.at_s,
                );
                if two_phase {
                    pending = Some((new_pool, applied.ready_at_s, events.len()));
                }
                events.push(ReconfigEvent {
                    trigger: plan.trigger,
                    window_index: plan.window_index,
                    planned_qps: plan.planned_qps,
                    config: plan.config,
                    applied,
                    completed: None,
                    transition_cost_usd,
                });
            }
            windows.push(w);
        }
    }
    // A pending retire phase the stream ended before: apply it so the final pool matches
    // the controller's deployment.
    if let Some((final_pool, apply_at, event_idx)) = pending.take() {
        events[event_idx].completed = Some(sim.reconfigure(&final_pool, apply_at));
    }
    windows.extend(sim.finish_windows());

    let stats = sim.stats();
    let duration_s = stats.makespan.max(sim.clock());
    Some(OnlineOutcome {
        initial_config,
        windows,
        events,
        variant_events,
        variant_served: sim.variant_served().to_vec(),
        final_variant: sim.serving_variant(),
        total_cost_usd: sim.cost_so_far(duration_s),
        duration_s,
        final_config: controller.current_config().to_vec(),
        final_hourly_cost: sim.current_pool().hourly_cost(),
        tier_totals: sim.tier_totals().to_vec(),
        tiers,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ribbon_cloudsim::{PhasedArrivalProcess, WindowStats};
    use ribbon_models::ModelKind;

    fn settings() -> OnlineRunSettings {
        OnlineRunSettings {
            controller: OnlineControllerSettings {
                evaluator: EvaluatorSettings {
                    explicit_bounds: Some(vec![7, 4, 7]),
                    ..Default::default()
                },
                planning_queries: 800,
                ..Default::default()
            },
            window: WindowConfig::tumbling(2.0),
            ..Default::default()
        }
    }

    fn workload() -> Workload {
        Workload::standard(ModelKind::MtWnd)
    }

    fn synthetic_window(index: u64, rate: Option<f64>, qps: f64) -> WindowStats {
        WindowStats {
            index,
            start_s: index as f64,
            end_s: index as f64 + 1.0,
            num_queries: if rate.is_some() { 100 } else { 0 },
            satisfied: rate.map_or(0, |r| (r * 100.0) as usize),
            satisfaction_rate: rate,
            mean_latency_s: rate.map(|_| 0.01),
            tail_latency_s: rate.map(|_| 0.02),
            arrival_qps: qps,
            throughput_qps: qps,
            pool_hourly_cost: 2.0,
            cost_so_far_usd: 0.1,
            tiers: Vec::new(),
        }
    }

    #[test]
    fn bootstrap_deploys_a_satisfying_configuration() {
        let s = settings();
        let c = OnlineController::bootstrap(&workload(), &s.initial_search, s.controller, 3)
            .expect("initial search converges");
        let eval = c.current_evaluation().expect("record holds the deployment");
        assert!(eval.meets_qos);
        assert_eq!(c.planned_qps(), workload().qps);
        assert_eq!(c.replans(), 0);
    }

    #[test]
    fn single_violating_window_does_not_trip_the_hysteresis() {
        let s = settings();
        let mut c =
            OnlineController::bootstrap(&workload(), &s.initial_search, s.controller, 3).unwrap();
        assert!(c
            .observe(&synthetic_window(0, Some(0.90), 2100.0))
            .is_none());
        // A healthy window resets the streak; the next violation starts from scratch.
        assert!(c
            .observe(&synthetic_window(1, Some(0.999), 1400.0))
            .is_none());
        assert!(c
            .observe(&synthetic_window(2, Some(0.90), 2100.0))
            .is_none());
        assert_eq!(c.replans(), 0);
    }

    #[test]
    fn sustained_violation_replans_for_the_observed_load() {
        let s = settings();
        let mut c =
            OnlineController::bootstrap(&workload(), &s.initial_search, s.controller, 3).unwrap();
        let before = c.current_config().to_vec();
        assert!(c
            .observe(&synthetic_window(0, Some(0.90), 2100.0))
            .is_none());
        let plan = c
            .observe(&synthetic_window(1, Some(0.90), 2100.0))
            .expect("two violating windows trip the default hysteresis");
        assert_eq!(plan.trigger, ReconfigTrigger::QosViolation);
        assert!((plan.planned_qps - 2100.0 * 1.1).abs() < 1e-9);
        assert!(plan.expected.meets_qos, "replan found a satisfying pool");
        assert_ne!(plan.config, before, "scale-up changes the configuration");
        assert_eq!(c.replans(), 1);
        assert_eq!(c.current_config(), plan.config.as_slice());
    }

    #[test]
    fn empty_windows_freeze_the_hysteresis_counters() {
        let s = settings();
        let mut c =
            OnlineController::bootstrap(&workload(), &s.initial_search, s.controller, 3).unwrap();
        assert!(c
            .observe(&synthetic_window(0, Some(0.90), 2100.0))
            .is_none());
        // An empty window must not count as healthy (which would reset the violation
        // streak) nor as violating (which would trip it).
        assert!(c.observe(&synthetic_window(1, None, 0.0)).is_none());
        let plan = c.observe(&synthetic_window(2, Some(0.90), 2100.0));
        assert!(
            plan.is_some(),
            "the violation streak survives the empty window"
        );
    }

    #[test]
    fn cooldown_suppresses_decisions_after_a_replan() {
        let s = settings();
        let cooldown = s.controller.cooldown_windows;
        let mut c =
            OnlineController::bootstrap(&workload(), &s.initial_search, s.controller, 3).unwrap();
        c.observe(&synthetic_window(0, Some(0.90), 2100.0));
        c.observe(&synthetic_window(1, Some(0.90), 2100.0))
            .expect("replan");
        for i in 0..cooldown {
            assert!(
                c.observe(&synthetic_window(2 + i as u64, Some(0.5), 2100.0))
                    .is_none(),
                "window {i} falls in the cooldown"
            );
        }
        assert_eq!(c.replans(), 1);
    }

    #[test]
    fn sustained_overprovisioning_scales_back_down() {
        let s = settings();
        let over_windows = s.controller.overprovision_windows;
        let cooldown = s.controller.cooldown_windows;
        let mut c =
            OnlineController::bootstrap(&workload(), &s.initial_search, s.controller, 3).unwrap();
        // Scale up first.
        c.observe(&synthetic_window(0, Some(0.90), 2100.0));
        let up = c
            .observe(&synthetic_window(1, Some(0.90), 2100.0))
            .expect("scale-up");
        let up_cost = up.expected.hourly_cost;
        let mut idx = 2u64;
        for _ in 0..cooldown {
            c.observe(&synthetic_window(idx, Some(0.999), 1400.0));
            idx += 1;
        }
        // Healthy windows at the old (lower) load: 1400 < 0.8 * 2100.
        let mut down = None;
        for _ in 0..over_windows {
            down = c.observe(&synthetic_window(idx, Some(0.999), 1400.0));
            idx += 1;
        }
        let down = down.expect("sustained over-provisioning trips a scale-down");
        assert_eq!(down.trigger, ReconfigTrigger::OverProvisioning);
        assert!(
            down.expected.hourly_cost < up_cost,
            "scale-down must be cheaper than the spike pool (${} vs ${up_cost})",
            down.expected.hourly_cost
        );
        assert!(down.expected.meets_qos);
    }

    #[test]
    fn serve_online_without_traffic_shift_never_reconfigures() {
        let w = workload();
        let traffic = PhasedStreamConfig {
            arrivals: PhasedArrivalProcess::constant(w.qps, 20.0),
            batches: w.batch_distribution(),
            duration_s: 20.0,
            seed: 77,
        };
        let outcome = serve_online(&w, &traffic, &settings(), 3).expect("bootstrap converges");
        assert!(
            outcome.events.is_empty(),
            "steady traffic at the planned load needs no reconfiguration (events {:?})",
            outcome.events
        );
        assert_eq!(outcome.initial_config, outcome.final_config);
        assert!(!outcome.windows.is_empty());
        // Exact billing of a static pool is hourly cost × duration.
        let expected = outcome.final_hourly_cost * outcome.duration_s / 3600.0;
        assert!((outcome.total_cost_usd - expected).abs() < 1e-9);
    }
}
