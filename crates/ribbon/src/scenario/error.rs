//! Errors of the scenario façade: everything a malformed spec file, an unknown planner
//! name, or a failed run can produce, with enough path context to fix the file.

use ribbon_cloudsim::ConfigError;
use ribbon_spec::SpecError;
use std::fmt;

/// Why a scenario could not be loaded, compiled, or run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioError {
    /// The file could not be read.
    Io {
        /// The path that failed.
        path: String,
        /// The OS error text.
        message: String,
    },
    /// The file is not syntactically valid TOML/JSON.
    Parse(SpecError),
    /// The file parsed but a field is missing, mistyped, or out of domain.
    Invalid {
        /// Dotted path of the offending field (e.g. `qos.latency_ms`).
        path: String,
        /// What is wrong with it.
        message: String,
    },
    /// The scenario compiled but the run could not produce a result (e.g. no
    /// QoS-satisfying configuration within the budget).
    Run(String),
}

impl ScenarioError {
    /// An [`ScenarioError::Invalid`] at a dotted field path.
    pub fn invalid(path: impl Into<String>, message: impl fmt::Display) -> Self {
        ScenarioError::Invalid {
            path: path.into(),
            message: message.to_string(),
        }
    }

    /// Wraps a cloudsim [`ConfigError`] with the spec-field path that caused it.
    pub fn from_config(path: impl Into<String>, e: ConfigError) -> Self {
        ScenarioError::Invalid {
            path: path.into(),
            message: e.message().to_string(),
        }
    }

    /// Prefixes the field path of an [`ScenarioError::Invalid`] (e.g. `model[2]`), so
    /// errors from a fleet member's embedded sections point at the member.
    pub fn prefix_path(self, prefix: &str) -> Self {
        match self {
            ScenarioError::Invalid { path, message } => ScenarioError::Invalid {
                path: if path.is_empty() {
                    prefix.to_string()
                } else {
                    format!("{prefix}.{path}")
                },
                message,
            },
            other => other,
        }
    }
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Io { path, message } => write!(f, "{path}: {message}"),
            ScenarioError::Parse(e) => write!(f, "parse error at {e}"),
            ScenarioError::Invalid { path, message } => {
                write!(f, "invalid scenario: {path}: {message}")
            }
            ScenarioError::Run(message) => write!(f, "scenario run failed: {message}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<SpecError> for ScenarioError {
    fn from(e: SpecError) -> Self {
        ScenarioError::Parse(e)
    }
}
