//! The declarative scenario façade: one path from a spec file to a served report.
//!
//! Instead of wiring `Workload` → `ConfigEvaluator` → `RibbonSearch` → `serve_online` by
//! hand for every experiment, a scenario is *described* — instance catalog, workload,
//! QoS policy, traffic trace, planner, budgets — in a TOML/JSON file (or a
//! [`ScenarioSpec`] built in code), compiled once into engine objects, and executed by
//! any [`Planner`]:
//!
//! ```text
//! scenario.toml ── ScenarioSpec::from_toml_str ──> ScenarioSpec   (plain data, round-trips)
//!                                 │ compile
//!                                 v
//!                              Scenario            (catalog, workload, policy, settings)
//!                                 │ run / run_with(planner)
//!                                 v
//!                            ScenarioReport        (best pool, savings, trace, events)
//! ```
//!
//! The façade is a *veneer*: compiling a spec produces exactly the constructor calls the
//! pre-façade code made, so a RIBBON plan run from a spec file reproduces the golden
//! search traces bit for bit (pinned by `perfsnap --check` and the scenario test suite).
//!
//! # Example
//!
//! ```
//! use ribbon::scenario::ScenarioSpec;
//!
//! let toml = r#"
//!     [scenario]
//!     name = "demo"
//!     mode = "plan"
//!     seed = 7
//!
//!     [workload]
//!     model = "MT-WND"
//!     num_queries = 600
//!
//!     [planner]
//!     name = "ribbon"
//!     budget = 5
//!     baseline = false
//!
//!     [evaluator]
//!     bounds = [4, 2, 4]
//! "#;
//! let spec = ScenarioSpec::from_toml_str(toml).expect("valid spec");
//! // Lossless round-trip: serialize and reparse.
//! assert_eq!(ScenarioSpec::from_toml_str(&spec.to_toml_string()).unwrap(), spec);
//!
//! let scenario = spec.compile().expect("compiles against the builtin catalog");
//! let report = scenario.run().expect("the search runs");
//! assert_eq!(report.planner, "RIBBON");
//! assert!(report.plan.unwrap().trace.len() <= 5);
//! ```

mod error;
mod planner;
mod report;
pub(crate) mod spec;

pub use error::ScenarioError;
pub use planner::{planner_by_name, Planner, RibbonPlanner, SearchPlanner, ALL_PLANNER_NAMES};
pub use report::{
    BaselineReport, EventReport, PlanReport, ScenarioReport, ServeReport, TierReport,
};
pub use spec::{
    EvaluatorSpec, OnlineSpec, PhaseSpec, PlannerSpec, QosSpec, RunMode, ScenarioSpec, TierSpecDef,
    TrafficSpec, WorkloadSpec,
};

use crate::evaluator::{ConfigEvaluator, EvaluatorSettings};
use crate::online::{OnlineControllerSettings, OnlineRunSettings};
use crate::search::RibbonSettings;
use ribbon_cloudsim::{
    AdmissionClass, Catalog, DeadlinePolicy, MeanLatencyPolicy, PhasedArrivalProcess,
    PhasedStreamConfig, QosPolicy, QosTarget, RatePhase, TierSet, TierSpec, WindowConfig,
};
use ribbon_gp::FitConfig;
use ribbon_models::variants::{accuracy, supported_variants};
use ribbon_models::{
    BatchShape, ModelKind, TrafficScenario, VariantKind, Workload, ALL_MODELS, ALL_VARIANT_KINDS,
};
use ribbon_spec::Format;
use std::path::Path;
use std::sync::Arc;

/// A compiled, runnable scenario: the spec plus every engine object it resolved to.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The spec this scenario was compiled from.
    pub spec: ScenarioSpec,
    /// The instance catalog pools were resolved through.
    pub catalog: Catalog,
    /// The compiled workload.
    pub workload: Workload,
    /// The compiled QoS policy.
    pub policy: Arc<dyn QosPolicy>,
    /// Evaluator construction settings.
    pub evaluator_settings: EvaluatorSettings,
    /// RIBBON search settings (budget, pruning, GP grid).
    pub search_settings: RibbonSettings,
    /// Online-serving settings (initial search, controller hysteresis, window).
    pub online_settings: OnlineRunSettings,
    /// The compiled traffic trace, when the spec declares one.
    pub traffic: Option<PhasedStreamConfig>,
    /// The compiled `[[qos.tiers]]` priority classes. `None` for untiered specs *and*
    /// for the degenerate single default-`standard` tier, which is the untiered
    /// semantics exactly — compiling it away keeps such specs byte-identical to
    /// untiered runs.
    pub tiers: Option<TierSet>,
}

fn pos_f64(path: &str, v: f64) -> Result<f64, ScenarioError> {
    let ok = v.is_finite() && v > 0.0;
    if ok {
        Ok(v)
    } else {
        Err(ScenarioError::invalid(path, "must be a positive number"))
    }
}

impl ScenarioSpec {
    /// Compiles the spec against the built-in catalog (or the catalog file it names,
    /// resolved relative to the current directory). [`Scenario::load`] resolves relative
    /// to the spec file instead.
    pub fn compile(&self) -> Result<Scenario, ScenarioError> {
        self.compile_with_base(None)
    }

    /// Compiles the spec, resolving a relative `scenario.catalog` path against
    /// `base_dir`.
    pub fn compile_with_base(&self, base_dir: Option<&Path>) -> Result<Scenario, ScenarioError> {
        let catalog = match &self.catalog {
            None => Catalog::builtin(),
            Some(path) => {
                let resolved = match base_dir {
                    Some(dir) if !Path::new(path).is_absolute() => {
                        dir.join(path).to_string_lossy().into_owned()
                    }
                    _ => path.clone(),
                };
                Catalog::load(&resolved)
                    .map_err(|e| ScenarioError::from_config("scenario.catalog", e))?
            }
        };

        let (workload, policy) = self.compile_workload(&catalog)?;
        let evaluator_settings = self.compile_evaluator(&workload)?;
        let search_settings = self.compile_search(&workload)?;
        let online_settings = self.compile_online(&evaluator_settings, &search_settings)?;
        let traffic = self.compile_traffic(&workload)?;
        let tiers = self.compile_tiers()?;
        if self.mode == RunMode::Serve && traffic.is_none() {
            return Err(ScenarioError::invalid(
                "traffic",
                "serve mode requires a [traffic] section",
            ));
        }

        Ok(Scenario {
            spec: self.clone(),
            catalog,
            workload,
            policy,
            evaluator_settings,
            search_settings,
            online_settings,
            traffic,
            tiers,
        })
    }

    /// Compiles `[[qos.tiers]]` into a validated [`TierSet`]. A single
    /// default-`standard` tier is the untiered semantics exactly and compiles to
    /// `None`, so such specs keep reproducing untiered output byte for byte.
    fn compile_tiers(&self) -> Result<Option<TierSet>, ScenarioError> {
        let Some(defs) = &self.qos_tiers else {
            return Ok(None);
        };
        let mut specs = Vec::with_capacity(defs.len());
        for (i, d) in defs.iter().enumerate() {
            let path = format!("qos.tiers[{i}]");
            let class = AdmissionClass::from_name(&d.class).ok_or_else(|| {
                ScenarioError::invalid(
                    format!("{path}.class"),
                    format!(
                        "unknown admission class `{}` (premium, standard, best_effort)",
                        d.class
                    ),
                )
            })?;
            let mut spec = TierSpec::new(&d.name, class, d.weight.unwrap_or(1.0), d.share);
            spec.target_rate = d.target_rate;
            spec.target_latency_s = match d.latency_ms {
                None => None,
                Some(ms) => Some(pos_f64(&format!("{path}.latency_ms"), ms)? / 1000.0),
            };
            spec.admission_cap_s = match d.admission_cap_ms {
                None => None,
                Some(ms) if ms.is_finite() && ms >= 0.0 => Some(ms / 1000.0),
                Some(_) => {
                    return Err(ScenarioError::invalid(
                        format!("{path}.admission_cap_ms"),
                        "must be a non-negative number",
                    ))
                }
            };
            specs.push(spec);
        }
        let set = TierSet::try_new(specs)
            .map_err(|e| ScenarioError::invalid("qos.tiers", e.message()))?;
        Ok((!set.is_single_standard()).then_some(set))
    }

    fn compile_workload(
        &self,
        catalog: &Catalog,
    ) -> Result<(Workload, Arc<dyn QosPolicy>), ScenarioError> {
        let w = &self.workload;
        let kind = ModelKind::from_name(&w.model).ok_or_else(|| {
            ScenarioError::invalid(
                "workload.model",
                format!(
                    "unknown model `{}` (known: {})",
                    w.model,
                    ALL_MODELS.map(|m| m.name()).join(", ")
                ),
            )
        })?;
        let mut workload = Workload::standard(kind);
        if let Some(qps) = w.qps {
            workload.qps = pos_f64("workload.qps", qps)?;
        }
        if let Some(n) = w.num_queries {
            if n == 0 {
                return Err(ScenarioError::invalid(
                    "workload.num_queries",
                    "must be at least 1",
                ));
            }
            workload.num_queries = n;
        }
        if let Some(m) = w.median_batch {
            workload.median_batch = pos_f64("workload.median_batch", m)?;
        }
        if let Some(m) = w.max_batch {
            if m == 0 {
                return Err(ScenarioError::invalid(
                    "workload.max_batch",
                    "must be at least 1",
                ));
            }
            workload.max_batch = m;
        }
        if let Some(shape) = &w.batch_shape {
            workload.batch_shape = BatchShape::from_name(shape).ok_or_else(|| {
                ScenarioError::invalid(
                    "workload.batch_shape",
                    format!("unknown shape `{shape}` (heavy-tail, gaussian)"),
                )
            })?;
        }
        if let Some(seed) = w.stream_seed {
            workload.seed = seed;
        }
        if let Some(base) = &w.base_type {
            workload.base_type = catalog
                .resolve(base)
                .map_err(|e| ScenarioError::from_config("workload.base_type", e))?;
        }
        if let Some(pool) = &w.diverse_pool {
            if pool.is_empty() {
                return Err(ScenarioError::invalid(
                    "workload.diverse_pool",
                    "a pool needs at least one instance family",
                ));
            }
            workload.diverse_pool = pool
                .iter()
                .map(|family| {
                    catalog
                        .resolve(family)
                        .map_err(|e| ScenarioError::from_config("workload.diverse_pool", e))
                })
                .collect::<Result<Vec<_>, _>>()?;
        } else {
            // Even the model's standard pools must exist in a custom catalog: a catalog
            // restricted to CPU families must reject a GPU-pool scenario loudly.
            for ty in workload.diverse_pool.iter().chain([&workload.base_type]) {
                catalog
                    .resolve(ty.family())
                    .map_err(|e| ScenarioError::from_config("workload.diverse_pool", e))?;
            }
        }
        if let Some(names) = &w.variants {
            if names.is_empty() {
                return Err(ScenarioError::invalid(
                    "workload.variants",
                    "a variant palette needs at least one entry",
                ));
            }
            let supported = supported_variants(kind);
            let mut palette: Vec<VariantKind> = Vec::with_capacity(names.len());
            for (i, name) in names.iter().enumerate() {
                let path = format!("workload.variants[{i}]");
                let v = VariantKind::from_name(name).ok_or_else(|| {
                    ScenarioError::invalid(
                        &path,
                        format!(
                            "unknown variant `{name}` (known: {})",
                            ALL_VARIANT_KINDS.map(|v| v.name()).join(", ")
                        ),
                    )
                })?;
                if !supported.contains(&v) {
                    return Err(ScenarioError::invalid(
                        &path,
                        format!("model {} does not ship a `{name}` variant", kind.name()),
                    ));
                }
                if palette.contains(&v) {
                    return Err(ScenarioError::invalid(
                        &path,
                        format!("duplicate variant `{name}` in the palette"),
                    ));
                }
                // The planner's baseline config and the router's upgrade target are both
                // palette index 0, so the palette must lead with its best accuracy.
                if let Some(&prev) = palette.last() {
                    if accuracy(kind, v) > accuracy(kind, prev) {
                        return Err(ScenarioError::invalid(
                            &path,
                            format!(
                                "palette must be ordered accuracy-best first (`{name}` \
                                 outranks `{}`)",
                                prev.name()
                            ),
                        ));
                    }
                }
                palette.push(v);
            }
            workload.variants = palette;
        }
        if let Some(min) = w.min_accuracy {
            if !min.is_finite() || !(0.0..=1.0).contains(&min) {
                return Err(ScenarioError::invalid(
                    "workload.min_accuracy",
                    "must be a number in [0, 1]",
                ));
            }
            for (i, &v) in workload.variants.iter().enumerate() {
                let acc = accuracy(kind, v);
                if acc < min {
                    return Err(ScenarioError::invalid(
                        format!("workload.variants[{i}]"),
                        format!(
                            "variant `{}` serves accuracy {acc} below min_accuracy {min}",
                            v.name()
                        ),
                    ));
                }
            }
            workload.min_accuracy = Some(min);
        }

        let policy: Arc<dyn QosPolicy> = match &self.qos {
            None => Arc::new(workload.qos),
            Some(QosSpec::TailRate {
                latency_ms,
                target_rate,
            }) => {
                let target = QosTarget::try_new(latency_ms / 1000.0, *target_rate)
                    .map_err(|e| ScenarioError::from_config("qos", e))?;
                workload.qos = target;
                Arc::new(target)
            }
            Some(QosSpec::MeanLatency {
                mean_target_ms,
                latency_ms,
            }) => Arc::new(
                MeanLatencyPolicy::try_new(mean_target_ms / 1000.0, latency_ms / 1000.0)
                    .map_err(|e| ScenarioError::from_config("qos", e))?,
            ),
            Some(QosSpec::Deadline { latency_ms }) => Arc::new(
                DeadlinePolicy::try_new(latency_ms / 1000.0)
                    .map_err(|e| ScenarioError::from_config("qos", e))?,
            ),
        };
        Ok((workload, policy))
    }

    fn compile_evaluator(&self, workload: &Workload) -> Result<EvaluatorSettings, ScenarioError> {
        let e = &self.evaluator;
        let mut settings = EvaluatorSettings::default();
        if let Some(m) = e.max_per_type {
            if m == 0 {
                return Err(ScenarioError::invalid(
                    "evaluator.max_per_type",
                    "must be at least 1",
                ));
            }
            settings.max_per_type = m;
        }
        if let Some(eps) = e.saturation_epsilon {
            settings.saturation_epsilon = pos_f64("evaluator.saturation_epsilon", eps)?;
        }
        if let Some(bounds) = &e.bounds {
            if bounds.len() != workload.diverse_pool.len() {
                return Err(ScenarioError::invalid(
                    "evaluator.bounds",
                    format!(
                        "{} bounds for a {}-type pool",
                        bounds.len(),
                        workload.diverse_pool.len()
                    ),
                ));
            }
            if bounds.iter().all(|&b| b == 0) {
                return Err(ScenarioError::invalid(
                    "evaluator.bounds",
                    "at least one bound must be positive",
                ));
            }
            settings.explicit_bounds = Some(bounds.clone());
        }
        settings.threads = e.threads;
        Ok(settings)
    }

    fn compile_search(&self, workload: &Workload) -> Result<RibbonSettings, ScenarioError> {
        let p = &self.planner;
        if p.budget == 0 {
            return Err(ScenarioError::invalid(
                "planner.budget",
                "must be at least 1",
            ));
        }
        let fit = match p.fit.as_deref() {
            None | Some("coarse") => FitConfig::coarse(),
            Some("full") => FitConfig::default(),
            Some(other) => {
                return Err(ScenarioError::invalid(
                    "planner.fit",
                    format!("unknown GP grid `{other}` (coarse, full)"),
                ))
            }
        };
        if let Some(start) = &p.start_config {
            if start.len() != workload.diverse_pool.len() {
                return Err(ScenarioError::invalid(
                    "planner.start_config",
                    format!(
                        "{} entries for a {}-type pool",
                        start.len(),
                        workload.diverse_pool.len()
                    ),
                ));
            }
        }
        if let Some(batch) = p.batch {
            if batch == 0 {
                return Err(ScenarioError::invalid(
                    "planner.batch",
                    "must be at least 1",
                ));
            }
        }
        if let Some(f) = p.fidelity {
            if !(f > 0.0 && f < 1.0) {
                return Err(ScenarioError::invalid(
                    "planner.fidelity",
                    "must lie strictly between 0 and 1",
                ));
            }
        }
        let defaults = RibbonSettings::default();
        Ok(RibbonSettings {
            max_evaluations: p.budget,
            initial_samples: p.initial_samples.unwrap_or(defaults.initial_samples),
            prune_threshold: p.prune_threshold.unwrap_or(defaults.prune_threshold),
            acquisition: defaults.acquisition,
            fit,
            start_config: p.start_config.clone(),
            reuse_surrogate: p.reuse_surrogate.unwrap_or(defaults.reuse_surrogate),
            scan_threads: p.scan_threads,
            batch: p.batch.unwrap_or(defaults.batch),
            fidelity: p.fidelity.or(defaults.fidelity),
        })
    }

    fn compile_online(
        &self,
        evaluator_settings: &EvaluatorSettings,
        search_settings: &RibbonSettings,
    ) -> Result<OnlineRunSettings, ScenarioError> {
        let o = &self.online;
        let defaults = OnlineRunSettings::default();
        let length_s = match o.window_s {
            Some(v) => pos_f64("online.window_s", v)?,
            None => defaults.window.length_s,
        };
        let window = WindowConfig {
            length_s,
            step_s: match o.window_step_s {
                Some(v) => pos_f64("online.window_step_s", v)?,
                None => length_s,
            },
        };
        window
            .try_validate()
            .map_err(|e| ScenarioError::from_config("online.window_step_s", e))?;

        let mut controller = OnlineControllerSettings {
            evaluator: evaluator_settings.clone(),
            ..OnlineControllerSettings::default()
        };
        if let Some(v) = o.planning_queries {
            controller.planning_queries = v;
        }
        if let Some(v) = o.violation_windows {
            if v == 0 {
                return Err(ScenarioError::invalid(
                    "online.violation_windows",
                    "must be at least 1",
                ));
            }
            controller.violation_windows = v;
        }
        if let Some(v) = o.overprovision_windows {
            if v == 0 {
                return Err(ScenarioError::invalid(
                    "online.overprovision_windows",
                    "must be at least 1",
                ));
            }
            controller.overprovision_windows = v;
        }
        if let Some(v) = o.overprovision_headroom {
            controller.overprovision_headroom = pos_f64("online.overprovision_headroom", v)?;
        }
        if let Some(v) = o.cooldown_windows {
            controller.cooldown_windows = v;
        }
        if let Some(v) = o.scale_up_margin {
            controller.scale_up_margin = pos_f64("online.scale_up_margin", v)?;
        }
        if let Some(v) = o.scale_down_margin {
            controller.scale_down_margin = pos_f64("online.scale_down_margin", v)?;
        }
        if let Some(v) = o.replan_budget {
            if v == 0 {
                return Err(ScenarioError::invalid(
                    "online.replan_budget",
                    "must be at least 1",
                ));
            }
            controller.replan.max_evaluations = v;
        }

        if o.initial_budget == Some(0) {
            return Err(ScenarioError::invalid(
                "online.initial_budget",
                "must be at least 1",
            ));
        }
        Ok(OnlineRunSettings {
            initial_search: RibbonSettings {
                max_evaluations: o.initial_budget.unwrap_or(search_settings.max_evaluations),
                ..search_settings.clone()
            },
            controller,
            window,
            spin_up_factor: match o.spin_up_factor {
                Some(v) => pos_f64("online.spin_up_factor", v)?,
                None => defaults.spin_up_factor,
            },
        })
    }

    fn compile_traffic(
        &self,
        workload: &Workload,
    ) -> Result<Option<PhasedStreamConfig>, ScenarioError> {
        let Some(t) = &self.traffic else {
            return Ok(None);
        };
        match (&t.scenario, &t.phases) {
            (Some(name), None) => {
                let sc = TrafficScenario::from_name(name).ok_or_else(|| {
                    ScenarioError::invalid(
                        "traffic.scenario",
                        format!(
                            "unknown traffic scenario `{name}` (known: {})",
                            ribbon_models::ALL_SCENARIOS.map(|s| s.name()).join(", ")
                        ),
                    )
                })?;
                let duration = t.duration_s.ok_or_else(|| {
                    ScenarioError::invalid(
                        "traffic.duration_s",
                        "required for a named traffic scenario",
                    )
                })?;
                let duration = pos_f64("traffic.duration_s", duration)?;
                Ok(Some(sc.stream(workload, duration)))
            }
            (None, Some(phases)) => {
                let rate_phases: Vec<RatePhase> = phases
                    .iter()
                    .map(|p| RatePhase {
                        duration_s: p.duration_s,
                        qps: p.qps,
                    })
                    .collect();
                let arrivals = PhasedArrivalProcess::try_piecewise(rate_phases)
                    .map_err(|e| ScenarioError::from_config("traffic.phases", e))?;
                let total: f64 = phases.iter().map(|p| p.duration_s).sum();
                let duration_s = pos_f64("traffic.duration_s", t.duration_s.unwrap_or(total))?;
                Ok(Some(PhasedStreamConfig {
                    arrivals,
                    batches: workload.batch_distribution(),
                    duration_s,
                    // Deterministic but distinct from the plain evaluation stream.
                    seed: workload.seed ^ 0x7ace_c057,
                }))
            }
            (Some(_), Some(_)) => Err(ScenarioError::invalid(
                "traffic",
                "set either `scenario` or `phases`, not both",
            )),
            (None, None) => Err(ScenarioError::invalid(
                "traffic",
                "a [traffic] section needs a `scenario` name or a `phases` list",
            )),
        }
    }
}

impl Scenario {
    /// Loads and compiles a scenario file (TOML or JSON, by extension). Relative catalog
    /// paths resolve against the spec file's directory.
    pub fn load(path: &str) -> Result<Scenario, ScenarioError> {
        let text = std::fs::read_to_string(path).map_err(|e| ScenarioError::Io {
            path: path.to_string(),
            message: e.to_string(),
        })?;
        let value = Format::from_path(path).parse(&text)?;
        let spec = ScenarioSpec::from_value(&value)?;
        spec.compile_with_base(Path::new(path).parent())
    }

    /// Builds the configuration evaluator this scenario describes. A tiered scenario
    /// gets the tier-weighted objective over the tiered serving engine; untiered
    /// scenarios keep the historical evaluator bit for bit.
    pub fn build_evaluator(&self) -> ConfigEvaluator {
        ConfigEvaluator::with_policy_tiered(
            &self.workload,
            self.evaluator_settings.clone(),
            self.policy.clone(),
            self.tiers.clone(),
        )
    }

    /// Builds the joint variant × pool evaluator of a variant scenario.
    ///
    /// # Panics
    /// Panics when the workload declares no variant palette — callers branch on
    /// [`Workload::has_variant_axis`](ribbon_models::Workload::has_variant_axis) first.
    pub fn build_variant_evaluator(&self) -> crate::variant::VariantEvaluator {
        crate::variant::VariantEvaluator::with_policy(
            &self.workload,
            self.evaluator_settings.clone(),
            self.policy.clone(),
        )
    }

    /// The traffic trace, or a run error explaining that serve mode needs one.
    pub fn require_traffic(&self) -> Result<&PhasedStreamConfig, ScenarioError> {
        self.traffic.as_ref().ok_or_else(|| {
            ScenarioError::invalid("traffic", "this scenario declares no traffic trace")
        })
    }

    /// The planner the spec names.
    pub fn planner(&self) -> Result<Box<dyn Planner>, ScenarioError> {
        planner_by_name(&self.spec.planner.name, self)
    }

    /// Runs the scenario with its spec'd planner in its spec'd mode.
    pub fn run(&self) -> Result<ScenarioReport, ScenarioError> {
        self.planner()?.run(self)
    }

    /// Runs the scenario with an explicit planner (the `ribbon compare` path).
    pub fn run_with(&self, planner: &dyn Planner) -> Result<ScenarioReport, ScenarioError> {
        planner.run(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal_toml() -> &'static str {
        r#"
[scenario]
name = "t"
mode = "plan"
seed = 3

[workload]
model = "MT-WND"
num_queries = 600

[planner]
name = "ribbon"
budget = 4
baseline = false

[evaluator]
bounds = [4, 2, 4]
"#
    }

    #[test]
    fn minimal_spec_parses_compiles_and_runs() {
        let spec = ScenarioSpec::from_toml_str(minimal_toml()).unwrap();
        assert_eq!(spec.name, "t");
        assert_eq!(spec.mode, RunMode::Plan);
        let scenario = spec.compile().unwrap();
        assert_eq!(scenario.workload.num_queries, 600);
        assert_eq!(
            scenario.evaluator_settings.explicit_bounds,
            Some(vec![4, 2, 4])
        );
        assert_eq!(scenario.search_settings.max_evaluations, 4);
        let report = scenario.run().unwrap();
        assert_eq!(report.planner, "RIBBON");
        let plan = report.plan.expect("plan mode fills the plan section");
        assert!(plan.trace.len() <= 4);
        assert!(plan.baseline.is_none(), "baseline = false");
    }

    #[test]
    fn spec_round_trips_losslessly_through_toml_and_json() {
        let spec = ScenarioSpec::from_toml_str(minimal_toml()).unwrap();
        let via_toml = ScenarioSpec::from_toml_str(&spec.to_toml_string()).unwrap();
        assert_eq!(spec, via_toml);
        let via_json = ScenarioSpec::from_json_str(&spec.to_json_string()).unwrap();
        assert_eq!(spec, via_json);
    }

    #[test]
    fn facade_plan_is_bit_identical_to_the_direct_constructor_chain() {
        // The façade must be a veneer: same evaluator, same search, same trace.
        let spec = ScenarioSpec::from_toml_str(minimal_toml()).unwrap();
        let scenario = spec.compile().unwrap();
        let facade = scenario.run().unwrap().plan.unwrap().trace;

        let mut w = ribbon_models::Workload::standard(ModelKind::MtWnd);
        w.num_queries = 600;
        let evaluator = ConfigEvaluator::new(
            &w,
            EvaluatorSettings {
                explicit_bounds: Some(vec![4, 2, 4]),
                ..Default::default()
            },
        );
        let direct = crate::search::RibbonSearch::new(RibbonSettings {
            max_evaluations: 4,
            ..RibbonSettings::fast()
        })
        .run(&evaluator, 3);
        assert_eq!(facade.evaluations(), direct.evaluations());
    }

    #[test]
    fn unknown_keys_and_sections_are_rejected() {
        let bad = minimal_toml().replace("budget = 4", "budget = 4\nbugdet = 9");
        let e = ScenarioSpec::from_toml_str(&bad).unwrap_err();
        assert!(e.to_string().contains("planner.bugdet"), "{e}");

        let bad = format!("{}\n[mystery]\nx = 1\n", minimal_toml());
        let e = ScenarioSpec::from_toml_str(&bad).unwrap_err();
        assert!(e.to_string().contains("mystery"), "{e}");
    }

    #[test]
    fn scalar_where_a_section_belongs_is_an_error_not_an_empty_section() {
        // A top-level `planner = "random"` (instead of a [planner] table) must not
        // silently compile to the default planner.
        let without_planner_section = minimal_toml().replace(
            "[planner]\nname = \"ribbon\"\nbudget = 4\nbaseline = false\n",
            "",
        );
        let bad = format!("planner = \"random\"\n{without_planner_section}");
        let e = ScenarioSpec::from_toml_str(&bad).unwrap_err();
        assert!(e.to_string().contains("planner"), "{e}");
        assert!(e.to_string().contains("table"), "{e}");
    }

    #[test]
    fn qos_keys_are_checked_per_policy() {
        // target_rate under a deadline policy is a misunderstanding, not a knob.
        let toml = format!(
            "{}\n[qos]\npolicy = \"deadline\"\nlatency_ms = 20.0\ntarget_rate = 0.5\n",
            minimal_toml()
        );
        let e = ScenarioSpec::from_toml_str(&toml).unwrap_err();
        assert!(e.to_string().contains("qos.target_rate"), "{e}");

        let toml = format!(
            "{}\n[qos]\nlatency_ms = 20.0\nmean_target_ms = 10.0\n",
            minimal_toml()
        );
        let e = ScenarioSpec::from_toml_str(&toml).unwrap_err();
        assert!(e.to_string().contains("qos.mean_target_ms"), "{e}");
    }

    #[test]
    fn crlf_scenario_files_parse() {
        let toml = format!(
            "{}\n[traffic]\nphases = [\n  {{ duration_s = 5.0, qps = 900.0 }},\n]\n",
            minimal_toml()
        )
        .replace('\n', "\r\n");
        let spec = ScenarioSpec::from_toml_str(&toml).expect("CRLF files parse");
        assert_eq!(spec.traffic.unwrap().phases.unwrap().len(), 1);
    }

    #[test]
    fn domain_errors_carry_field_paths() {
        let cases: Vec<(&str, &str, &str)> = vec![
            ("model = \"MT-WND\"", "model = \"GPT-5\"", "workload.model"),
            ("bounds = [4, 2, 4]", "bounds = [4, 2]", "evaluator.bounds"),
            ("budget = 4", "budget = 0", "planner.budget"),
            (
                "num_queries = 600",
                "num_queries = 0",
                "workload.num_queries",
            ),
            (
                "seed = 3",
                "seed = 3\n\n[online]\nviolation_windows = 0",
                "online.violation_windows",
            ),
            (
                "seed = 3",
                "seed = 3\n\n[online]\noverprovision_windows = 0",
                "online.overprovision_windows",
            ),
            (
                "seed = 3",
                "seed = 3\n\n[online]\ninitial_budget = 0",
                "online.initial_budget",
            ),
        ];
        for (from, to, expected_path) in cases {
            let toml = minimal_toml().replace(from, to);
            let spec = ScenarioSpec::from_toml_str(&toml).unwrap();
            let e = spec.compile().unwrap_err();
            assert!(
                e.to_string().contains(expected_path),
                "{to}: {e} (expected path {expected_path})"
            );
        }
    }

    #[test]
    fn qos_policies_compile_to_the_right_types() {
        let toml = format!(
            "{}\n[qos]\npolicy = \"mean-latency\"\nmean_target_ms = 12.0\n",
            minimal_toml()
        );
        let scenario = ScenarioSpec::from_toml_str(&toml)
            .unwrap()
            .compile()
            .unwrap();
        assert!(scenario.policy.describe().contains("mean latency"));
        assert_eq!(scenario.policy.deadline_s(), 0.024, "default 2x deadline");

        let toml = format!(
            "{}\n[qos]\npolicy = \"deadline\"\nlatency_ms = 25.0\n",
            minimal_toml()
        );
        let scenario = ScenarioSpec::from_toml_str(&toml)
            .unwrap()
            .compile()
            .unwrap();
        assert_eq!(scenario.policy.threshold(), 1.0);

        let toml = format!(
            "{}\n[qos]\nlatency_ms = 20.0\ntarget_rate = 0.98\n",
            minimal_toml()
        );
        let scenario = ScenarioSpec::from_toml_str(&toml)
            .unwrap()
            .compile()
            .unwrap();
        assert_eq!(scenario.workload.qos.target_rate, 0.98);

        let toml = format!("{}\n[qos]\nlatency_ms = -4.0\n", minimal_toml());
        let e = ScenarioSpec::from_toml_str(&toml)
            .unwrap()
            .compile()
            .unwrap_err();
        assert!(e.to_string().contains("qos"), "{e}");
    }

    #[test]
    fn serve_mode_requires_traffic() {
        let toml = minimal_toml().replace("mode = \"plan\"", "mode = \"serve\"");
        let e = ScenarioSpec::from_toml_str(&toml)
            .unwrap()
            .compile()
            .unwrap_err();
        assert!(e.to_string().contains("traffic"), "{e}");
    }

    #[test]
    fn inline_phase_traffic_compiles() {
        let toml = format!(
            "{}\n[traffic]\nphases = [{{ duration_s = 5.0, qps = 900.0 }}, \
             {{ duration_s = 5.0, qps = 1400.0 }}]\n",
            minimal_toml()
        );
        let scenario = ScenarioSpec::from_toml_str(&toml)
            .unwrap()
            .compile()
            .unwrap();
        let traffic = scenario.traffic.expect("phases compile to a stream");
        assert_eq!(
            traffic.duration_s, 10.0,
            "duration defaults to the phase sum"
        );
        assert_eq!(traffic.arrivals.phases.len(), 2);

        let bad = format!(
            "{}\n[traffic]\nphases = [{{ duration_s = -1.0, qps = 900.0 }}]\n",
            minimal_toml()
        );
        let e = ScenarioSpec::from_toml_str(&bad)
            .unwrap()
            .compile()
            .unwrap_err();
        assert!(e.to_string().contains("traffic.phases"), "{e}");
    }

    #[test]
    fn named_traffic_and_planner_names_resolve() {
        let toml = format!(
            "{}\n[traffic]\nscenario = \"flash-crowd\"\nduration_s = 20.0\n",
            minimal_toml()
        );
        let scenario = ScenarioSpec::from_toml_str(&toml)
            .unwrap()
            .compile()
            .unwrap();
        assert!(scenario.traffic.is_some());
        for name in ALL_PLANNER_NAMES {
            assert!(planner_by_name(name, &scenario).is_ok(), "{name}");
        }
        assert!(planner_by_name("simulated-annealing", &scenario).is_err());
    }

    #[test]
    fn custom_catalog_restricts_the_pool() {
        // A CPU-only catalog must reject the MT-WND GPU pool.
        let dir = std::env::temp_dir().join("ribbon-scenario-test-catalog");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cpu_only.toml");
        let cpu_only = ribbon_cloudsim::Catalog::from_entries(
            ribbon_cloudsim::Catalog::builtin()
                .entries()
                .iter()
                .filter(|e| e.family != "g4dn")
                .cloned()
                .collect(),
        )
        .unwrap();
        std::fs::write(
            &path,
            ribbon_spec::toml::to_string(&cpu_only.to_value()).unwrap(),
        )
        .unwrap();

        let toml = minimal_toml().replace(
            "seed = 3",
            &format!("seed = 3\ncatalog = \"{}\"", path.display()),
        );
        let e = ScenarioSpec::from_toml_str(&toml)
            .unwrap()
            .compile()
            .unwrap_err();
        assert!(e.to_string().contains("g4dn"), "{e}");
    }
}
