//! The typed scenario schema: what a `scenario.toml` (or `.json`) file contains.
//!
//! [`ScenarioSpec`] is a *description* — plain data, fully serializable, comparable —
//! compiled into runnable engine objects by [`super::Scenario`]. Parsing is strict:
//! unknown keys and sections are rejected (a typo must be an error, not a silently
//! ignored knob), every error carries the dotted path of the offending field, and
//! `to_value` emits exactly the fields that were set, so `parse → serialize → parse`
//! reproduces the spec losslessly.

use super::error::ScenarioError;
use ribbon_spec::Value;
use serde::{Deserialize, Serialize};

/// What a planner should do with a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum RunMode {
    /// Offline search only: find the best pool configuration.
    #[default]
    Plan,
    /// Online serving: search an initial deployment, then serve the traffic trace with
    /// windowed monitoring (and, for the RIBBON planner, mid-stream reconfiguration).
    Serve,
}

impl RunMode {
    /// The stable name scenario files use.
    pub fn name(&self) -> &'static str {
        match self {
            RunMode::Plan => "plan",
            RunMode::Serve => "serve",
        }
    }

    /// Parses a scenario-file mode name.
    pub fn from_name(name: &str) -> Option<RunMode> {
        [RunMode::Plan, RunMode::Serve]
            .into_iter()
            .find(|m| m.name().eq_ignore_ascii_case(name))
    }
}

/// `[workload]`: which model is served and optional overrides of its standard shape.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Model name (`"MT-WND"`, `"DIEN"`, `"CANDLE"`, `"ResNet50"`, `"VGG19"`).
    pub model: String,
    /// Mean arrival rate override (queries/second).
    pub qps: Option<f64>,
    /// Queries per configuration evaluation.
    pub num_queries: Option<usize>,
    /// Median batch size.
    pub median_batch: Option<f64>,
    /// Maximum batch size.
    pub max_batch: Option<u32>,
    /// Batch-size distribution shape (`"heavy-tail"` or `"gaussian"`).
    pub batch_shape: Option<String>,
    /// Query-stream RNG seed.
    pub stream_seed: Option<u64>,
    /// Homogeneous-baseline instance family (catalog name, e.g. `"g4dn"`).
    pub base_type: Option<String>,
    /// Diverse-pool instance families in dispatch-preference order.
    pub diverse_pool: Option<Vec<String>>,
    /// Serving-variant palette in preference order (index 0 is the accuracy-best
    /// variant the planner and router fall back to). Unset = no variant axis.
    pub variants: Option<Vec<String>>,
    /// Minimum acceptable serving accuracy; every listed variant must meet it.
    pub min_accuracy: Option<f64>,
}

/// `[qos]`: the acceptance criterion (defaults to the model's standard p99 target).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum QosSpec {
    /// `target_rate` of queries within `latency_ms` (the paper's form).
    TailRate {
        /// Per-query deadline in milliseconds.
        latency_ms: f64,
        /// Required in-deadline fraction in `(0, 1]`.
        target_rate: f64,
    },
    /// Mean latency at or below `mean_target_ms`; `latency_ms` classifies individual
    /// queries for reporting.
    MeanLatency {
        /// Mean-latency budget in milliseconds.
        mean_target_ms: f64,
        /// Per-query classification deadline in milliseconds.
        latency_ms: f64,
    },
    /// Every query within `latency_ms`.
    Deadline {
        /// The hard per-query deadline in milliseconds.
        latency_ms: f64,
    },
}

/// One `[[qos.tiers]]` entry: a named priority class sharing the model's pool.
///
/// Tiers split the model's query stream into weighted priority classes served from the
/// same slots: `premium` dispatches on the firm clock (and may preempt queued
/// best-effort work), `standard` keeps the untiered dispatch exactly, and
/// `best_effort` absorbs overflow queueing and may be admission-dropped past
/// `admission_cap_ms`. A single default-`standard` tier compiles away entirely, so
/// such a spec stays byte-identical to an untiered one.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TierSpecDef {
    /// Tier name, unique within the model (used in reports).
    pub name: String,
    /// Admission class: `"premium"`, `"standard"`, or `"best_effort"`.
    pub class: String,
    /// Objective weight of the tier in the tier-weighted Eq. 2 (default 1.0).
    pub weight: Option<f64>,
    /// Fraction of the model's queries assigned to the tier; shares must sum to 1.
    pub share: f64,
    /// Per-tier in-deadline rate override (defaults to the model's QoS target rate).
    pub target_rate: Option<f64>,
    /// Per-tier deadline override in milliseconds (defaults to the model's deadline).
    pub latency_ms: Option<f64>,
    /// Best-effort only: maximum queueing delay in milliseconds before a query is
    /// admission-dropped instead of served.
    pub admission_cap_ms: Option<f64>,
}

/// `[planner]`: which planner runs the scenario and its search knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlannerSpec {
    /// Planner name: `ribbon`, `tpe`, `random`, `hill-climb`, `rsm`, or `exhaustive`.
    pub name: String,
    /// Evaluation budget of the (initial) search.
    pub budget: usize,
    /// Whether to compute the homogeneous baseline and savings (plan mode).
    pub baseline: bool,
    /// Random space-filling evaluations before the GP takes over (RIBBON).
    pub initial_samples: Option<usize>,
    /// Active-pruning threshold θ (RIBBON).
    pub prune_threshold: Option<f64>,
    /// GP hyperparameter grid: `"coarse"` (default) or `"full"`.
    pub fit: Option<String>,
    /// Reuse the GP surrogate incrementally across iterations (RIBBON).
    pub reuse_surrogate: Option<bool>,
    /// Worker threads for the BO acquisition scan (RIBBON).
    pub scan_threads: Option<usize>,
    /// Starting configuration evaluated before the BO loop (RIBBON).
    pub start_config: Option<Vec<u32>>,
    /// Candidates asked per optimizer round (`q`); batches evaluate in parallel.
    pub batch: Option<usize>,
    /// Successive-halving prefix fraction in `(0, 1)`; unset disables multi-fidelity.
    pub fidelity: Option<f64>,
}

impl Default for PlannerSpec {
    fn default() -> Self {
        PlannerSpec {
            name: "ribbon".to_string(),
            budget: 30,
            baseline: true,
            initial_samples: None,
            prune_threshold: None,
            fit: None,
            reuse_surrogate: None,
            scan_threads: None,
            start_config: None,
            batch: None,
            fidelity: None,
        }
    }
}

/// `[evaluator]`: how configurations are evaluated.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct EvaluatorSpec {
    /// Hard cap on every per-type search bound.
    pub max_per_type: Option<u32>,
    /// Saturation epsilon of the bound probe.
    pub saturation_epsilon: Option<f64>,
    /// Explicit per-type bounds, skipping the probe.
    pub bounds: Option<Vec<u32>>,
    /// Worker threads for batch evaluation.
    pub threads: Option<usize>,
}

/// One phase of an inline traffic schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseSpec {
    /// Phase length in seconds.
    pub duration_s: f64,
    /// Mean arrival rate during the phase (queries/second).
    pub qps: f64,
}

/// `[traffic]`: the time-varying load of a serve-mode run — either a named
/// [`ribbon_models::TrafficScenario`] or an explicit phase list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficSpec {
    /// Named scenario (`"diurnal"`, `"flash-crowd"`, `"slow-ramp"`, `"load-drop"`).
    pub scenario: Option<String>,
    /// Explicit piecewise-constant phases (mutually exclusive with `scenario`).
    pub phases: Option<Vec<PhaseSpec>>,
    /// Run duration in seconds (defaults to the phase sum for inline phases).
    pub duration_s: Option<f64>,
}

/// `[online]`: monitoring-window shape and controller hysteresis for serve mode.
/// Unset fields fall back to [`crate::online::OnlineControllerSettings::default`].
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct OnlineSpec {
    /// Monitoring window length in seconds.
    pub window_s: Option<f64>,
    /// Window stride (defaults to `window_s`: tumbling windows).
    pub window_step_s: Option<f64>,
    /// Multiplier on per-type spin-up delays.
    pub spin_up_factor: Option<f64>,
    /// Evaluation budget of the initial search (defaults to `planner.budget`).
    pub initial_budget: Option<usize>,
    /// Evaluation budget of every mid-stream replan.
    pub replan_budget: Option<usize>,
    /// Queries per planning stream at base load.
    pub planning_queries: Option<usize>,
    /// Consecutive violating windows before a scale-up replan.
    pub violation_windows: Option<usize>,
    /// Consecutive underloaded-but-healthy windows before a scale-down replan.
    pub overprovision_windows: Option<usize>,
    /// Underload threshold as a fraction of the planned load.
    pub overprovision_headroom: Option<f64>,
    /// Windows ignored after a replan.
    pub cooldown_windows: Option<usize>,
    /// Load multiplier when planning a scale-up.
    pub scale_up_margin: Option<f64>,
    /// Load multiplier when planning a scale-down.
    pub scale_down_margin: Option<f64>,
}

/// A complete declarative scenario: everything a planner needs, from the instance
/// catalog to the traffic trace, as plain serializable data.
///
/// See the crate-level docs and the repository's `scenarios/` directory for examples;
/// [`super::Scenario::load`] goes from a file path to a compiled, runnable scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Scenario name (used in reports and output files).
    pub name: String,
    /// Free-form description.
    pub description: String,
    /// What to do: offline `plan` or online `serve`.
    pub mode: RunMode,
    /// Master seed of the run (search suggestions, replans).
    pub seed: u64,
    /// Path to an instance-catalog data file (default: the built-in Table 2 catalog).
    /// Relative paths resolve against the spec file's directory.
    pub catalog: Option<String>,
    /// The served workload.
    pub workload: WorkloadSpec,
    /// The acceptance criterion (default: the model's standard tail-rate target).
    pub qos: Option<QosSpec>,
    /// `[[qos.tiers]]`: optional priority classes splitting the query stream.
    pub qos_tiers: Option<Vec<TierSpecDef>>,
    /// The planner and its knobs.
    pub planner: PlannerSpec,
    /// Evaluator construction knobs.
    pub evaluator: EvaluatorSpec,
    /// Traffic trace (required for serve mode).
    pub traffic: Option<TrafficSpec>,
    /// Online-serving knobs.
    pub online: OnlineSpec,
}

// ---------------------------------------------------------------------------
// Value-tree reading helpers: every accessor knows its dotted path.
// ---------------------------------------------------------------------------

/// A top-level section: present and a table, present but mistyped (error), or absent.
/// A scalar where a `[section]` belongs must not silently read as "empty section" —
/// every one of its keys would be dropped.
fn section<'a>(root: &'a Value, key: &str) -> Result<Option<&'a Value>, ScenarioError> {
    match root.get(key) {
        None => Ok(None),
        Some(v) if v.as_table().is_some() => Ok(Some(v)),
        Some(v) => Err(ScenarioError::invalid(
            key,
            format!("expected a [{key}] table, found {}", v.type_name()),
        )),
    }
}

fn check_keys(table: &Value, path: &str, allowed: &[&str]) -> Result<(), ScenarioError> {
    for key in table.keys() {
        if !allowed.contains(&key) {
            return Err(ScenarioError::invalid(
                format!("{path}.{key}"),
                format!("unknown key (expected one of: {})", allowed.join(", ")),
            ));
        }
    }
    Ok(())
}

fn field_path(path: &str, key: &str) -> String {
    if path.is_empty() {
        key.to_string()
    } else {
        format!("{path}.{key}")
    }
}

fn opt_str(table: &Value, path: &str, key: &str) -> Result<Option<String>, ScenarioError> {
    match table.get(key) {
        None => Ok(None),
        Some(v) => v.as_str().map(|s| Some(s.to_string())).ok_or_else(|| {
            ScenarioError::invalid(
                field_path(path, key),
                format!("expected a string, found {}", v.type_name()),
            )
        }),
    }
}

fn opt_f64(table: &Value, path: &str, key: &str) -> Result<Option<f64>, ScenarioError> {
    match table.get(key) {
        None => Ok(None),
        Some(v) => v.as_f64().map(Some).ok_or_else(|| {
            ScenarioError::invalid(
                field_path(path, key),
                format!("expected a number, found {}", v.type_name()),
            )
        }),
    }
}

fn opt_bool(table: &Value, path: &str, key: &str) -> Result<Option<bool>, ScenarioError> {
    match table.get(key) {
        None => Ok(None),
        Some(v) => v.as_bool().map(Some).ok_or_else(|| {
            ScenarioError::invalid(
                field_path(path, key),
                format!("expected a boolean, found {}", v.type_name()),
            )
        }),
    }
}

fn opt_unsigned(table: &Value, path: &str, key: &str) -> Result<Option<u64>, ScenarioError> {
    match table.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_i64()
            .and_then(|i| u64::try_from(i).ok())
            .map(Some)
            .ok_or_else(|| {
                ScenarioError::invalid(
                    field_path(path, key),
                    format!("expected a non-negative integer, found {}", v.type_name()),
                )
            }),
    }
}

fn opt_usize(table: &Value, path: &str, key: &str) -> Result<Option<usize>, ScenarioError> {
    Ok(opt_unsigned(table, path, key)?.map(|v| v as usize))
}

fn opt_u32(table: &Value, path: &str, key: &str) -> Result<Option<u32>, ScenarioError> {
    match opt_unsigned(table, path, key)? {
        None => Ok(None),
        Some(v) => u32::try_from(v).map(Some).map_err(|_| {
            ScenarioError::invalid(field_path(path, key), "value does not fit in 32 bits")
        }),
    }
}

fn opt_u32_list(table: &Value, path: &str, key: &str) -> Result<Option<Vec<u32>>, ScenarioError> {
    match table.get(key) {
        None => Ok(None),
        Some(v) => {
            let items = v.as_array().ok_or_else(|| {
                ScenarioError::invalid(
                    field_path(path, key),
                    format!("expected an array of integers, found {}", v.type_name()),
                )
            })?;
            items
                .iter()
                .map(|item| {
                    item.as_i64()
                        .and_then(|i| u32::try_from(i).ok())
                        .ok_or_else(|| {
                            ScenarioError::invalid(
                                field_path(path, key),
                                "expected non-negative integers",
                            )
                        })
                })
                .collect::<Result<Vec<u32>, _>>()
                .map(Some)
        }
    }
}

fn opt_str_list(
    table: &Value,
    path: &str,
    key: &str,
) -> Result<Option<Vec<String>>, ScenarioError> {
    match table.get(key) {
        None => Ok(None),
        Some(v) => {
            let items = v.as_array().ok_or_else(|| {
                ScenarioError::invalid(
                    field_path(path, key),
                    format!("expected an array of strings, found {}", v.type_name()),
                )
            })?;
            items
                .iter()
                .map(|item| {
                    item.as_str().map(str::to_string).ok_or_else(|| {
                        ScenarioError::invalid(field_path(path, key), "expected strings")
                    })
                })
                .collect::<Result<Vec<String>, _>>()
                .map(Some)
        }
    }
}

fn req_str(table: &Value, path: &str, key: &str) -> Result<String, ScenarioError> {
    opt_str(table, path, key)?
        .ok_or_else(|| ScenarioError::invalid(field_path(path, key), "required field is missing"))
}

fn req_f64(table: &Value, path: &str, key: &str) -> Result<f64, ScenarioError> {
    opt_f64(table, path, key)?
        .ok_or_else(|| ScenarioError::invalid(field_path(path, key), "required field is missing"))
}

// ---------------------------------------------------------------------------
// Parsing.
// ---------------------------------------------------------------------------

impl ScenarioSpec {
    /// Builds a spec from a parsed value tree, validating shape and key names.
    pub fn from_value(root: &Value) -> Result<ScenarioSpec, ScenarioError> {
        if root.as_table().is_none() {
            return Err(ScenarioError::invalid("", "a scenario must be a table"));
        }
        check_keys(
            root,
            "",
            &[
                "scenario",
                "workload",
                "qos",
                "planner",
                "evaluator",
                "traffic",
                "online",
            ],
        )?;

        let header = section(root, "scenario")?
            .ok_or_else(|| ScenarioError::invalid("scenario", "missing [scenario] section"))?;
        check_keys(
            header,
            "scenario",
            &["name", "description", "mode", "seed", "catalog"],
        )?;
        let name = req_str(header, "scenario", "name")?;
        let description = opt_str(header, "scenario", "description")?.unwrap_or_default();
        let mode = match opt_str(header, "scenario", "mode")? {
            None => RunMode::default(),
            Some(m) => RunMode::from_name(&m).ok_or_else(|| {
                ScenarioError::invalid("scenario.mode", format!("unknown mode `{m}`"))
            })?,
        };
        let seed = opt_unsigned(header, "scenario", "seed")?.unwrap_or(0);
        let catalog = opt_str(header, "scenario", "catalog")?;

        let workload_table = section(root, "workload")?
            .ok_or_else(|| ScenarioError::invalid("workload", "missing [workload] section"))?;
        let workload = Self::workload_from(workload_table)?;
        let (qos, qos_tiers) = match section(root, "qos")? {
            None => (None, None),
            Some(t) => Self::qos_section_from(t, "qos")?,
        };
        let planner = match section(root, "planner")? {
            None => PlannerSpec::default(),
            Some(t) => Self::planner_from(t)?,
        };
        let evaluator = match section(root, "evaluator")? {
            None => EvaluatorSpec::default(),
            Some(t) => Self::evaluator_from(t)?,
        };
        let traffic = match section(root, "traffic")? {
            None => None,
            Some(t) => Some(Self::traffic_from(t)?),
        };
        let online = match section(root, "online")? {
            None => OnlineSpec::default(),
            Some(t) => Self::online_from(t)?,
        };

        Ok(ScenarioSpec {
            name,
            description,
            mode,
            seed,
            catalog,
            workload,
            qos,
            qos_tiers,
            planner,
            evaluator,
            traffic,
            online,
        })
    }

    /// Parses a full `[qos]` section: the policy (when any policy key is present) plus
    /// the optional `[[qos.tiers]]` priority classes. A section holding *only* tiers
    /// keeps the model's default policy.
    pub(crate) fn qos_section_from(
        t: &Value,
        path: &str,
    ) -> Result<(Option<QosSpec>, Option<Vec<TierSpecDef>>), ScenarioError> {
        let tiers = Self::qos_tiers_from(t, path)?;
        let has_policy_keys = t.keys().iter().any(|&k| k != "tiers");
        let qos = if has_policy_keys {
            Some(Self::qos_from(t)?)
        } else {
            None
        };
        Ok((qos, tiers))
    }

    fn qos_tiers_from(t: &Value, path: &str) -> Result<Option<Vec<TierSpecDef>>, ScenarioError> {
        let tiers_path = field_path(path, "tiers");
        let Some(v) = t.get("tiers") else {
            return Ok(None);
        };
        let items = v.as_array().ok_or_else(|| {
            ScenarioError::invalid(
                tiers_path.clone(),
                format!(
                    "expected an array of [[{tiers_path}]] tables, found {}",
                    v.type_name()
                ),
            )
        })?;
        let mut defs = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            let entry_path = format!("{tiers_path}[{i}]");
            if item.as_table().is_none() {
                return Err(ScenarioError::invalid(
                    entry_path,
                    format!("expected a tier table, found {}", item.type_name()),
                ));
            }
            check_keys(
                item,
                &entry_path,
                &[
                    "name",
                    "class",
                    "weight",
                    "share",
                    "target_rate",
                    "latency_ms",
                    "admission_cap_ms",
                ],
            )?;
            defs.push(TierSpecDef {
                name: req_str(item, &entry_path, "name")?,
                class: req_str(item, &entry_path, "class")?,
                weight: opt_f64(item, &entry_path, "weight")?,
                share: req_f64(item, &entry_path, "share")?,
                target_rate: opt_f64(item, &entry_path, "target_rate")?,
                latency_ms: opt_f64(item, &entry_path, "latency_ms")?,
                admission_cap_ms: opt_f64(item, &entry_path, "admission_cap_ms")?,
            });
        }
        Ok(Some(defs))
    }

    pub(crate) fn workload_from(t: &Value) -> Result<WorkloadSpec, ScenarioError> {
        check_keys(
            t,
            "workload",
            &[
                "model",
                "qps",
                "num_queries",
                "median_batch",
                "max_batch",
                "batch_shape",
                "stream_seed",
                "base_type",
                "diverse_pool",
                "variants",
                "min_accuracy",
            ],
        )?;
        Ok(WorkloadSpec {
            model: req_str(t, "workload", "model")?,
            qps: opt_f64(t, "workload", "qps")?,
            num_queries: opt_usize(t, "workload", "num_queries")?,
            median_batch: opt_f64(t, "workload", "median_batch")?,
            max_batch: opt_u32(t, "workload", "max_batch")?,
            batch_shape: opt_str(t, "workload", "batch_shape")?,
            stream_seed: opt_unsigned(t, "workload", "stream_seed")?,
            base_type: opt_str(t, "workload", "base_type")?,
            diverse_pool: opt_str_list(t, "workload", "diverse_pool")?,
            variants: opt_str_list(t, "workload", "variants")?,
            min_accuracy: opt_f64(t, "workload", "min_accuracy")?,
        })
    }

    pub(crate) fn qos_from(t: &Value) -> Result<QosSpec, ScenarioError> {
        let policy = opt_str(t, "qos", "policy")?.unwrap_or_else(|| "tail-rate".to_string());
        // Keys are checked *per policy*: a `target_rate` under a deadline policy is a
        // misunderstanding that must error, not a knob to silently drop.
        match policy.as_str() {
            "tail-rate" => {
                check_keys(t, "qos", &["policy", "latency_ms", "target_rate", "tiers"])?;
                Ok(QosSpec::TailRate {
                    latency_ms: req_f64(t, "qos", "latency_ms")?,
                    target_rate: opt_f64(t, "qos", "target_rate")?.unwrap_or(0.99),
                })
            }
            "mean-latency" => {
                check_keys(
                    t,
                    "qos",
                    &["policy", "mean_target_ms", "latency_ms", "tiers"],
                )?;
                let mean_target_ms = req_f64(t, "qos", "mean_target_ms")?;
                Ok(QosSpec::MeanLatency {
                    mean_target_ms,
                    // Default classification deadline: 2x the mean budget.
                    latency_ms: opt_f64(t, "qos", "latency_ms")?.unwrap_or(mean_target_ms * 2.0),
                })
            }
            "deadline" => {
                check_keys(t, "qos", &["policy", "latency_ms", "tiers"])?;
                Ok(QosSpec::Deadline {
                    latency_ms: req_f64(t, "qos", "latency_ms")?,
                })
            }
            other => Err(ScenarioError::invalid(
                "qos.policy",
                format!("unknown policy `{other}` (tail-rate, mean-latency, deadline)"),
            )),
        }
    }

    fn planner_from(t: &Value) -> Result<PlannerSpec, ScenarioError> {
        check_keys(
            t,
            "planner",
            &[
                "name",
                "budget",
                "baseline",
                "initial_samples",
                "prune_threshold",
                "fit",
                "reuse_surrogate",
                "scan_threads",
                "start_config",
                "batch",
                "fidelity",
            ],
        )?;
        let defaults = PlannerSpec::default();
        Ok(PlannerSpec {
            name: opt_str(t, "planner", "name")?.unwrap_or(defaults.name),
            budget: opt_usize(t, "planner", "budget")?.unwrap_or(defaults.budget),
            baseline: opt_bool(t, "planner", "baseline")?.unwrap_or(defaults.baseline),
            initial_samples: opt_usize(t, "planner", "initial_samples")?,
            prune_threshold: opt_f64(t, "planner", "prune_threshold")?,
            fit: opt_str(t, "planner", "fit")?,
            reuse_surrogate: opt_bool(t, "planner", "reuse_surrogate")?,
            scan_threads: opt_usize(t, "planner", "scan_threads")?,
            start_config: opt_u32_list(t, "planner", "start_config")?,
            batch: opt_usize(t, "planner", "batch")?,
            fidelity: opt_f64(t, "planner", "fidelity")?,
        })
    }

    fn evaluator_from(t: &Value) -> Result<EvaluatorSpec, ScenarioError> {
        check_keys(
            t,
            "evaluator",
            &["max_per_type", "saturation_epsilon", "bounds", "threads"],
        )?;
        Ok(EvaluatorSpec {
            max_per_type: opt_u32(t, "evaluator", "max_per_type")?,
            saturation_epsilon: opt_f64(t, "evaluator", "saturation_epsilon")?,
            bounds: opt_u32_list(t, "evaluator", "bounds")?,
            threads: opt_usize(t, "evaluator", "threads")?,
        })
    }

    pub(crate) fn traffic_from(t: &Value) -> Result<TrafficSpec, ScenarioError> {
        check_keys(t, "traffic", &["scenario", "phases", "duration_s"])?;
        let phases = match t.get("phases") {
            None => None,
            Some(v) => {
                let items = v.as_array().ok_or_else(|| {
                    ScenarioError::invalid("traffic.phases", "expected an array of phase tables")
                })?;
                let mut out = Vec::with_capacity(items.len());
                for (i, item) in items.iter().enumerate() {
                    let path = format!("traffic.phases[{i}]");
                    check_keys(item, &path, &["duration_s", "qps"])?;
                    out.push(PhaseSpec {
                        duration_s: req_f64(item, &path, "duration_s")?,
                        qps: req_f64(item, &path, "qps")?,
                    });
                }
                Some(out)
            }
        };
        Ok(TrafficSpec {
            scenario: opt_str(t, "traffic", "scenario")?,
            phases,
            duration_s: opt_f64(t, "traffic", "duration_s")?,
        })
    }

    pub(crate) fn online_from(t: &Value) -> Result<OnlineSpec, ScenarioError> {
        check_keys(
            t,
            "online",
            &[
                "window_s",
                "window_step_s",
                "spin_up_factor",
                "initial_budget",
                "replan_budget",
                "planning_queries",
                "violation_windows",
                "overprovision_windows",
                "overprovision_headroom",
                "cooldown_windows",
                "scale_up_margin",
                "scale_down_margin",
            ],
        )?;
        Ok(OnlineSpec {
            window_s: opt_f64(t, "online", "window_s")?,
            window_step_s: opt_f64(t, "online", "window_step_s")?,
            spin_up_factor: opt_f64(t, "online", "spin_up_factor")?,
            initial_budget: opt_usize(t, "online", "initial_budget")?,
            replan_budget: opt_usize(t, "online", "replan_budget")?,
            planning_queries: opt_usize(t, "online", "planning_queries")?,
            violation_windows: opt_usize(t, "online", "violation_windows")?,
            overprovision_windows: opt_usize(t, "online", "overprovision_windows")?,
            overprovision_headroom: opt_f64(t, "online", "overprovision_headroom")?,
            cooldown_windows: opt_usize(t, "online", "cooldown_windows")?,
            scale_up_margin: opt_f64(t, "online", "scale_up_margin")?,
            scale_down_margin: opt_f64(t, "online", "scale_down_margin")?,
        })
    }
}

// ---------------------------------------------------------------------------
// Serialization: emit exactly the fields that are set.
// ---------------------------------------------------------------------------

fn put<T: Into<Value>>(t: &mut Value, key: &str, v: Option<T>) {
    if let Some(v) = v {
        t.insert(key, v.into());
    }
}

/// Serializes a `[workload]` section (shared with the fleet spec's `[[model]]` entries).
pub(crate) fn workload_to_value(w: &WorkloadSpec) -> Value {
    let mut wt = Value::table();
    wt.insert("model", Value::from(w.model.as_str()));
    put(&mut wt, "qps", w.qps);
    put(&mut wt, "num_queries", w.num_queries);
    put(&mut wt, "median_batch", w.median_batch);
    put(&mut wt, "max_batch", w.max_batch);
    put(&mut wt, "batch_shape", w.batch_shape.as_deref());
    put(&mut wt, "stream_seed", w.stream_seed);
    put(&mut wt, "base_type", w.base_type.as_deref());
    put(
        &mut wt,
        "diverse_pool",
        w.diverse_pool.as_ref().map(|p| {
            p.iter()
                .map(|s| Value::from(s.as_str()))
                .collect::<Vec<_>>()
        }),
    );
    put(
        &mut wt,
        "variants",
        w.variants.as_ref().map(|p| {
            p.iter()
                .map(|s| Value::from(s.as_str()))
                .collect::<Vec<_>>()
        }),
    );
    put(&mut wt, "min_accuracy", w.min_accuracy);
    wt
}

/// Serializes a `[qos]` section (shared with the fleet spec's `[[model]]` entries).
pub(crate) fn qos_to_value(qos: &QosSpec) -> Value {
    let mut qt = Value::table();
    match qos {
        QosSpec::TailRate {
            latency_ms,
            target_rate,
        } => {
            qt.insert("policy", Value::from("tail-rate"));
            qt.insert("latency_ms", Value::from(*latency_ms));
            qt.insert("target_rate", Value::from(*target_rate));
        }
        QosSpec::MeanLatency {
            mean_target_ms,
            latency_ms,
        } => {
            qt.insert("policy", Value::from("mean-latency"));
            qt.insert("mean_target_ms", Value::from(*mean_target_ms));
            qt.insert("latency_ms", Value::from(*latency_ms));
        }
        QosSpec::Deadline { latency_ms } => {
            qt.insert("policy", Value::from("deadline"));
            qt.insert("latency_ms", Value::from(*latency_ms));
        }
    }
    qt
}

/// Serializes a `[[qos.tiers]]` list (shared with the fleet spec's `[[model]]`
/// entries).
pub(crate) fn tiers_to_value(tiers: &[TierSpecDef]) -> Value {
    let items: Vec<Value> = tiers
        .iter()
        .map(|tier| {
            let mut t = Value::table();
            t.insert("name", Value::from(tier.name.as_str()));
            t.insert("class", Value::from(tier.class.as_str()));
            put(&mut t, "weight", tier.weight);
            t.insert("share", Value::from(tier.share));
            put(&mut t, "target_rate", tier.target_rate);
            put(&mut t, "latency_ms", tier.latency_ms);
            put(&mut t, "admission_cap_ms", tier.admission_cap_ms);
            t
        })
        .collect();
    Value::Array(items)
}

/// Serializes a full `[qos]` section: the policy plus any `[[qos.tiers]]` entries.
/// Returns `None` when neither is set, so a sparse spec stays sparse.
pub(crate) fn qos_section_to_value(
    qos: Option<&QosSpec>,
    tiers: Option<&[TierSpecDef]>,
) -> Option<Value> {
    let mut qt = match qos {
        Some(q) => qos_to_value(q),
        None => Value::table(),
    };
    if let Some(tiers) = tiers {
        qt.insert("tiers", tiers_to_value(tiers));
    }
    (qos.is_some() || tiers.is_some()).then_some(qt)
}

/// Serializes a `[traffic]` section (shared with the fleet spec's `[[model]]` entries).
pub(crate) fn traffic_to_value(traffic: &TrafficSpec) -> Value {
    let mut tt = Value::table();
    put(&mut tt, "scenario", traffic.scenario.as_deref());
    put(&mut tt, "duration_s", traffic.duration_s);
    if let Some(phases) = &traffic.phases {
        let items: Vec<Value> = phases
            .iter()
            .map(|ph| {
                let mut t = Value::table();
                t.insert("duration_s", Value::from(ph.duration_s));
                t.insert("qps", Value::from(ph.qps));
                t
            })
            .collect();
        tt.insert("phases", Value::Array(items));
    }
    tt
}

/// Serializes an `[online]` section (shared with the fleet spec's `[[model]]` entries).
pub(crate) fn online_to_value(o: &OnlineSpec) -> Value {
    let mut ot = Value::table();
    put(&mut ot, "window_s", o.window_s);
    put(&mut ot, "window_step_s", o.window_step_s);
    put(&mut ot, "spin_up_factor", o.spin_up_factor);
    put(&mut ot, "initial_budget", o.initial_budget);
    put(&mut ot, "replan_budget", o.replan_budget);
    put(&mut ot, "planning_queries", o.planning_queries);
    put(&mut ot, "violation_windows", o.violation_windows);
    put(&mut ot, "overprovision_windows", o.overprovision_windows);
    put(&mut ot, "overprovision_headroom", o.overprovision_headroom);
    put(&mut ot, "cooldown_windows", o.cooldown_windows);
    put(&mut ot, "scale_up_margin", o.scale_up_margin);
    put(&mut ot, "scale_down_margin", o.scale_down_margin);
    ot
}

impl ScenarioSpec {
    /// Serializes the spec to a value tree. Only explicitly-set optional fields are
    /// emitted, so a sparse file round-trips to an identical spec.
    pub fn to_value(&self) -> Value {
        let mut root = Value::table();

        let mut header = Value::table();
        header.insert("name", Value::from(self.name.as_str()));
        if !self.description.is_empty() {
            header.insert("description", Value::from(self.description.as_str()));
        }
        header.insert("mode", Value::from(self.mode.name()));
        header.insert("seed", Value::from(self.seed));
        put(&mut header, "catalog", self.catalog.as_deref());
        root.insert("scenario", header);

        root.insert("workload", workload_to_value(&self.workload));

        if let Some(qt) = qos_section_to_value(self.qos.as_ref(), self.qos_tiers.as_deref()) {
            root.insert("qos", qt);
        }

        let p = &self.planner;
        let mut pt = Value::table();
        pt.insert("name", Value::from(p.name.as_str()));
        pt.insert("budget", Value::from(p.budget));
        pt.insert("baseline", Value::from(p.baseline));
        put(&mut pt, "initial_samples", p.initial_samples);
        put(&mut pt, "prune_threshold", p.prune_threshold);
        put(&mut pt, "fit", p.fit.as_deref());
        put(&mut pt, "reuse_surrogate", p.reuse_surrogate);
        put(&mut pt, "scan_threads", p.scan_threads);
        put(
            &mut pt,
            "start_config",
            p.start_config
                .as_ref()
                .map(|c| c.iter().map(|&v| Value::from(v)).collect::<Vec<_>>()),
        );
        put(&mut pt, "batch", p.batch);
        put(&mut pt, "fidelity", p.fidelity);
        root.insert("planner", pt);

        let e = &self.evaluator;
        if *e != EvaluatorSpec::default() {
            let mut et = Value::table();
            put(&mut et, "max_per_type", e.max_per_type);
            put(&mut et, "saturation_epsilon", e.saturation_epsilon);
            put(
                &mut et,
                "bounds",
                e.bounds
                    .as_ref()
                    .map(|b| b.iter().map(|&v| Value::from(v)).collect::<Vec<_>>()),
            );
            put(&mut et, "threads", e.threads);
            root.insert("evaluator", et);
        }

        if let Some(traffic) = &self.traffic {
            root.insert("traffic", traffic_to_value(traffic));
        }

        if self.online != OnlineSpec::default() {
            root.insert("online", online_to_value(&self.online));
        }

        root
    }

    /// Parses a spec from TOML text.
    pub fn from_toml_str(text: &str) -> Result<ScenarioSpec, ScenarioError> {
        Self::from_value(&ribbon_spec::toml::parse(text)?)
    }

    /// Parses a spec from JSON text.
    pub fn from_json_str(text: &str) -> Result<ScenarioSpec, ScenarioError> {
        Self::from_value(&ribbon_spec::json::parse(text)?)
    }

    /// Serializes the spec as TOML.
    pub fn to_toml_string(&self) -> String {
        ribbon_spec::toml::to_string(&self.to_value())
            // lint:allow(no-panic): serialises a tree built by to_value(), not user input;
            // the round-trip test pins that it is always TOML-expressible
            .expect("a spec value tree is always TOML-expressible")
    }

    /// Serializes the spec as JSON.
    pub fn to_json_string(&self) -> String {
        ribbon_spec::json::to_string(&self.to_value())
    }
}
