//! The structured outcome of a scenario run: one [`ScenarioReport`] regardless of
//! planner or mode, serializable (via [`ribbon_spec`]) for the bench harness and the
//! CLI's `--out` flag, with a human summary for the terminal.

use super::spec::RunMode;
use crate::online::{OnlineOutcome, ReconfigTrigger};
use crate::search::SearchTrace;
use ribbon_cloudsim::{TierSet, TierTotals};
use ribbon_spec::Value;

/// One tier's aggregate outcome — the per-tier row of a plan or serve section.
#[derive(Debug, Clone, PartialEq)]
pub struct TierReport {
    /// Tier name (the set's reporting key).
    pub name: String,
    /// Admission class spelling (`premium` / `standard` / `best_effort`).
    pub class: String,
    /// Queries of the tier actually served (admission drops excluded).
    pub served: u64,
    /// Of those, how many met the tier's effective latency bound.
    pub satisfied: u64,
    /// `satisfied / served`, or `None` when the tier served nothing.
    pub satisfaction_rate: Option<f64>,
    /// Best-effort queries dropped at admission.
    pub admission_drops: u64,
    /// Premium dispatches that overtook queued best-effort work.
    pub preemptions: u64,
}

impl TierReport {
    /// Builds the per-tier rows for a tier set and its index-aligned totals.
    pub fn rows(set: &TierSet, totals: &[TierTotals]) -> Vec<TierReport> {
        set.tiers()
            .iter()
            .zip(totals)
            .map(|(spec, t)| TierReport {
                name: spec.name.clone(),
                class: spec.class.name().to_string(),
                served: t.served,
                satisfied: t.satisfied,
                satisfaction_rate: t.satisfaction_rate(),
                admission_drops: t.admission_drops,
                preemptions: t.preemptions,
            })
            .collect()
    }

    pub(crate) fn to_value(&self) -> Value {
        let mut t = Value::table();
        t.insert("name", Value::from(self.name.as_str()));
        t.insert("class", Value::from(self.class.as_str()));
        t.insert("served", Value::from(self.served));
        t.insert("satisfied", Value::from(self.satisfied));
        if let Some(rate) = self.satisfaction_rate {
            t.insert("satisfaction_rate", Value::from(rate));
        }
        t.insert("admission_drops", Value::from(self.admission_drops));
        t.insert("preemptions", Value::from(self.preemptions));
        t
    }

    fn summary_line(&self) -> String {
        format!(
            "    tier {} ({}): {} served, satisfaction {}, {} dropped, {} preemption(s)",
            self.name,
            self.class,
            self.served,
            self.satisfaction_rate
                .map_or("n/a".to_string(), |r| format!("{r:.4}")),
            self.admission_drops,
            self.preemptions
        )
    }
}

/// The homogeneous-baseline comparison of a plan run.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineReport {
    /// Instance count of the cheapest QoS-satisfying homogeneous pool.
    pub count: u32,
    /// Human-readable pool description.
    pub pool: String,
    /// Its hourly cost in USD.
    pub hourly_cost: f64,
}

/// Outcome of the offline search phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanReport {
    /// Per-type counts of the best QoS-satisfying configuration found, if any.
    pub best_config: Option<Vec<u32>>,
    /// Its pool description.
    pub best_pool: Option<String>,
    /// Its hourly cost in USD.
    pub best_hourly_cost: Option<f64>,
    /// The homogeneous baseline, when requested and found.
    pub baseline: Option<BaselineReport>,
    /// Cost saving of the best pool vs the baseline, in percent.
    pub saving_percent: Option<f64>,
    /// Number of QoS-violating evaluations in the trace.
    pub violations: usize,
    /// Exploration-cost proxy: summed hourly cost of every evaluated pool.
    pub exploration_cost: f64,
    /// Chosen serving-variant name per pool type (variant scenarios only).
    pub variants: Option<Vec<String>>,
    /// Worst accuracy any populated type serves under the best plan (variant
    /// scenarios only).
    pub worst_accuracy: Option<f64>,
    /// The full search trace, in evaluation order.
    pub trace: SearchTrace,
    /// Per-tier outcome of the best plan's evaluation (tiered scenarios only).
    pub tiers: Vec<TierReport>,
}

/// One applied mid-stream serving-variant switch (variant scenarios only).
#[derive(Debug, Clone, PartialEq)]
pub struct VariantEventReport {
    /// Index of the monitoring window that tripped the decision.
    pub window_index: u64,
    /// `"qos-violation"` (degrade) or `"over-provisioning"` (upgrade).
    pub trigger: String,
    /// Palette index served before the switch.
    pub from: u32,
    /// Palette index served after the switch.
    pub to: u32,
}

/// One applied mid-stream reconfiguration.
#[derive(Debug, Clone, PartialEq)]
pub struct EventReport {
    /// Index of the monitoring window that tripped the decision.
    pub window_index: u64,
    /// `"qos-violation"` or `"over-provisioning"`.
    pub trigger: String,
    /// The new per-type configuration.
    pub config: Vec<u32>,
    /// The load the new configuration was planned for (queries/second).
    pub planned_qps: f64,
    /// Closed-form transition-cost estimate in USD.
    pub transition_cost_usd: f64,
}

/// Outcome of the online serving phase.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Configuration deployed at stream start.
    pub initial_config: Vec<u32>,
    /// Configuration deployed when the stream ended.
    pub final_config: Vec<u32>,
    /// Number of monitoring windows.
    pub windows: usize,
    /// Number of served queries.
    pub queries: usize,
    /// Whole-stream satisfaction rate (`None` for an empty stream).
    pub satisfaction_rate: Option<f64>,
    /// Exact accrued cost in USD over the run.
    pub total_cost_usd: f64,
    /// Run duration in seconds.
    pub duration_s: f64,
    /// Mean hourly cost over the run.
    pub mean_hourly_cost: f64,
    /// Hourly cost of the final pool.
    pub final_hourly_cost: f64,
    /// Every applied reconfiguration, in order.
    pub events: Vec<EventReport>,
    /// Every applied serving-variant switch, in order (variant scenarios only).
    pub variant_events: Vec<VariantEventReport>,
    /// Queries served per palette index (variant scenarios only).
    pub variant_served: Option<Vec<u64>>,
    /// Palette index serving when the stream ended (variant scenarios only).
    pub final_variant: Option<u32>,
    /// Whole-stream per-tier outcome (tiered scenarios only).
    pub tiers: Vec<TierReport>,
}

impl ServeReport {
    /// Builds the serve section from an online outcome.
    pub fn from_outcome(outcome: &OnlineOutcome) -> ServeReport {
        ServeReport {
            initial_config: outcome.initial_config.clone(),
            final_config: outcome.final_config.clone(),
            windows: outcome.windows.len(),
            queries: outcome.stats.num_queries,
            satisfaction_rate: outcome.stats.satisfaction_rate(),
            total_cost_usd: outcome.total_cost_usd,
            duration_s: outcome.duration_s,
            mean_hourly_cost: crate::accounting::mean_hourly_cost(
                outcome.total_cost_usd,
                outcome.duration_s,
            ),
            final_hourly_cost: outcome.final_hourly_cost,
            events: outcome
                .events
                .iter()
                .map(|e| EventReport {
                    window_index: e.window_index,
                    trigger: match e.trigger {
                        ReconfigTrigger::QosViolation => "qos-violation".to_string(),
                        ReconfigTrigger::OverProvisioning => "over-provisioning".to_string(),
                    },
                    config: e.config.clone(),
                    planned_qps: e.planned_qps,
                    transition_cost_usd: e.transition_cost_usd,
                })
                .collect(),
            variant_events: outcome
                .variant_events
                .iter()
                .map(|e| VariantEventReport {
                    window_index: e.window_index,
                    trigger: match e.trigger {
                        ReconfigTrigger::QosViolation => "qos-violation".to_string(),
                        ReconfigTrigger::OverProvisioning => "over-provisioning".to_string(),
                    },
                    from: e.from,
                    to: e.to,
                })
                .collect(),
            // A single-entry histogram is the variant-less degenerate case: report the
            // variant dimension only when there is an actual palette.
            variant_served: (outcome.variant_served.len() > 1)
                .then(|| outcome.variant_served.clone()),
            final_variant: (outcome.variant_served.len() > 1).then_some(outcome.final_variant),
            tiers: outcome
                .tiers
                .as_ref()
                .map(|set| TierReport::rows(set, &outcome.tier_totals))
                .unwrap_or_default(),
        }
    }
}

/// The single structured result of running one planner on one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// Scenario name (from the spec).
    pub scenario: String,
    /// Planner that produced this report.
    pub planner: String,
    /// The mode that ran.
    pub mode: RunMode,
    /// Model name.
    pub model: String,
    /// Human description of the QoS policy.
    pub qos: String,
    /// The run's master seed.
    pub seed: u64,
    /// Offline-search outcome (plan mode, and serve mode for static planners).
    pub plan: Option<PlanReport>,
    /// Online-serving outcome (serve mode).
    pub serve: Option<ServeReport>,
}

fn u32s(values: &[u32]) -> Value {
    Value::Array(values.iter().map(|&v| Value::from(v)).collect())
}

impl ScenarioReport {
    /// Serializes the report to a value tree (for JSON/TOML output).
    pub fn to_value(&self) -> Value {
        let mut root = Value::table();
        root.insert("scenario", Value::from(self.scenario.as_str()));
        root.insert("planner", Value::from(self.planner.as_str()));
        root.insert("mode", Value::from(self.mode.name()));
        root.insert("model", Value::from(self.model.as_str()));
        root.insert("qos", Value::from(self.qos.as_str()));
        root.insert("seed", Value::from(self.seed));

        if let Some(plan) = &self.plan {
            let mut pt = Value::table();
            if let Some(cfg) = &plan.best_config {
                pt.insert("best_config", u32s(cfg));
            }
            if let Some(pool) = &plan.best_pool {
                pt.insert("best_pool", Value::from(pool.as_str()));
            }
            if let Some(cost) = plan.best_hourly_cost {
                pt.insert("best_hourly_cost", Value::from(cost));
            }
            if let Some(b) = &plan.baseline {
                let mut bt = Value::table();
                bt.insert("count", Value::from(b.count));
                bt.insert("pool", Value::from(b.pool.as_str()));
                bt.insert("hourly_cost", Value::from(b.hourly_cost));
                pt.insert("baseline", bt);
            }
            if let Some(s) = plan.saving_percent {
                pt.insert("saving_percent", Value::from(s));
            }
            if let Some(variants) = &plan.variants {
                pt.insert(
                    "variants",
                    Value::Array(variants.iter().map(|v| Value::from(v.as_str())).collect()),
                );
            }
            if let Some(acc) = plan.worst_accuracy {
                pt.insert("worst_accuracy", Value::from(acc));
            }
            if !plan.tiers.is_empty() {
                pt.insert(
                    "tiers",
                    Value::Array(plan.tiers.iter().map(TierReport::to_value).collect()),
                );
            }
            pt.insert("evaluations", Value::from(plan.trace.len()));
            pt.insert("violations", Value::from(plan.violations));
            pt.insert("exploration_cost", Value::from(plan.exploration_cost));
            let trace: Vec<Value> = plan
                .trace
                .evaluations()
                .iter()
                .map(|e| {
                    let mut t = Value::table();
                    t.insert("config", u32s(&e.config));
                    t.insert("objective", Value::from(e.objective));
                    t.insert("hourly_cost", Value::from(e.hourly_cost));
                    t.insert("satisfaction_rate", Value::from(e.satisfaction_rate));
                    t.insert("meets_qos", Value::from(e.meets_qos));
                    t
                })
                .collect();
            pt.insert("trace", Value::Array(trace));
            root.insert("plan", pt);
        }

        if let Some(serve) = &self.serve {
            let mut st = Value::table();
            st.insert("initial_config", u32s(&serve.initial_config));
            st.insert("final_config", u32s(&serve.final_config));
            st.insert("windows", Value::from(serve.windows));
            st.insert("queries", Value::from(serve.queries));
            if let Some(rate) = serve.satisfaction_rate {
                st.insert("satisfaction_rate", Value::from(rate));
            }
            st.insert("total_cost_usd", Value::from(serve.total_cost_usd));
            st.insert("duration_s", Value::from(serve.duration_s));
            st.insert("mean_hourly_cost", Value::from(serve.mean_hourly_cost));
            st.insert("final_hourly_cost", Value::from(serve.final_hourly_cost));
            let events: Vec<Value> = serve
                .events
                .iter()
                .map(|e| {
                    let mut t = Value::table();
                    t.insert("window", Value::from(e.window_index));
                    t.insert("trigger", Value::from(e.trigger.as_str()));
                    t.insert("config", u32s(&e.config));
                    t.insert("planned_qps", Value::from(e.planned_qps));
                    t.insert("transition_cost_usd", Value::from(e.transition_cost_usd));
                    t
                })
                .collect();
            st.insert("events", Value::Array(events));
            if !serve.variant_events.is_empty() {
                let switches: Vec<Value> = serve
                    .variant_events
                    .iter()
                    .map(|e| {
                        let mut t = Value::table();
                        t.insert("window", Value::from(e.window_index));
                        t.insert("trigger", Value::from(e.trigger.as_str()));
                        t.insert("from", Value::from(e.from));
                        t.insert("to", Value::from(e.to));
                        t
                    })
                    .collect();
                st.insert("variant_events", Value::Array(switches));
            }
            if let Some(served) = &serve.variant_served {
                st.insert(
                    "variant_served",
                    Value::Array(served.iter().map(|&n| Value::from(n)).collect()),
                );
            }
            if let Some(v) = serve.final_variant {
                st.insert("final_variant", Value::from(v));
            }
            if !serve.tiers.is_empty() {
                st.insert(
                    "tiers",
                    Value::Array(serve.tiers.iter().map(TierReport::to_value).collect()),
                );
            }
            root.insert("serve", st);
        }
        root
    }

    /// Serializes the report as pretty JSON.
    pub fn to_json_string(&self) -> String {
        ribbon_spec::json::to_string(&self.to_value())
    }

    /// A compact human summary for terminal output.
    pub fn summary_lines(&self) -> Vec<String> {
        let mut lines = vec![format!(
            "scenario {} | planner {} | {} | {} | qos {}",
            self.scenario,
            self.planner,
            self.mode.name(),
            self.model,
            self.qos
        )];
        if let Some(plan) = &self.plan {
            match (&plan.best_pool, plan.best_hourly_cost) {
                (Some(pool), Some(cost)) => {
                    let mut line = format!(
                        "  plan: best {} at ${:.2}/hr after {} evaluations ({} violating)",
                        pool,
                        cost,
                        plan.trace.len(),
                        plan.violations
                    );
                    if let (Some(b), Some(s)) = (&plan.baseline, plan.saving_percent) {
                        line.push_str(&format!(
                            "; homogeneous {} ${:.2}/hr -> saving {:.1}%",
                            b.pool, b.hourly_cost, s
                        ));
                    }
                    lines.push(line);
                    if let Some(variants) = &plan.variants {
                        let mut line = format!("  variants: {}", variants.join(" / "));
                        if let Some(acc) = plan.worst_accuracy {
                            line.push_str(&format!(" (worst accuracy {acc:.3})"));
                        }
                        lines.push(line);
                    }
                    for t in &plan.tiers {
                        lines.push(t.summary_line());
                    }
                }
                _ => lines.push(format!(
                    "  plan: no QoS-satisfying configuration within {} evaluations",
                    plan.trace.len()
                )),
            }
        }
        if let Some(serve) = &self.serve {
            lines.push(format!(
                "  serve: {} queries in {} windows over {:.0} s, satisfaction {}, \
                 total ${:.4} (mean ${:.2}/hr), {} reconfiguration(s)",
                serve.queries,
                serve.windows,
                serve.duration_s,
                serve
                    .satisfaction_rate
                    .map_or("n/a".to_string(), |r| format!("{r:.4}")),
                serve.total_cost_usd,
                serve.mean_hourly_cost,
                serve.events.len()
            ));
            for t in &serve.tiers {
                lines.push(t.summary_line());
            }
            for e in &serve.events {
                lines.push(format!(
                    "    w{} {} -> {:?} (planned {:.0} qps, transition ~${:.4})",
                    e.window_index, e.trigger, e.config, e.planned_qps, e.transition_cost_usd
                ));
            }
            if let Some(served) = &serve.variant_served {
                lines.push(format!(
                    "  variants: served per palette index {:?}, final index {}",
                    served,
                    serve.final_variant.unwrap_or(0)
                ));
            }
            for e in &serve.variant_events {
                lines.push(format!(
                    "    w{} {} variant {} -> {}",
                    e.window_index, e.trigger, e.from, e.to
                ));
            }
        }
        lines
    }
}
