//! The [`Planner`] abstraction: one interface from a compiled [`Scenario`] to a
//! [`ScenarioReport`], subsuming both the offline [`SearchStrategy`] suite and the
//! online serving path.
//!
//! * [`RibbonPlanner`] — the paper's BO search for `plan`, and the full windowed online
//!   controller (mid-stream reconfiguration) for `serve`;
//! * [`SearchPlanner`] — wraps any [`SearchStrategy`] (RANDOM, Hill-Climb, RSM,
//!   exhaustive); `serve` deploys the planned pool *statically* and streams the traffic
//!   through it without reconfiguration — the honest baseline an adaptive controller is
//!   compared against.

use super::error::ScenarioError;
use super::report::{BaselineReport, PlanReport, ScenarioReport, ServeReport, TierReport};
use super::spec::RunMode;
use super::Scenario;
use crate::accounting::homogeneous_optimum;
use crate::evaluator::ConfigEvaluator;
use crate::online::serve_online_tiered;
use crate::search::{RibbonSearch, SearchTrace};
use crate::strategies::{
    AskTellStrategy, BatchedSearch, ExhaustiveSearch, HillClimbSearch, RandomSearch,
    ResponseSurfaceSearch, SearchStrategy, TpeSearch,
};
use ribbon_cloudsim::streaming::{StreamingSim, StreamingSimConfig};
use ribbon_cloudsim::{CostModel, PhasedQueryStream};

/// Planner names accepted by scenario files and `ribbon compare --planners`.
pub const ALL_PLANNER_NAMES: [&str; 6] =
    ["ribbon", "tpe", "random", "hill-climb", "rsm", "exhaustive"];

/// A scenario-level planner: `plan` searches offline, `serve` runs the online path, and
/// both return the same structured [`ScenarioReport`]. Object-safe — the CLI holds a
/// heterogeneous `Vec<Box<dyn Planner>>`.
pub trait Planner: Send + Sync {
    /// Display name ("RIBBON", "RANDOM", …).
    fn name(&self) -> &str;

    /// Offline search: find the best pool for the scenario's workload.
    fn plan(&self, scenario: &Scenario) -> Result<ScenarioReport, ScenarioError>;

    /// Online serving: deploy and serve the scenario's traffic trace.
    fn serve(&self, scenario: &Scenario) -> Result<ScenarioReport, ScenarioError>;

    /// Dispatches on the scenario's mode.
    fn run(&self, scenario: &Scenario) -> Result<ScenarioReport, ScenarioError> {
        match scenario.spec.mode {
            RunMode::Plan => self.plan(scenario),
            RunMode::Serve => self.serve(scenario),
        }
    }
}

/// Builds the plan section shared by every planner: best configuration, optional
/// homogeneous baseline, savings, and the full trace.
fn plan_report(scenario: &Scenario, evaluator: &ConfigEvaluator, trace: SearchTrace) -> PlanReport {
    let best = trace.best_satisfying().cloned();
    let baseline = if scenario.spec.planner.baseline {
        let max_count = scenario.evaluator_settings.max_per_type.max(12);
        homogeneous_optimum(evaluator, max_count).map(|h| BaselineReport {
            count: h.count,
            pool: h.evaluation.pool.describe(),
            hourly_cost: h.hourly_cost,
        })
    } else {
        None
    };
    let saving_percent = match (&baseline, &best) {
        (Some(b), Some(best)) => Some(CostModel::saving_percent(b.hourly_cost, best.hourly_cost)),
        _ => None,
    };
    // Per-tier rows of the chosen plan: the planning evaluation already ran the tiered
    // stream, so the rows are free — they just need the set's names.
    let tiers = match (&scenario.tiers, &best) {
        (Some(set), Some(b)) if !b.tier_totals.is_empty() => TierReport::rows(set, &b.tier_totals),
        _ => Vec::new(),
    };
    PlanReport {
        best_config: best.as_ref().map(|e| e.config.clone()),
        best_pool: best.as_ref().map(|e| e.pool.describe()),
        best_hourly_cost: best.as_ref().map(|e| e.hourly_cost),
        baseline,
        saving_percent,
        violations: trace.num_violations(),
        exploration_cost: trace.exploration_cost(),
        variants: None,
        worst_accuracy: None,
        trace,
        tiers,
    }
}

fn report_shell(scenario: &Scenario, planner: &str, mode: RunMode) -> ScenarioReport {
    ScenarioReport {
        scenario: scenario.spec.name.clone(),
        planner: planner.to_string(),
        mode,
        model: scenario.workload.model.name().to_string(),
        qos: scenario.policy.describe(),
        seed: scenario.spec.seed,
        plan: None,
        serve: None,
    }
}

/// The RIBBON planner: Bayesian-Optimization search offline, the windowed online
/// controller (hysteresis, warm-started replans, make-before-break reconfiguration)
/// online.
#[derive(Debug, Clone, Default)]
pub struct RibbonPlanner;

impl RibbonPlanner {
    /// Plans a scenario whose workload declares a variant palette: the BO search runs on
    /// the joint variant × pool lattice of a
    /// [`VariantEvaluator`](crate::variant::VariantEvaluator), while the homogeneous
    /// baseline stays pool-only at the accuracy-best variant — the deployment a
    /// variant-unaware operator would pick, and thus the honest saving denominator.
    fn plan_variants(&self, scenario: &Scenario) -> Result<ScenarioReport, ScenarioError> {
        let evaluator = scenario.build_variant_evaluator();
        let search = RibbonSearch::new(scenario.search_settings.clone());
        let trace = search.run(&evaluator, scenario.spec.seed);

        // Reuse the probed pool bounds so the baseline evaluator skips its own probe.
        let mut pool_settings = scenario.evaluator_settings.clone();
        pool_settings.explicit_bounds = Some(evaluator.pool_bounds().to_vec());
        let pool_evaluator = ConfigEvaluator::with_policy(
            &scenario.workload,
            pool_settings,
            scenario.policy.clone(),
        );
        let mut plan = plan_report(scenario, &pool_evaluator, trace);
        if let Some(config) = plan.best_config.clone() {
            plan.variants = Some(
                evaluator
                    .assigned_variants(&config)
                    .iter()
                    .map(|v| v.name().to_string())
                    .collect(),
            );
            plan.worst_accuracy = Some(evaluator.worst_accuracy(&config));
        }
        let mut report = report_shell(scenario, self.name(), RunMode::Plan);
        report.plan = Some(plan);
        Ok(report)
    }
}

impl Planner for RibbonPlanner {
    fn name(&self) -> &str {
        "RIBBON"
    }

    fn plan(&self, scenario: &Scenario) -> Result<ScenarioReport, ScenarioError> {
        if scenario.workload.has_variant_axis() {
            return self.plan_variants(scenario);
        }
        let evaluator = scenario.build_evaluator();
        let search = RibbonSearch::new(scenario.search_settings.clone());
        let trace = search.run(&evaluator, scenario.spec.seed);
        let mut report = report_shell(scenario, self.name(), RunMode::Plan);
        report.plan = Some(plan_report(scenario, &evaluator, trace));
        Ok(report)
    }

    fn serve(&self, scenario: &Scenario) -> Result<ScenarioReport, ScenarioError> {
        let traffic = scenario.require_traffic()?;
        let outcome = serve_online_tiered(
            &scenario.workload,
            traffic,
            &scenario.online_settings,
            scenario.spec.seed,
            scenario.policy.clone(),
            scenario.tiers.clone(),
        )
        .ok_or_else(|| {
            ScenarioError::Run(format!(
                "the initial search found no configuration meeting `{}` within {} evaluations",
                scenario.policy.describe(),
                scenario.online_settings.initial_search.max_evaluations
            ))
        })?;
        let mut report = report_shell(scenario, self.name(), RunMode::Serve);
        report.serve = Some(ServeReport::from_outcome(&outcome));
        Ok(report)
    }
}

/// Adapter giving any offline [`SearchStrategy`] the full planner interface.
pub struct SearchPlanner {
    strategy: Box<dyn SearchStrategy + Send + Sync>,
}

impl SearchPlanner {
    /// Wraps a search strategy.
    pub fn new(strategy: Box<dyn SearchStrategy + Send + Sync>) -> SearchPlanner {
        SearchPlanner { strategy }
    }

    /// The baseline strategies search pool counts only — a variant palette needs the
    /// joint lattice (and the online variant router) that only the `ribbon` planner
    /// drives.
    fn reject_variants(&self, scenario: &Scenario) -> Result<(), ScenarioError> {
        if scenario.workload.has_variant_axis() {
            return Err(ScenarioError::Run(format!(
                "planner `{}` searches pool counts only and cannot plan a variant \
                 palette; use the `ribbon` planner for variant scenarios",
                self.name()
            )));
        }
        Ok(())
    }
}

impl Planner for SearchPlanner {
    fn name(&self) -> &str {
        self.strategy.name()
    }

    fn plan(&self, scenario: &Scenario) -> Result<ScenarioReport, ScenarioError> {
        self.reject_variants(scenario)?;
        let evaluator = scenario.build_evaluator();
        let trace = self.strategy.run_search(&evaluator, scenario.spec.seed);
        let mut report = report_shell(scenario, self.name(), RunMode::Plan);
        report.plan = Some(plan_report(scenario, &evaluator, trace));
        Ok(report)
    }

    fn serve(&self, scenario: &Scenario) -> Result<ScenarioReport, ScenarioError> {
        self.reject_variants(scenario)?;
        let traffic = scenario.require_traffic()?;
        let evaluator = scenario.build_evaluator();
        let trace = self.strategy.run_search(&evaluator, scenario.spec.seed);
        let plan = plan_report(scenario, &evaluator, trace);
        let config = plan.best_config.clone().ok_or_else(|| {
            ScenarioError::Run(format!(
                "{}: no configuration meeting `{}` to deploy statically",
                self.name(),
                scenario.policy.describe()
            ))
        })?;

        // Static serving: the planned pool, unchanged, for the whole trace.
        let pool = scenario.workload.diverse_pool_spec(&config);
        let profile = scenario.workload.profile();
        let sim_config = StreamingSimConfig {
            target_latency_s: scenario.policy.deadline_s(),
            tail_percentile: scenario.policy.tail_percentile(),
            window: scenario.online_settings.window,
            spin_up_factor: scenario.online_settings.spin_up_factor,
        };
        let mut sim = StreamingSim::new(&pool, &profile, sim_config);
        let mut assigner = scenario.tiers.as_ref().map(|set| {
            sim.enable_tiers(set.clone());
            set.assigner()
        });
        let mut windows = Vec::new();
        let mut closed = Vec::new();
        for q in PhasedQueryStream::new(traffic.clone()) {
            match assigner.as_mut() {
                Some(a) => {
                    sim.push_tiered_into(&q, a.next_tier(), &mut closed);
                }
                None => sim.push_into(&q, &mut closed),
            }
            windows.append(&mut closed);
        }
        windows.extend(sim.finish_windows());
        let stats = sim.stats();
        let duration_s = stats.makespan.max(sim.clock());
        let total_cost_usd = sim.cost_so_far(duration_s);

        let mut report = report_shell(scenario, self.name(), RunMode::Serve);
        report.serve = Some(ServeReport {
            initial_config: config.clone(),
            final_config: config,
            windows: windows.len(),
            queries: stats.num_queries,
            satisfaction_rate: stats.satisfaction_rate(),
            total_cost_usd,
            duration_s,
            mean_hourly_cost: crate::accounting::mean_hourly_cost(total_cost_usd, duration_s),
            final_hourly_cost: pool.hourly_cost(),
            events: Vec::new(),
            variant_events: Vec::new(),
            variant_served: None,
            final_variant: None,
            tiers: scenario
                .tiers
                .as_ref()
                .map(|set| TierReport::rows(set, sim.tier_totals()))
                .unwrap_or_default(),
        });
        report.plan = Some(plan);
        Ok(report)
    }
}

/// Builds the planner a name refers to, sized by the scenario's budget.
///
/// `ribbon` and `tpe` always run through the ask/tell [`crate::search::SearchDriver`]
/// (their default `batch = 1` reproduces the historical traces bit for bit). The
/// baselines keep their legacy loops unless the scenario sets an explicit
/// `[planner] batch`, in which case they run through the driver via their
/// [`AskTellStrategy`] adapters.
pub fn planner_by_name(name: &str, scenario: &Scenario) -> Result<Box<dyn Planner>, ScenarioError> {
    let budget = scenario.search_settings.max_evaluations;
    let batch = scenario.spec.planner.batch;
    let fidelity = scenario.spec.planner.fidelity;
    fn baseline<S: AskTellStrategy + Send + Sync + 'static>(
        strategy: S,
        batch: Option<usize>,
        fidelity: Option<f64>,
    ) -> Box<dyn Planner> {
        match batch {
            Some(q) => Box::new(SearchPlanner::new(Box::new(
                BatchedSearch::new(strategy)
                    .with_batch(q)
                    .with_fidelity(fidelity),
            ))),
            None => Box::new(SearchPlanner::new(Box::new(strategy))),
        }
    }
    match name.to_ascii_lowercase().as_str() {
        "ribbon" => Ok(Box::new(RibbonPlanner)),
        "tpe" => Ok(Box::new(SearchPlanner::new(Box::new(
            TpeSearch::new(budget)
                .with_batch(batch.unwrap_or(1))
                .with_fidelity(fidelity),
        )))),
        "random" => Ok(baseline(RandomSearch::new(budget), batch, fidelity)),
        "hill-climb" => Ok(baseline(HillClimbSearch::new(budget), batch, fidelity)),
        "rsm" => Ok(baseline(
            ResponseSurfaceSearch::new(budget),
            batch,
            fidelity,
        )),
        "exhaustive" => Ok(baseline(ExhaustiveSearch::default(), batch, fidelity)),
        other => Err(ScenarioError::invalid(
            "planner.name",
            format!(
                "unknown planner `{other}` (known: {})",
                ALL_PLANNER_NAMES.join(", ")
            ),
        )),
    }
}
