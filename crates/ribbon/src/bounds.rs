//! Per-type search-range upper bounds (the paper's m_i).
//!
//! "m_i corresponds to the maximum number of instances of a given type such that adding any
//! more instances of the same type does not improve the QoS satisfaction rate." We probe each
//! type in isolation: simulate homogeneous pools of 1, 2, 3, … instances of that type and stop
//! as soon as the satisfaction rate stops improving (or a hard cap is reached).
//!
//! The per-type probes are independent of each other, so [`find_bounds`] fans them out over
//! the workspace parallel engine ([`ribbon_cloudsim::parallel`]) — one worker per type, with
//! results returned in type order, bit-identical to a serial probe. Within a type the scan
//! stays sequential because its early-exit (stop at perfect satisfaction) depends on the
//! previous count's result.

use ribbon_cloudsim::{parallel, simulate, InstanceType, LatencyModel, PoolSpec, Query};

/// Controls the saturation probe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundSettings {
    /// Hard cap on m_i, bounding the lattice size.
    pub max_per_type: u32,
    /// Minimum satisfaction-rate improvement that still counts as "improving".
    pub saturation_epsilon: f64,
    /// Worker threads for probing the types in parallel (1 = serial).
    pub threads: usize,
}

impl Default for BoundSettings {
    fn default() -> Self {
        BoundSettings {
            max_per_type: 12,
            saturation_epsilon: 0.001,
            threads: parallel::default_threads(),
        }
    }
}

/// Finds m_i for every instance type in `types` by probing homogeneous pools against the
/// given query stream and latency model, one parallel worker per type.
///
/// Returns one bound per type, each at least 1 and at most `settings.max_per_type`.
pub fn find_bounds<M: LatencyModel + Sync + ?Sized>(
    types: &[InstanceType],
    queries: &[Query],
    model: &M,
    latency_target_s: f64,
    settings: &BoundSettings,
) -> Vec<u32> {
    assert!(!types.is_empty(), "need at least one instance type");
    assert!(
        settings.max_per_type >= 1,
        "max_per_type must be at least 1"
    );
    parallel::par_map(types, settings.threads, |&ty| {
        probe_type(ty, queries, model, latency_target_s, settings)
    })
}

/// Probes a single instance type; returns the count at which the satisfaction rate saturates.
///
/// The probe scans homogeneous pools of 1..=`max_per_type` instances and returns the smallest
/// count whose satisfaction rate is within `saturation_epsilon` of the best rate achievable
/// with this type alone — beyond that point "adding any more instances of the same type does
/// not improve the QoS satisfaction rate". Scanning the whole range (instead of stopping at
/// the first flat step) matters for heavily overloaded types, whose rate stays near zero for
/// several counts before queueing stops dominating.
pub fn probe_type<M: LatencyModel + ?Sized>(
    ty: InstanceType,
    queries: &[Query],
    model: &M,
    latency_target_s: f64,
    settings: &BoundSettings,
) -> u32 {
    let mut rates = Vec::with_capacity(settings.max_per_type as usize);
    for count in 1..=settings.max_per_type {
        let pool = PoolSpec::homogeneous(ty, count);
        // An empty probe stream carries no evidence; treat it as saturated so the probe
        // terminates at the smallest bound instead of growing the pool on no data.
        let rate = simulate(&pool, queries, model)
            .satisfaction_rate(latency_target_s)
            .unwrap_or(1.0);
        rates.push(rate);
        if rate >= 0.9999 {
            // Perfect satisfaction cannot improve further.
            break;
        }
    }
    let best = rates.iter().cloned().fold(0.0_f64, f64::max);
    for (i, &rate) in rates.iter().enumerate() {
        if rate >= best - settings.saturation_epsilon {
            return (i + 1) as u32;
        }
    }
    rates.len() as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use ribbon_cloudsim::dist::{ArrivalProcess, BatchDistribution};
    use ribbon_cloudsim::latency::FnLatencyModel;
    use ribbon_cloudsim::{InstanceType, StreamConfig};

    fn stream(qps: f64, n: usize) -> Vec<Query> {
        StreamConfig {
            arrivals: ArrivalProcess::Poisson { qps },
            batches: BatchDistribution::Uniform { min: 8, max: 64 },
            num_queries: n,
            seed: 3,
        }
        .generate()
    }

    #[test]
    fn fast_instance_saturates_at_a_small_count() {
        // 1 ms service at 100 qps: a single instance is already at ~10 % utilization.
        let model = FnLatencyModel::new("fast", |_, _| 0.001);
        let queries = stream(100.0, 2000);
        let b = probe_type(
            InstanceType::G4dn,
            &queries,
            &model,
            0.010,
            &BoundSettings::default(),
        );
        assert!(
            b <= 2,
            "bound {b} should be tiny for an underloaded instance"
        );
    }

    #[test]
    fn saturating_slow_instance_needs_more_instances() {
        // 20 ms service at 300 qps needs ~6 servers to keep the queue bounded.
        let model = FnLatencyModel::new("slow", |_, _| 0.020);
        let queries = stream(300.0, 3000);
        let settings = BoundSettings {
            max_per_type: 15,
            ..Default::default()
        };
        let b = probe_type(InstanceType::T3, &queries, &model, 0.060, &settings);
        assert!(b >= 6, "bound {b} should cover the saturation point");
        assert!(b <= 15);
    }

    #[test]
    fn bound_never_exceeds_cap() {
        let model = FnLatencyModel::new("impossible", |_, _| 10.0); // always violates
        let queries = stream(50.0, 500);
        let settings = BoundSettings {
            max_per_type: 4,
            saturation_epsilon: 1e-9,
            ..Default::default()
        };
        let b = probe_type(InstanceType::R5, &queries, &model, 0.010, &settings);
        assert!((1..=4).contains(&b));
    }

    #[test]
    fn bounds_returned_for_every_type() {
        let model = FnLatencyModel::new("const", |_, _| 0.002);
        let queries = stream(200.0, 1000);
        let types = [InstanceType::G4dn, InstanceType::C5, InstanceType::R5n];
        let bounds = find_bounds(&types, &queries, &model, 0.020, &BoundSettings::default());
        assert_eq!(bounds.len(), 3);
        assert!(bounds.iter().all(|&b| (1..=12).contains(&b)));
    }

    #[test]
    #[should_panic(expected = "at least one instance type")]
    fn find_bounds_rejects_empty_type_list() {
        let model = FnLatencyModel::new("const", |_, _| 0.002);
        let _ = find_bounds(&[], &[], &model, 0.02, &BoundSettings::default());
    }

    #[test]
    fn faster_instance_type_gets_smaller_or_equal_bound() {
        let model = FnLatencyModel::new("per-type", |ty, _| {
            if ty == InstanceType::G4dn {
                0.002
            } else {
                0.008
            }
        });
        let queries = stream(400.0, 3000);
        let settings = BoundSettings {
            max_per_type: 15,
            ..Default::default()
        };
        let fast = probe_type(InstanceType::G4dn, &queries, &model, 0.020, &settings);
        let slow = probe_type(InstanceType::T3, &queries, &model, 0.020, &settings);
        assert!(fast <= slow, "fast bound {fast} vs slow bound {slow}");
    }
}
