//! Ribbon's objective function (Eq. 2 of the paper).
//!
//! The search maximizes
//!
//! ```text
//! f(x) = ½ · R_sat(x) / T_qos                          if x violates QoS
//! f(x) = ½ + ½ · (1 − Σ p_i x_i / Σ p_i m_i)           otherwise
//! ```
//!
//! where `R_sat(x)` is the measured QoS satisfaction rate, `T_qos` the target rate, `p_i` the
//! hourly price of instance type `i` and `m_i` the per-type search bound. The design
//! guarantees that *any* QoS-satisfying configuration scores above *every* violating one
//! (because `R_sat < T_qos` on the violating branch keeps it below ½), that cheaper satisfying
//! configurations score higher, and that the function stays smooth on both sides of the QoS
//! boundary — the properties Sec. 4 argues are necessary for the BO to converge.

use ribbon_cloudsim::{InstanceType, TierSet};
use serde::{Deserialize, Serialize};

/// The objective function over a fixed pool type-order and per-type bounds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RibbonObjective {
    /// Hourly price of each instance type in the pool (the paper's p_i).
    prices: Vec<f64>,
    /// Per-type search bounds (the paper's m_i).
    bounds: Vec<u32>,
    /// QoS target satisfaction rate T_qos (e.g. 0.99).
    target_rate: f64,
}

impl RibbonObjective {
    /// Creates the objective for a pool of instance types with the given bounds and target.
    ///
    /// # Panics
    /// Panics if the lengths differ, the bounds are all zero, or the target is outside (0, 1].
    pub fn new(types: &[InstanceType], bounds: &[u32], target_rate: f64) -> Self {
        assert_eq!(types.len(), bounds.len(), "types/bounds length mismatch");
        assert!(
            !types.is_empty(),
            "objective needs at least one instance type"
        );
        assert!(
            bounds.iter().any(|&b| b > 0),
            "at least one bound must be positive"
        );
        assert!(
            target_rate > 0.0 && target_rate <= 1.0,
            "target rate must be in (0, 1], got {target_rate}"
        );
        RibbonObjective {
            prices: types.iter().map(|t| t.hourly_price()).collect(),
            bounds: bounds.to_vec(),
            target_rate,
        }
    }

    /// Creates the objective from explicit prices (useful for tests and ablations).
    pub fn from_prices(prices: Vec<f64>, bounds: Vec<u32>, target_rate: f64) -> Self {
        assert_eq!(prices.len(), bounds.len(), "prices/bounds length mismatch");
        assert!(prices.iter().all(|&p| p > 0.0), "prices must be positive");
        assert!(
            bounds.iter().any(|&b| b > 0),
            "at least one bound must be positive"
        );
        assert!(target_rate > 0.0 && target_rate <= 1.0);
        RibbonObjective {
            prices,
            bounds,
            target_rate,
        }
    }

    /// The QoS target satisfaction rate T_qos.
    pub fn target_rate(&self) -> f64 {
        self.target_rate
    }

    /// Per-type bounds m_i.
    pub fn bounds(&self) -> &[u32] {
        &self.bounds
    }

    /// Hourly cost of a configuration: Σ p_i x_i.
    pub fn cost(&self, config: &[u32]) -> f64 {
        assert_eq!(
            config.len(),
            self.prices.len(),
            "configuration dimensionality mismatch"
        );
        config
            .iter()
            .zip(&self.prices)
            .map(|(&x, &p)| x as f64 * p)
            .sum()
    }

    /// Maximum possible pool cost: Σ p_i m_i (the normalizer of the satisfying branch).
    pub fn max_cost(&self) -> f64 {
        self.bounds
            .iter()
            .zip(&self.prices)
            .map(|(&m, &p)| m as f64 * p)
            .sum()
    }

    /// Whether a satisfaction rate meets the QoS target.
    pub fn meets_qos(&self, satisfaction_rate: f64) -> bool {
        satisfaction_rate >= self.target_rate
    }

    /// Evaluates Eq. 2 for a configuration with the given measured satisfaction rate.
    ///
    /// The returned value is in `[0, 1]`: violating configurations land in `[0, ½)` and
    /// satisfying configurations in `[½, 1]`.
    pub fn value(&self, config: &[u32], satisfaction_rate: f64) -> f64 {
        let rate = satisfaction_rate.clamp(0.0, 1.0);
        if !self.meets_qos(rate) {
            0.5 * rate / self.target_rate
        } else {
            0.5 + 0.5 * (1.0 - self.cost(config) / self.max_cost())
        }
    }

    /// Whether per-tier satisfaction rates meet the tiered QoS: every *gating* tier
    /// (premium and standard classes — best-effort never gates) must reach its
    /// effective target rate. A tier that served nothing (`None`) trivially gates.
    pub fn meets_tiered_qos(&self, tier_rates: &[Option<f64>], tiers: &TierSet) -> bool {
        tiers.tiers().iter().enumerate().all(|(t, spec)| {
            !spec.class.gates_qos()
                || tier_rates[t].is_none_or(|r| r >= tiers.effective_rate(t, self.target_rate))
        })
    }

    /// Evaluates the tier-weighted Eq. 2 for a configuration with per-tier measured
    /// satisfaction rates.
    ///
    /// The satisfying branch is unchanged — once every gating tier meets its target,
    /// only cost differentiates configurations. The violating branch generalizes
    /// `½ · R_sat / T_qos` to a weight-normalized mean of per-tier progress,
    ///
    /// ```text
    /// ½ · Σ_t w_t · min(1, R_t / T_t) / Σ_t w_t      over gating tiers t
    /// ```
    ///
    /// so a premium tier with triple weight pulls the search toward configurations
    /// that fix premium shortfalls first, while best-effort rides the slack without
    /// ever holding the score below ½. Keeps the ordering invariant: every satisfying
    /// configuration scores ≥ ½ and every violating one < ½ (some gating tier has
    /// `min(1, R_t/T_t) < 1`, and weights over gating tiers have a positive sum).
    pub fn tier_value(&self, config: &[u32], tier_rates: &[Option<f64>], tiers: &TierSet) -> f64 {
        assert_eq!(
            tier_rates.len(),
            tiers.len(),
            "one satisfaction rate per tier"
        );
        if self.meets_tiered_qos(tier_rates, tiers) {
            return 0.5 + 0.5 * (1.0 - self.cost(config) / self.max_cost());
        }
        let mut weight_sum = 0.0;
        let mut progress = 0.0;
        for (t, spec) in tiers.tiers().iter().enumerate() {
            if !spec.class.gates_qos() {
                continue;
            }
            let target = tiers.effective_rate(t, self.target_rate);
            let rate = tier_rates[t].unwrap_or(1.0).clamp(0.0, 1.0);
            weight_sum += spec.weight;
            progress += spec.weight * (rate / target).min(1.0);
        }
        // TierSet::try_new guarantees a positive gating weight sum.
        0.5 * progress / weight_sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use ribbon_cloudsim::InstanceType::*;

    fn mt_wnd_objective() -> RibbonObjective {
        RibbonObjective::new(&[G4dn, C5, R5n], &[6, 8, 10], 0.99)
    }

    #[test]
    fn cost_uses_catalog_prices() {
        let obj = mt_wnd_objective();
        let c = obj.cost(&[2, 1, 3]);
        assert!((c - (2.0 * 0.526 + 0.34 + 3.0 * 0.149)).abs() < 1e-12);
        assert!((obj.max_cost() - (6.0 * 0.526 + 8.0 * 0.34 + 10.0 * 0.149)).abs() < 1e-12);
    }

    #[test]
    fn violating_configs_score_below_half() {
        let obj = mt_wnd_objective();
        for rate in [0.0, 0.3, 0.7, 0.98, 0.9899] {
            let v = obj.value(&[1, 1, 1], rate);
            assert!(v < 0.5, "rate {rate} gave {v}");
        }
    }

    #[test]
    fn satisfying_configs_score_at_least_half() {
        let obj = mt_wnd_objective();
        for rate in [0.99, 0.995, 1.0] {
            assert!(obj.value(&[6, 8, 10], rate) >= 0.5);
        }
        // Even the most expensive satisfying pool beats the best violating one.
        assert!(obj.value(&[6, 8, 10], 0.99) >= obj.value(&[1, 0, 0], 0.98999));
    }

    #[test]
    fn cheaper_satisfying_configs_score_higher() {
        let obj = mt_wnd_objective();
        let cheap = obj.value(&[3, 0, 4], 0.995);
        let expensive = obj.value(&[5, 0, 0], 0.999);
        assert!(
            cheap > expensive,
            "3xg4dn+4xr5n (${:.2}) should beat 5xg4dn (${:.2})",
            obj.cost(&[3, 0, 4]),
            obj.cost(&[5, 0, 0])
        );
    }

    #[test]
    fn satisfaction_rate_does_not_matter_once_qos_is_met() {
        let obj = mt_wnd_objective();
        assert_eq!(obj.value(&[4, 2, 1], 0.99), obj.value(&[4, 2, 1], 1.0));
    }

    #[test]
    fn violating_branch_increases_with_rate() {
        let obj = mt_wnd_objective();
        let lo = obj.value(&[1, 0, 0], 0.50);
        let hi = obj.value(&[1, 0, 0], 0.90);
        assert!(hi > lo);
    }

    #[test]
    fn violating_branch_is_continuous_at_the_boundary() {
        // At rate exactly T_qos the violating branch would give 0.5; the satisfying branch
        // gives at least 0.5 — the paper's "no steep jump" requirement.
        let obj = mt_wnd_objective();
        let just_below = obj.value(&[6, 8, 10], 0.98999999);
        let at_target = obj.value(&[6, 8, 10], 0.99);
        assert!((just_below - 0.5).abs() < 1e-6);
        assert!(
            (at_target - 0.5).abs() < 1e-9,
            "the full pool costs max_cost, so value = 0.5"
        );
    }

    #[test]
    fn free_pool_would_score_one() {
        let obj = RibbonObjective::from_prices(vec![1.0, 1.0], vec![5, 5], 0.99);
        // Cost 0 is impossible for a real pool but bounds the satisfying branch at 1.
        assert_eq!(obj.value(&[0, 0], 1.0), 1.0);
    }

    #[test]
    fn rate_is_clamped_to_unit_interval() {
        let obj = mt_wnd_objective();
        assert_eq!(obj.value(&[1, 1, 1], -0.3), 0.0);
        assert!(obj.value(&[1, 1, 1], 1.7) >= 0.5);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_mismatched_bounds() {
        let _ = RibbonObjective::new(&[G4dn], &[1, 2], 0.99);
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn cost_rejects_wrong_dimension() {
        let _ = mt_wnd_objective().cost(&[1, 2]);
    }

    #[test]
    #[should_panic(expected = "target rate")]
    fn rejects_bad_target_rate() {
        let _ = RibbonObjective::new(&[G4dn], &[5], 1.5);
    }

    #[test]
    fn meets_qos_threshold() {
        let obj = mt_wnd_objective();
        assert!(obj.meets_qos(0.99));
        assert!(!obj.meets_qos(0.9899));
        assert_eq!(obj.target_rate(), 0.99);
    }

    proptest! {
        #[test]
        fn prop_objective_in_unit_interval(
            x1 in 0u32..7, x2 in 0u32..9, x3 in 0u32..11, rate in 0.0f64..1.0
        ) {
            let obj = mt_wnd_objective();
            let v = obj.value(&[x1, x2, x3], rate);
            prop_assert!((0.0..=1.0).contains(&v));
        }

        #[test]
        fn prop_satisfying_always_beats_violating(
            x1 in 0u32..7, x2 in 0u32..9, x3 in 0u32..11,
            y1 in 0u32..7, y2 in 0u32..9, y3 in 0u32..11,
            bad_rate in 0.0f64..0.9899,
        ) {
            let obj = mt_wnd_objective();
            let satisfying = obj.value(&[x1, x2, x3], 0.995);
            let violating = obj.value(&[y1, y2, y3], bad_rate);
            prop_assert!(satisfying >= violating);
        }

        #[test]
        fn prop_adding_instances_never_raises_the_satisfying_score(
            x1 in 0u32..6, x2 in 0u32..8, x3 in 0u32..10, dim in 0usize..3
        ) {
            let obj = mt_wnd_objective();
            let base = vec![x1, x2, x3];
            let mut bigger = base.clone();
            bigger[dim] += 1;
            prop_assert!(obj.value(&bigger, 1.0) <= obj.value(&base, 1.0));
        }
    }
}
