//! # Ribbon
//!
//! A from-scratch Rust reproduction of **"RIBBON: Cost-Effective and QoS-Aware Deep Learning
//! Model Inference using a Diverse Pool of Cloud Computing Instances"** (Li et al., SC 2021).
//!
//! Ribbon serves a stream of inference queries on a *heterogeneous* pool of cloud instances
//! and uses Bayesian Optimization over a Gaussian-Process surrogate to find the pool
//! configuration (how many instances of each type) that meets a tail-latency QoS target at
//! minimum hourly cost.
//!
//! ## Quick start
//!
//! ```
//! use ribbon::prelude::*;
//!
//! // The MT-WND recommendation workload of the paper: 20 ms p99 QoS target, Poisson
//! // arrivals, heavy-tail log-normal batch sizes, diverse pool {g4dn, c5, r5n}.
//! let mut workload = Workload::standard(ModelKind::MtWnd);
//! workload.num_queries = 600; // keep the doctest fast; experiments use 4000
//!
//! let evaluator = ConfigEvaluator::new(&workload, EvaluatorSettings { max_per_type: 6, ..Default::default() });
//! let ribbon = RibbonSearch::new(RibbonSettings { max_evaluations: 10, ..Default::default() });
//! let trace = ribbon.run(&evaluator, 7);
//!
//! let best = trace.best_satisfying().expect("found a QoS-meeting configuration");
//! println!("best pool: {} at ${:.2}/hr", best.pool.describe(), best.hourly_cost);
//! ```
//!
//! ## Crate layout
//!
//! * [`objective`] — the paper's Eq. 2 objective over (QoS satisfaction rate, pool cost);
//! * [`bounds`] — per-type search-range upper bounds m_i (saturation probing);
//! * [`evaluator`] — deploys a configuration on the simulated cloud and measures its QoS
//!   satisfaction rate (with caching, since every search strategy re-visits configurations);
//! * [`search`] — Ribbon's BO-driven search with active pruning;
//! * [`strategies`] — the competing schemes of Sec. 5.3: RANDOM, Hill-Climb, RSM, and
//!   exhaustive search;
//! * [`adapt`] — load-change adaptation (Sec. 4 "Ribbon promptly responds to load changes",
//!   evaluated in Fig. 16);
//! * [`online`] — the online serving runtime: a windowed-QoS-watching controller with
//!   hysteresis that reconfigures the streaming simulator mid-stream, reusing the [`adapt`]
//!   warm-start machinery for every replan;
//! * [`accounting`] — homogeneous baselines, cost savings, exploration cost, transition
//!   costs of online reconfigurations, and the other derived metrics reported in
//!   Figs. 9–15;
//! * [`fleet`] — multi-model fleet serving: several workloads on one jointly-optimized
//!   pool with optional cross-model shared slots, a joint BO planner over the
//!   cross-product allocation space, and per-model online slice reconfiguration.

pub mod accounting;
pub mod adapt;
pub mod bounds;
pub mod evaluator;
pub mod fleet;
pub mod objective;
pub mod online;
pub mod scenario;
pub mod search;
pub mod strategies;
pub mod variant;

pub use accounting::{homogeneous_optimum, HomogeneousOptimum, TraceMetrics};
pub use adapt::{inject_pseudo_observations, AdaptationOutcome, AdaptationStep, LoadAdapter};
pub use bounds::find_bounds;
pub use evaluator::{BatchEvaluator, ConfigEvaluator, Evaluation, EvaluatorSettings};
pub use fleet::{
    serve_fleet, Fleet, FleetEvaluation, FleetEvaluator, FleetMember, FleetModelSpec, FleetPlanner,
    FleetReport, FleetSpec, RibbonFleetPlanner,
};
pub use objective::RibbonObjective;
pub use online::{
    serve_online, serve_online_with_policy, ControllerAction, OnlineController,
    OnlineControllerSettings, OnlineOutcome, OnlineRunSettings, ReconfigEvent, ReconfigTrigger,
    VariantSwitchEvent,
};
pub use scenario::{
    planner_by_name, Planner, RibbonPlanner, Scenario, ScenarioError, ScenarioReport, ScenarioSpec,
    SearchPlanner,
};
pub use search::{RibbonSearch, RibbonSettings, SearchTrace};
pub use strategies::{
    ExhaustiveSearch, HillClimbSearch, RandomSearch, ResponseSurfaceSearch, SearchStrategy,
};
pub use variant::VariantEvaluator;

/// Convenience re-exports for downstream users and examples.
pub mod prelude {
    pub use crate::accounting::{homogeneous_optimum, TraceMetrics};
    pub use crate::adapt::LoadAdapter;
    pub use crate::evaluator::{ConfigEvaluator, Evaluation, EvaluatorSettings};
    pub use crate::fleet::{Fleet, FleetPlanner, FleetReport, FleetSpec, RibbonFleetPlanner};
    pub use crate::online::{
        serve_online, serve_online_with_policy, OnlineController, OnlineControllerSettings,
        OnlineRunSettings,
    };
    pub use crate::scenario::{
        planner_by_name, Planner, Scenario, ScenarioError, ScenarioReport, ScenarioSpec,
    };
    pub use crate::search::{RibbonSearch, RibbonSettings, SearchTrace};
    pub use crate::strategies::{
        ExhaustiveSearch, HillClimbSearch, RandomSearch, ResponseSurfaceSearch, SearchStrategy,
    };
    pub use ribbon_cloudsim::{
        InstanceType, PhasedArrivalProcess, PhasedStreamConfig, PoolSpec, QosTarget, StreamingSim,
        StreamingSimConfig, WindowConfig, WindowStats,
    };
    pub use ribbon_models::{ModelKind, ModelProfile, Workload};
}
