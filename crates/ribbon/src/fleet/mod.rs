//! Multi-model fleet serving on a shared heterogeneous pool.
//!
//! The scenario façade ([`crate::scenario`]) plans **one** model's pool at a time. A
//! production deployment co-locates many models on shared capacity — the cost/QoS win
//! INFaaS-style systems demonstrate — and this module grows the façade to that shape:
//!
//! * [`FleetSpec`] — a declarative `[fleet]` + `[[model]]` file: every model brings its
//!   own workload, QoS policy, traffic trace, and online knobs (the exact schema of a
//!   single-model scenario file), while the fleet header declares the shared catalog,
//!   the joint search budget, and which instance families are opened for cross-model
//!   **shared slots**;
//! * [`Fleet`] — the compiled form: one [`Catalog`] shared by every member, each member
//!   compiled through the existing scenario machinery (so bounds probing, policy
//!   construction, and traffic compilation behave identically to a single-model run);
//! * [`FleetEvaluator`] — evaluates one *joint allocation* (per-model dedicated slices
//!   plus the shared slice) against every member's QoS at once, by merged-stream
//!   simulation through the [`ribbon_cloudsim::FleetSim`] router when shared slots are
//!   in play, and by the members' own (cached, parallel) [`crate::ConfigEvaluator`]s
//!   when the allocation is fully dedicated;
//! * [`FleetPlanner`] / [`RibbonFleetPlanner`] — the joint Bayesian-Optimization search
//!   over the cross-product allocation space (re-using the incremental GP engine), a
//!   dedicated-pools baseline with per-model savings, and an online serve path that
//!   watches each model's windows and reconfigures **only the violating model's slice**.
//!
//! A fleet with a single model and no shared families degenerates *bit-for-bit* into
//! the single-model [`crate::scenario::RibbonPlanner`] path — plan trace and serve
//! windows alike — pinned by `tests/fleet_serving.rs`.

mod evaluator;
mod planner;
mod spec;

pub use evaluator::{FleetEvaluation, FleetEvaluator};
pub use planner::{
    serve_fleet, FleetMemberReport, FleetMemberServe, FleetPlanner, FleetReport, FleetServeTotals,
    RibbonFleetPlanner, JOINT_BO_LATTICE_CAP,
};
pub use spec::{FleetModelSpec, FleetSpec};

use crate::scenario::{PlannerSpec, RunMode, Scenario, ScenarioError, ScenarioSpec};
use crate::search::RibbonSettings;
use ribbon_cloudsim::{Catalog, InstanceType};
use ribbon_gp::FitConfig;
use std::path::Path;

/// Default per-family search bound of the shared slice.
pub const DEFAULT_SHARED_BOUND: u32 = 4;

/// One compiled fleet member: the scenario machinery's output plus fleet-only knobs.
#[derive(Debug, Clone)]
pub struct FleetMember {
    /// Display name (defaults to the model name).
    pub name: String,
    /// Objective weight in the joint score.
    pub weight: f64,
    /// Shared-slice routing weight (see [`ribbon_cloudsim::FleetModelConfig`]).
    pub share_weight: f64,
    /// The member compiled exactly as a single-model scenario would be.
    pub scenario: Scenario,
}

/// A compiled, runnable fleet.
#[derive(Debug, Clone)]
pub struct Fleet {
    /// The spec this fleet was compiled from.
    pub spec: FleetSpec,
    /// The instance catalog shared by every member.
    pub catalog: Catalog,
    /// The members, in spec order.
    pub members: Vec<FleetMember>,
    /// Instance types of the shared slice (may be empty).
    pub shared_types: Vec<InstanceType>,
    /// Per-type search bounds of the shared slice (parallel to `shared_types`).
    pub shared_bounds: Vec<u32>,
    /// Joint-search settings (budget, initial samples, pruning, GP grid).
    pub search: RibbonSettings,
}

impl FleetSpec {
    /// Compiles the fleet against its catalog. Relative catalog paths resolve against
    /// the current directory; [`Fleet::load`] resolves against the spec file instead.
    pub fn compile(&self) -> Result<Fleet, ScenarioError> {
        self.compile_with_base(None)
    }

    /// Compiles the fleet, resolving a relative `fleet.catalog` path against `base_dir`.
    pub fn compile_with_base(&self, base_dir: Option<&Path>) -> Result<Fleet, ScenarioError> {
        // `from_value` enforces this too, but every field is pub and the bench harness
        // builds specs programmatically — an empty fleet must error, not panic below.
        if self.models.is_empty() {
            return Err(ScenarioError::invalid(
                "model",
                "a fleet needs at least one [[model]] entry",
            ));
        }
        let member_budget = self.member_budget.unwrap_or(self.budget);
        let mut members = Vec::with_capacity(self.models.len());
        for (i, m) in self.models.iter().enumerate() {
            let path = format!("model[{i}]");
            let weight = m.weight.unwrap_or(1.0);
            if !(weight.is_finite() && weight > 0.0) {
                return Err(ScenarioError::invalid(
                    format!("{path}.weight"),
                    "must be a positive number",
                ));
            }
            let share_weight = match m.share_weight {
                Some(w) if w.is_finite() && w >= 0.0 => w,
                Some(_) => {
                    return Err(ScenarioError::invalid(
                        format!("{path}.share_weight"),
                        "must be a non-negative number",
                    ))
                }
                None if self.shared_pool.is_empty() => 0.0,
                None => 1.0,
            };
            // Each member compiles through the single-model scenario machinery, so
            // bounds, policies, traffic, and online settings behave identically to a
            // standalone run of the same sections.
            let member_spec = ScenarioSpec {
                name: m
                    .name
                    .clone()
                    .unwrap_or_else(|| m.workload.model.to_ascii_lowercase()),
                description: String::new(),
                mode: self.mode,
                seed: self.seed,
                catalog: self.catalog.clone(),
                workload: m.workload.clone(),
                qos: m.qos.clone(),
                qos_tiers: m.qos_tiers.clone(),
                planner: PlannerSpec {
                    name: "ribbon".to_string(),
                    budget: member_budget,
                    baseline: false,
                    initial_samples: self.initial_samples,
                    prune_threshold: self.prune_threshold,
                    ..PlannerSpec::default()
                },
                evaluator: crate::scenario::EvaluatorSpec {
                    bounds: m.bounds.clone(),
                    threads: self.threads,
                    ..Default::default()
                },
                traffic: m.traffic.clone(),
                online: m.online.clone(),
            };
            let scenario = member_spec
                .compile_with_base(base_dir)
                .map_err(|e| e.prefix_path(&path))?;
            members.push(FleetMember {
                name: member_spec.name.clone(),
                weight,
                share_weight,
                scenario,
            });
        }

        let catalog = members
            .first()
            .map(|m| m.scenario.catalog.clone())
            .expect("checked non-empty above");

        let mut shared_types = Vec::with_capacity(self.shared_pool.len());
        for family in &self.shared_pool {
            shared_types.push(
                catalog
                    .resolve(family)
                    .map_err(|e| ScenarioError::from_config("fleet.shared_pool", e))?,
            );
        }
        let shared_bounds = match &self.shared_bounds {
            Some(b) => {
                if b.iter().all(|&x| x == 0) && !b.is_empty() {
                    return Err(ScenarioError::invalid(
                        "fleet.shared_bounds",
                        "at least one shared bound must be positive",
                    ));
                }
                b.clone()
            }
            None => vec![DEFAULT_SHARED_BOUND; shared_types.len()],
        };
        if !shared_types.is_empty() && members.iter().all(|m| m.share_weight == 0.0) {
            return Err(ScenarioError::invalid(
                "fleet.shared_pool",
                "a shared pool is declared but every model has share_weight = 0",
            ));
        }

        let defaults = RibbonSettings::default();
        let search = RibbonSettings {
            max_evaluations: self.budget,
            initial_samples: self.initial_samples.unwrap_or(defaults.initial_samples),
            prune_threshold: self.prune_threshold.unwrap_or(defaults.prune_threshold),
            acquisition: defaults.acquisition,
            fit: FitConfig::coarse(),
            start_config: None,
            reuse_surrogate: defaults.reuse_surrogate,
            scan_threads: None,
            batch: self.batch.unwrap_or(defaults.batch),
            fidelity: defaults.fidelity,
        };

        Ok(Fleet {
            spec: self.clone(),
            catalog,
            members,
            shared_types,
            shared_bounds,
            search,
        })
    }
}

impl Fleet {
    /// Loads and compiles a fleet file (TOML or JSON, by extension). Relative catalog
    /// paths resolve against the spec file's directory.
    pub fn load(path: &str) -> Result<Fleet, ScenarioError> {
        let spec = FleetSpec::load_file(path)?;
        spec.compile_with_base(Path::new(path).parent())
    }

    /// Number of fleet members.
    pub fn num_members(&self) -> usize {
        self.members.len()
    }

    /// `true` when the fleet declares shared slots.
    pub fn has_shared(&self) -> bool {
        !self.shared_types.is_empty()
    }

    /// Runs the fleet with the RIBBON fleet planner in its spec'd mode.
    pub fn run(&self) -> Result<FleetReport, ScenarioError> {
        let planner = RibbonFleetPlanner;
        match self.spec.mode {
            RunMode::Plan => planner.plan(self),
            RunMode::Serve => planner.serve(self),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn duo_toml() -> String {
        r#"
[fleet]
name = "duo"
mode = "plan"
seed = 5
budget = 10
shared_pool = ["g4dn"]
shared_bounds = [3]

[[model]]
bounds = [4, 2, 4]

[model.workload]
model = "MT-WND"
num_queries = 500

[[model]]
bounds = [4, 2, 4]

[model.workload]
model = "DIEN"
num_queries = 400
"#
        .to_string()
    }

    #[test]
    fn fleet_compiles_members_through_the_scenario_machinery() {
        let fleet = FleetSpec::from_toml_str(&duo_toml())
            .unwrap()
            .compile()
            .unwrap();
        assert_eq!(fleet.num_members(), 2);
        assert_eq!(fleet.members[0].name, "mt-wnd");
        assert_eq!(
            fleet.members[0].scenario.workload.model,
            ribbon_models::ModelKind::MtWnd
        );
        assert_eq!(
            fleet.members[1].scenario.evaluator_settings.explicit_bounds,
            Some(vec![4, 2, 4])
        );
        assert_eq!(fleet.shared_types, vec![InstanceType::G4dn]);
        assert_eq!(fleet.shared_bounds, vec![3]);
        assert_eq!(fleet.search.max_evaluations, 10);
        assert_eq!(
            fleet.members[0].share_weight, 1.0,
            "defaults on with shared"
        );
        assert!(fleet.has_shared());
    }

    #[test]
    fn member_errors_carry_the_member_path() {
        let bad = duo_toml().replace("model = \"DIEN\"", "model = \"GPT-5\"");
        let e = FleetSpec::from_toml_str(&bad)
            .unwrap()
            .compile()
            .unwrap_err();
        assert!(e.to_string().contains("model[1].workload.model"), "{e}");
    }

    #[test]
    fn unknown_shared_family_is_rejected() {
        let bad = duo_toml().replace("shared_pool = [\"g4dn\"]", "shared_pool = [\"quantum9\"]");
        let e = FleetSpec::from_toml_str(&bad)
            .unwrap()
            .compile()
            .unwrap_err();
        assert!(e.to_string().contains("fleet.shared_pool"), "{e}");
    }

    #[test]
    fn all_zero_share_weights_with_a_shared_pool_is_an_error() {
        let bad = duo_toml().replace(
            "bounds = [4, 2, 4]\n\n[model.workload]\nmodel = \"MT-WND\"",
            "bounds = [4, 2, 4]\nshare_weight = 0.0\n\n[model.workload]\nmodel = \"MT-WND\"",
        );
        let bad = bad.replace(
            "bounds = [4, 2, 4]\n\n[model.workload]\nmodel = \"DIEN\"",
            "bounds = [4, 2, 4]\nshare_weight = 0.0\n\n[model.workload]\nmodel = \"DIEN\"",
        );
        let e = FleetSpec::from_toml_str(&bad)
            .unwrap()
            .compile()
            .unwrap_err();
        assert!(e.to_string().contains("share_weight = 0"), "{e}");
    }

    #[test]
    fn serve_mode_requires_traffic_per_member() {
        let bad = duo_toml().replace("mode = \"plan\"", "mode = \"serve\"");
        let e = FleetSpec::from_toml_str(&bad)
            .unwrap()
            .compile()
            .unwrap_err();
        assert!(e.to_string().contains("model[0].traffic"), "{e}");
    }

    #[test]
    fn programmatic_empty_fleet_errors_instead_of_panicking() {
        // Every field is pub; a spec built in code with no models must fail cleanly.
        let spec = FleetSpec {
            models: Vec::new(),
            ..FleetSpec::from_toml_str(&duo_toml()).unwrap()
        };
        let e = spec.compile().unwrap_err();
        assert!(e.to_string().contains("at least one [[model]]"), "{e}");
    }

    #[test]
    fn baseline_false_suppresses_the_comparison_in_the_report() {
        // The per-member optimum searches still run (they seed the warm start), but
        // the report must honour the opt-out: no baseline or saving fields.
        let mut spec = FleetSpec::from_toml_str(&duo_toml()).unwrap();
        spec.baseline = false;
        spec.models[0].workload.num_queries = Some(300);
        spec.models[1].workload.num_queries = Some(300);
        spec.budget = 8;
        let report = spec.compile().unwrap().run().unwrap();
        assert!(report.baseline_total_hourly_cost.is_none());
        assert!(report.saving_percent.is_none());
        for m in &report.models {
            assert!(m.baseline_config.is_none(), "{}", m.name);
            assert!(m.saving_percent.is_none(), "{}", m.name);
        }
    }
}
