//! The joint fleet planner: one Bayesian-Optimization search over the cross-product
//! allocation space, a dedicated-pools baseline, and the online fleet serve path.
//!
//! # Plan
//!
//! [`RibbonFleetPlanner::plan`] first finds each member's **dedicated-pool optimum**
//! (the configuration a standalone RIBBON run would deploy — the honest baseline a
//! joint allocation must beat), then runs one BO search over the joint lattice
//! `[member slices… | shared slice]` re-using the incremental-GP engine
//! ([`BoOptimizer`]) and the parallel member evaluators. The search is warm-started
//! with deterministic **pooling candidates** derived from the baselines: move `k`
//! dedicated instances of a shared family into `s ≤ k` shared slots, so the known-good
//! region (and the cost-saving direction) is in the surrogate from the first iteration.
//! Pruning lifts RIBBON's rules to the fleet: an allocation where *some* member
//! violates by more than θ prunes its dominated box (less capacity anywhere cannot fix
//! that member), an allocation satisfying *every* member prunes the dominating box
//! (more capacity anywhere only costs more).
//!
//! # Serve
//!
//! [`RibbonFleetPlanner::serve`] deploys the planned allocation and streams every
//! member's traffic through the [`FleetSim`] router. Each member with a dedicated slice
//! gets its own [`OnlineController`] (the same hysteresis/warm-replan machinery as
//! single-model serving) watching that member's windows; a tripped controller
//! reconfigures **only that member's slice**, make-before-break, while the other lanes
//! and the shared slice keep serving untouched.
//!
//! A single-member fleet with no shared families reproduces the single-model
//! [`RibbonPlanner`](crate::scenario::RibbonPlanner) bit for bit in both modes (pinned
//! by `tests/fleet_serving.rs`).

use crate::accounting::mean_hourly_cost;
use crate::accounting::transition_overlap_cost;
use crate::evaluator::Evaluation;
use crate::fleet::{Fleet, FleetEvaluation, FleetEvaluator};
use crate::online::{OnlineController, ReconfigEvent, ReconfigTrigger};
use crate::scenario::{EventReport, RunMode, ScenarioError, TierReport};
use crate::search::RibbonSearch;
use rand::rngs::StdRng;
use rand::SeedableRng;
use ribbon_bo::{BoOptimizer, BoSettings, ConfigLattice, Optimizer, Outcome};
use ribbon_cloudsim::parallel::{default_threads, par_map_vec};
use ribbon_cloudsim::router::{FleetModelConfig, FleetSim, VariantPolicy, VariantSwitch};
use ribbon_cloudsim::{
    cost_from_billing, merge_tagged_slices, partition_groups, tag_tier, tier_assigners, CostModel,
    LatencyModel, PoolSpec, Query, SimStats, SlotBilling, TierTotals, WindowStats,
};
use ribbon_models::{ModelProfile, VariantSetProfile};
use ribbon_spec::Value;

/// A fleet-level planner: `plan` searches the joint allocation space, `serve` deploys
/// and adapts online; both return a [`FleetReport`].
pub trait FleetPlanner: Send + Sync {
    /// Display name.
    fn name(&self) -> &str;

    /// Joint offline search over the fleet's allocation space.
    fn plan(&self, fleet: &Fleet) -> Result<FleetReport, ScenarioError>;

    /// Online fleet serving with per-model monitoring and slice reconfiguration.
    fn serve(&self, fleet: &Fleet) -> Result<FleetReport, ScenarioError>;

    /// Dispatches on the fleet's mode.
    fn run(&self, fleet: &Fleet) -> Result<FleetReport, ScenarioError> {
        match fleet.spec.mode {
            RunMode::Plan => self.plan(fleet),
            RunMode::Serve => self.serve(fleet),
        }
    }
}

/// One member's serve-phase outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetMemberServe {
    /// Dedicated slice deployed at stream start.
    pub initial_config: Vec<u32>,
    /// Dedicated slice deployed when the stream ended.
    pub final_config: Vec<u32>,
    /// Number of monitoring windows observed for this member.
    pub windows: usize,
    /// Queries served for this member.
    pub queries: usize,
    /// Of those, how many the shared slice served.
    pub shared_queries: usize,
    /// Whole-stream satisfaction rate (`None` for an empty stream).
    pub satisfaction_rate: Option<f64>,
    /// Every applied reconfiguration of this member's slice, in order.
    pub events: Vec<EventReport>,
    /// Lane queries served per variant palette index (members with a palette only).
    pub variant_served: Option<Vec<u64>>,
    /// Serving-variant switches the lane router applied, in order (members with a
    /// palette only).
    pub variant_switches: Vec<VariantSwitch>,
    /// Every monitoring window observed for this member, in order (kept in memory for
    /// analysis and the single-model differential; not serialized by `to_value`).
    pub window_stats: Vec<WindowStats>,
    /// Whole-stream per-tier outcome of this member (tiered members only).
    pub tiers: Vec<TierReport>,
}

/// Fleet-wide serve totals.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetServeTotals {
    /// Queries served across every member.
    pub queries: usize,
    /// Monitoring windows across every member.
    pub windows: usize,
    /// Run duration in seconds (last completion across the fleet).
    pub duration_s: f64,
    /// Exact accrued fleet cost in USD (per-slot billing, transitions included).
    pub total_cost_usd: f64,
    /// Mean hourly cost over the run.
    pub mean_hourly_cost: f64,
    /// Hourly cost of the final deployment (lanes + shared slice).
    pub final_hourly_cost: f64,
    /// Total applied reconfigurations across the fleet.
    pub reconfigurations: usize,
    /// Total serving-variant switches the lane routers applied across the fleet.
    pub variant_switches: usize,
    /// Best-effort queries dropped at admission across the fleet (tiered members only).
    pub admission_drops: u64,
    /// Premium dispatches that overtook queued best-effort work across the fleet.
    pub preemptions: u64,
}

/// One member's section of a [`FleetReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct FleetMemberReport {
    /// Member name.
    pub name: String,
    /// Model name.
    pub model: String,
    /// Human description of the member's QoS policy.
    pub qos: String,
    /// Objective weight (reporting only).
    pub weight: f64,
    /// The member's dedicated slice in the chosen allocation.
    pub dedicated_config: Vec<u32>,
    /// Its pool description.
    pub pool: String,
    /// Hourly cost of the dedicated slice alone.
    pub dedicated_hourly_cost: f64,
    /// Dedicated cost plus this member's usage-proportional share of the shared slice.
    pub attributed_hourly_cost: f64,
    /// Plan-time QoS score of the chosen allocation for this member.
    pub satisfaction_rate: f64,
    /// Whether the member meets its QoS under the chosen allocation.
    pub meets_qos: bool,
    /// Plan-time count of this member's queries served by the shared slice.
    pub shared_queries: usize,
    /// The member's dedicated-pool optimum (standalone RIBBON run), when computed.
    pub baseline_config: Option<Vec<u32>>,
    /// Its pool description.
    pub baseline_pool: Option<String>,
    /// Its hourly cost.
    pub baseline_hourly_cost: Option<f64>,
    /// Attributed-cost saving vs the dedicated baseline, in percent.
    pub saving_percent: Option<f64>,
    /// Serve-phase outcome (serve mode only).
    pub serve: Option<FleetMemberServe>,
}

/// The structured result of running a fleet planner.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Fleet name (from the spec).
    pub fleet: String,
    /// Planner that produced this report.
    pub planner: String,
    /// The mode that ran.
    pub mode: RunMode,
    /// The run's master seed.
    pub seed: u64,
    /// Per-member sections, in spec order.
    pub models: Vec<FleetMemberReport>,
    /// The shared slice of the chosen allocation (empty without shared families).
    pub shared_config: Vec<u32>,
    /// Its pool description.
    pub shared_pool: String,
    /// Its hourly cost.
    pub shared_hourly_cost: f64,
    /// Total fleet hourly cost of the chosen allocation.
    pub total_hourly_cost: f64,
    /// Sum of the dedicated-pool optima, when every member has one.
    pub baseline_total_hourly_cost: Option<f64>,
    /// Fleet saving vs that sum, in percent.
    pub saving_percent: Option<f64>,
    /// Whether the joint lattice exceeded the planner's internal cap
    /// (`JOINT_BO_LATTICE_CAP`) so the BO refinement stage was skipped (the warm
    /// candidates and greedy descent carried the search).
    pub bo_refinement_skipped: bool,
    /// Number of joint evaluations performed.
    pub evaluations: usize,
    /// Of those, how many violated some member's QoS.
    pub violations: usize,
    /// The chosen allocation's full evaluation.
    pub best: FleetEvaluation,
    /// The full joint search trace, in evaluation order.
    pub trace: Vec<FleetEvaluation>,
    /// Fleet-wide serve totals (serve mode only).
    pub serve: Option<FleetServeTotals>,
}

/// Joint lattices beyond this many points skip the BO refinement stage (the candidate
/// set alone would be hundreds of megabytes); the deterministic pooling candidates and
/// the greedy descent carry the search there.
pub const JOINT_BO_LATTICE_CAP: u64 = 2_000_000;

/// The RIBBON fleet planner (the only implementation today; the trait keeps the CLI and
/// tests planner-agnostic the way [`crate::scenario::Planner`] does for scenarios).
#[derive(Debug, Clone, Default)]
pub struct RibbonFleetPlanner;

struct PlanOutcome {
    trace: Vec<FleetEvaluation>,
    best: FleetEvaluation,
    baselines: Vec<Option<Evaluation>>,
    bo_refinement_skipped: bool,
}

impl RibbonFleetPlanner {
    /// Per-member dedicated-pool optima: what a standalone RIBBON plan would deploy.
    fn member_baselines(
        &self,
        fleet: &Fleet,
        evaluator: &FleetEvaluator,
    ) -> Vec<Option<Evaluation>> {
        fleet
            .members
            .iter()
            .enumerate()
            .map(|(m, member)| {
                let search = RibbonSearch::new(member.scenario.search_settings.clone());
                let trace = search.run(evaluator.member_evaluator(m), fleet.spec.seed);
                trace.best_satisfying().cloned()
            })
            .collect()
    }

    /// Deterministic warm-start candidates derived from the dedicated baselines:
    ///
    /// 1. the all-dedicated base (the baselines concatenated, shared slice empty);
    /// 2. a **fully pooled ladder** — every shared-family instance of every sharing
    ///    member moved into the shared slice at once, then `r = 0..=3` instances shaved
    ///    off the largest shared count (the cost-saving direction statistical
    ///    multiplexing of the merged streams is expected to cover);
    /// 3. a **half-pooled** split (each sharing member keeps half its shared-family
    ///    instances) and its one-instance-cheaper variant.
    ///
    /// All deterministic, so the joint search trace is reproducible under a fixed seed.
    fn pooling_candidates(
        &self,
        fleet: &Fleet,
        evaluator: &FleetEvaluator,
        baselines: &[Option<Evaluation>],
        require_dedicated: bool,
    ) -> Vec<Vec<u32>> {
        let base_slices: Vec<Vec<u32>> = baselines
            .iter()
            .enumerate()
            .map(|(m, b)| match b {
                Some(e) => e.config.clone(),
                None => evaluator.member_evaluator(m).bounds().to_vec(),
            })
            .collect();
        let shared_dims = fleet.shared_bounds.len();
        let mut candidates = vec![evaluator.assemble(&base_slices, &vec![0; shared_dims])];
        if shared_dims == 0 {
            return candidates;
        }

        // Per shared family: where each sharing member holds instances of it.
        let positions: Vec<Vec<Option<usize>>> = fleet
            .shared_types
            .iter()
            .map(|&ty| {
                fleet
                    .members
                    .iter()
                    .map(|member| {
                        (member.share_weight > 0.0)
                            .then(|| {
                                member
                                    .scenario
                                    .workload
                                    .diverse_pool
                                    .iter()
                                    .position(|&t| t == ty)
                            })
                            .flatten()
                    })
                    .collect()
            })
            .collect();
        let totals: Vec<u32> = positions
            .iter()
            .map(|pos| {
                pos.iter()
                    .enumerate()
                    .filter_map(|(m, p)| p.map(|j| base_slices[m][j]))
                    .sum()
            })
            .collect();
        if totals.iter().all(|&t| t == 0) {
            return candidates;
        }

        // Removes `count` instances of shared family `sf` from the sharing members,
        // taking from the member with the most left (ties: lowest index).
        let remove_units = |slices: &mut [Vec<u32>], sf: usize, count: u32| {
            for _ in 0..count {
                let victim = positions[sf]
                    .iter()
                    .enumerate()
                    .filter_map(|(m, p)| p.map(|j| (m, j)))
                    .max_by_key(|&(m, j)| (slices[m][j], usize::MAX - m));
                match victim {
                    Some((m, j)) if slices[m][j] > 0 => slices[m][j] -= 1,
                    _ => break,
                }
            }
        };
        // Serve mode keeps a reconfigurable dedicated slice per member: a fully pooled
        // member would leave its controller nothing to resize, so candidates restore
        // one instance of the member's preferred type to an emptied slice.
        let member_bounds: Vec<Vec<u32>> = (0..fleet.members.len())
            .map(|m| evaluator.member_evaluator(m).bounds().to_vec())
            .collect();
        let fix_dedicated = |slices: &mut [Vec<u32>]| {
            if !require_dedicated {
                return;
            }
            for (m, slice) in slices.iter_mut().enumerate() {
                if slice.iter().all(|&c| c == 0) {
                    if let Some(j) = member_bounds[m].iter().position(|&b| b > 0) {
                        slice[j] = 1;
                    }
                }
            }
        };
        let push = |candidates: &mut Vec<Vec<u32>>, cand: Vec<u32>| {
            if !candidates.contains(&cand) {
                candidates.push(cand);
            }
        };

        // Fully pooled ladder.
        let pooled_slices = {
            let mut slices = base_slices.clone();
            for (sf, &total) in totals.iter().enumerate() {
                remove_units(&mut slices, sf, total);
            }
            fix_dedicated(&mut slices);
            slices
        };
        let full_shared: Vec<u32> = totals
            .iter()
            .zip(&fleet.shared_bounds)
            .map(|(&t, &b)| t.min(b))
            .collect();
        for r in 0..=3u32 {
            let mut shared = full_shared.clone();
            for _ in 0..r {
                // Shave from the largest shared count (ties: lowest family index).
                if let Some(i) = (0..shared.len())
                    .filter(|&i| shared[i] > 0)
                    .max_by_key(|&i| (shared[i], usize::MAX - i))
                {
                    shared[i] -= 1;
                } else {
                    break;
                }
            }
            push(&mut candidates, evaluator.assemble(&pooled_slices, &shared));
        }

        // Full consolidation ladder: members whose pools overlap the shared families
        // go entirely shared — their *non-shared* leftovers are dropped too. An idle
        // slow instance in a dedicated lane can be a latency trap (it grabs a heavy
        // batch a premium shared slot would have served faster after a short queue),
        // so "pool and shed the tail" is a distinct candidate family from "pool".
        let consolidated_slices: Vec<Vec<u32>> = {
            let mut slices: Vec<Vec<u32>> = base_slices
                .iter()
                .enumerate()
                .map(|(m, slice)| {
                    let overlaps = positions.iter().any(|pos| pos[m].is_some());
                    if overlaps {
                        vec![0; slice.len()]
                    } else {
                        slice.clone()
                    }
                })
                .collect();
            fix_dedicated(&mut slices);
            slices
        };
        for r in 0..=3u32 {
            let mut shared = full_shared.clone();
            for _ in 0..r {
                if let Some(i) = (0..shared.len())
                    .filter(|&i| shared[i] > 0)
                    .max_by_key(|&i| (shared[i], usize::MAX - i))
                {
                    shared[i] -= 1;
                } else {
                    break;
                }
            }
            push(
                &mut candidates,
                evaluator.assemble(&consolidated_slices, &shared),
            );
        }

        // Half-pooled split (+ one-cheaper variant).
        let mut half_slices = base_slices.clone();
        let mut half_shared = vec![0u32; shared_dims];
        for sf in 0..shared_dims {
            let moved = totals[sf] - totals[sf] / 2;
            remove_units(&mut half_slices, sf, moved);
            half_shared[sf] = moved.min(fleet.shared_bounds[sf]);
        }
        fix_dedicated(&mut half_slices);
        push(
            &mut candidates,
            evaluator.assemble(&half_slices, &half_shared),
        );
        if let Some(i) = (0..half_shared.len())
            .filter(|&i| half_shared[i] > 0)
            .max_by_key(|&i| (half_shared[i], usize::MAX - i))
        {
            half_shared[i] -= 1;
            push(
                &mut candidates,
                evaluator.assemble(&half_slices, &half_shared),
            );
        }
        candidates
    }

    /// The joint search loop: deterministic warm-start candidates, a greedy pooling
    /// descent, then ask/tell Bayesian-Optimization refinement with the remaining
    /// budget (batched by `fleet.search.batch`; the default `batch = 1` performs the
    /// historical suggest/observe sequence bit for bit). For a single-member fleet with
    /// no shared families (no warm candidates, no descent) this performs exactly the
    /// operation sequence of [`RibbonSearch::run`] on the member's evaluator.
    ///
    /// The BO refinement stage enumerates the joint lattice; past
    /// [`JOINT_BO_LATTICE_CAP`] points that is not tractable (hundreds of megabytes of
    /// candidate storage), so oversized cross-product spaces skip the BO stage and the
    /// deterministic candidates + descent carry the search alone. The returned flag
    /// records that skip so the report never reads as "refined" when it wasn't.
    fn joint_search(
        &self,
        fleet: &Fleet,
        evaluator: &FleetEvaluator,
        warm: &[Vec<u32>],
        require_dedicated: bool,
    ) -> (Vec<FleetEvaluation>, bool) {
        let settings = &fleet.search;
        let bounds = evaluator.bounds().to_vec();
        let lattice_points: u64 = bounds
            .iter()
            .map(|&b| b as u64 + 1)
            .product::<u64>()
            .saturating_sub(1);
        let bo_refinement_skipped = lattice_points > JOINT_BO_LATTICE_CAP;
        let mut bo = (!bo_refinement_skipped).then(|| {
            BoOptimizer::new(
                ConfigLattice::new(bounds.clone()),
                BoSettings {
                    initial_samples: settings.initial_samples,
                    acquisition: settings.acquisition,
                    fit: settings.fit.clone(),
                    reuse_surrogate: settings.reuse_surrogate,
                    scan_threads: settings.scan_threads,
                },
            )
        });
        let mut rng = StdRng::seed_from_u64(fleet.spec.seed);
        let mut trace: Vec<FleetEvaluation> = Vec::new();
        let mut explored: std::collections::BTreeSet<Vec<u32>> = std::collections::BTreeSet::new();

        let evaluate_and_record =
            |config: Vec<u32>,
             bo: &mut Option<BoOptimizer>,
             explored: &mut std::collections::BTreeSet<Vec<u32>>,
             trace: &mut Vec<FleetEvaluation>| {
                let eval = evaluator.evaluate(&config);
                explored.insert(config.clone());
                let violates_badly = eval.per_model.iter().enumerate().any(|(m, e)| {
                    e.satisfaction_rate < evaluator.member_target_rate(m) - settings.prune_threshold
                });
                if let Some(bo) = bo {
                    // `tell` mirrors the historical observe + prune sequence exactly,
                    // and also settles the candidate if it is in flight from `ask`.
                    let _ = bo.tell(
                        Outcome::new(config, eval.objective)
                            .with_prunes(violates_badly, eval.meets_qos),
                    );
                }
                trace.push(eval);
            };
        let in_lattice = |cand: &[u32]| {
            cand.len() == bounds.len()
                && cand.iter().zip(&bounds).all(|(&c, &b)| c <= b)
                && cand.iter().any(|&c| c > 0)
        };

        // Warm candidates are independent: prefetch them through the parallel batch
        // evaluator (order-preserving, bit-identical to serial — the contract
        // `tests/parallel_evaluator.rs` pins for the single-model engine), then record
        // serially so the trace and BO observation order are unchanged.
        let eligible: Vec<Vec<u32>> = warm
            .iter()
            .filter(|c| in_lattice(c))
            .take(settings.max_evaluations)
            .cloned()
            .collect();
        evaluator.evaluate_many(&eligible);
        for cand in warm {
            if trace.len() >= settings.max_evaluations {
                break;
            }
            if in_lattice(cand) && !explored.contains(cand) {
                evaluate_and_record(cand.clone(), &mut bo, &mut explored, &mut trace);
            }
        }

        // Greedy pooling descent (multi-model fleets only): from the cheapest
        // satisfying allocation so far, try every single-instance removal, keep the
        // cheapest that still satisfies every member, repeat. This shaves the
        // capacity the pooled streams no longer need (the leftover a static candidate
        // list cannot anticipate); every evaluation also feeds the BO surrogate.
        if !warm.is_empty() {
            // Cost ties (within a float tolerance) break toward the allocation with
            // the most shared capacity: a cost-neutral pooled candidate has downhill
            // room a tight all-dedicated one does not.
            let cheapest_satisfying = |trace: &[FleetEvaluation]| {
                trace
                    .iter()
                    .filter(|e| e.meets_qos)
                    .min_by(|a, b| {
                        if (a.total_hourly_cost - b.total_hourly_cost).abs() <= 1e-9 {
                            let sa: u32 = a.shared_config.iter().sum();
                            let sb: u32 = b.shared_config.iter().sum();
                            sb.cmp(&sa)
                        } else {
                            a.total_hourly_cost
                                .partial_cmp(&b.total_hourly_cost)
                                .unwrap()
                        }
                    })
                    .map(|e| (e.config.clone(), e.total_hourly_cost))
            };
            while trace.len() < settings.max_evaluations {
                let Some((current, current_cost)) = cheapest_satisfying(&trace) else {
                    break;
                };
                // One descent round = up to dim(lattice) independent single-removal
                // candidates: prefetch the round through the parallel batch evaluator,
                // then record serially (same evaluations, same order, same bits).
                let round: Vec<Vec<u32>> = (0..current.len())
                    .filter(|&d| current[d] > 0)
                    .map(|d| {
                        let mut cand = current.clone();
                        cand[d] -= 1;
                        cand
                    })
                    .filter(|cand| !cand.iter().all(|&c| c == 0) && !explored.contains(cand))
                    .filter(|cand| {
                        !require_dedicated
                            || (0..evaluator.num_members())
                                .all(|m| cand[evaluator.member_range(m)].iter().any(|&c| c > 0))
                    })
                    .take(settings.max_evaluations - trace.len())
                    .collect();
                evaluator.evaluate_many(&round);
                for d in 0..current.len() {
                    if trace.len() >= settings.max_evaluations {
                        break;
                    }
                    if current[d] == 0 {
                        continue;
                    }
                    let mut cand = current.clone();
                    cand[d] -= 1;
                    if cand.iter().all(|&c| c == 0) || explored.contains(&cand) {
                        continue;
                    }
                    // Serve mode never descends to an allocation that leaves a member
                    // without a reconfigurable dedicated slice.
                    if require_dedicated
                        && (0..evaluator.num_members())
                            .any(|m| cand[evaluator.member_range(m)].iter().all(|&c| c == 0))
                    {
                        continue;
                    }
                    evaluate_and_record(cand, &mut bo, &mut explored, &mut trace);
                }
                match cheapest_satisfying(&trace) {
                    Some((_, cost)) if cost < current_cost => {}
                    _ => break, // no single removal survives: local optimum reached
                }
            }
        }

        // Ask/tell BO refinement: each round asks a batch of `q` diverse candidates
        // (local-penalty picks), prefetches them through the parallel fleet evaluator,
        // then records serially — so the trace and surrogate order are deterministic.
        let q = settings.batch.max(1);
        while trace.len() < settings.max_evaluations {
            let Some(b) = bo.as_mut() else {
                break; // lattice over the cap: no BO refinement stage (flag recorded)
            };
            let want = q.min(settings.max_evaluations - trace.len());
            let asked = match b.ask(&mut rng, want) {
                Ok(batch) if !batch.is_empty() => batch,
                _ => break,
            };
            evaluator.evaluate_many(&asked);
            for config in asked {
                evaluate_and_record(config, &mut bo, &mut explored, &mut trace);
            }
        }
        (trace, bo_refinement_skipped)
    }

    fn plan_internal(
        &self,
        fleet: &Fleet,
        evaluator: &FleetEvaluator,
        require_dedicated: bool,
    ) -> Result<PlanOutcome, ScenarioError> {
        let multi = fleet.members.len() > 1 || fleet.has_shared();
        // Multi-model fleets always search the per-member optima — they seed the
        // pooling warm start — but `baseline = false` suppresses the comparison in the
        // report (see the field docs on `FleetSpec::baseline`).
        let mut baselines = if fleet.spec.baseline || multi {
            self.member_baselines(fleet, evaluator)
        } else {
            vec![None; fleet.members.len()]
        };
        let warm = if multi {
            self.pooling_candidates(fleet, evaluator, &baselines, require_dedicated)
        } else {
            Vec::new()
        };
        if !fleet.spec.baseline {
            baselines = vec![None; fleet.members.len()];
        }
        let (trace, bo_refinement_skipped) =
            self.joint_search(fleet, evaluator, &warm, require_dedicated);
        let best = trace
            .iter()
            .filter(|e| e.meets_qos)
            .filter(|e| {
                !require_dedicated
                    || e.per_model
                        .iter()
                        .all(|pe| pe.config.iter().any(|&c| c > 0))
            })
            .min_by(|a, b| {
                a.total_hourly_cost
                    .partial_cmp(&b.total_hourly_cost)
                    .unwrap()
            })
            .cloned()
            .ok_or_else(|| {
                ScenarioError::Run(format!(
                    "no allocation meeting every model's QoS within {} joint evaluations",
                    trace.len()
                ))
            })?;
        Ok(PlanOutcome {
            trace,
            best,
            baselines,
            bo_refinement_skipped,
        })
    }

    fn build_report(&self, fleet: &Fleet, outcome: &PlanOutcome) -> FleetReport {
        let best = &outcome.best;
        let total_shared_q: usize = best.shared_queries.iter().sum();
        let shared_pool = if fleet.shared_types.is_empty() {
            "none".to_string()
        } else {
            PoolSpec::from_counts(&fleet.shared_types, &best.shared_config).describe()
        };
        let models: Vec<FleetMemberReport> = fleet
            .members
            .iter()
            .enumerate()
            .map(|(m, member)| {
                let e = &best.per_model[m];
                let shared_share = if total_shared_q > 0 {
                    best.shared_hourly_cost * best.shared_queries[m] as f64 / total_shared_q as f64
                } else {
                    0.0
                };
                let attributed = e.hourly_cost + shared_share;
                let baseline = outcome.baselines[m].as_ref();
                FleetMemberReport {
                    name: member.name.clone(),
                    model: member.scenario.workload.model.name().to_string(),
                    qos: member.scenario.policy.describe(),
                    weight: member.weight,
                    dedicated_config: e.config.clone(),
                    pool: e.pool.describe(),
                    dedicated_hourly_cost: e.hourly_cost,
                    attributed_hourly_cost: attributed,
                    satisfaction_rate: e.satisfaction_rate,
                    meets_qos: e.meets_qos,
                    shared_queries: best.shared_queries[m],
                    baseline_config: baseline.map(|b| b.config.clone()),
                    baseline_pool: baseline.map(|b| b.pool.describe()),
                    baseline_hourly_cost: baseline.map(|b| b.hourly_cost),
                    saving_percent: baseline
                        .map(|b| CostModel::saving_percent(b.hourly_cost, attributed)),
                    serve: None,
                }
            })
            .collect();
        let baseline_total = outcome
            .baselines
            .iter()
            .map(|b| b.as_ref().map(|e| e.hourly_cost))
            .sum::<Option<f64>>();
        // Recompose the total from the same per-member terms the baseline sums, so a
        // best allocation that IS the dedicated baseline compares exactly equal to it.
        let total_hourly_cost =
            best.per_model.iter().map(|e| e.hourly_cost).sum::<f64>() + best.shared_hourly_cost;
        FleetReport {
            fleet: fleet.spec.name.clone(),
            planner: self.name().to_string(),
            mode: fleet.spec.mode,
            seed: fleet.spec.seed,
            models,
            shared_config: best.shared_config.clone(),
            shared_pool,
            shared_hourly_cost: best.shared_hourly_cost,
            total_hourly_cost,
            baseline_total_hourly_cost: baseline_total,
            saving_percent: baseline_total.map(|b| CostModel::saving_percent(b, total_hourly_cost)),
            bo_refinement_skipped: outcome.bo_refinement_skipped,
            evaluations: outcome.trace.len(),
            violations: outcome.trace.iter().filter(|e| !e.meets_qos).count(),
            best: best.clone(),
            trace: outcome.trace.clone(),
            serve: None,
        }
    }
}

impl FleetPlanner for RibbonFleetPlanner {
    fn name(&self) -> &str {
        "RIBBON-FLEET"
    }

    fn plan(&self, fleet: &Fleet) -> Result<FleetReport, ScenarioError> {
        let evaluator = FleetEvaluator::new(fleet)?;
        let outcome = self.plan_internal(fleet, &evaluator, false)?;
        Ok(self.build_report(fleet, &outcome))
    }

    fn serve(&self, fleet: &Fleet) -> Result<FleetReport, ScenarioError> {
        serve_fleet(self, fleet)
    }
}

/// Runs the online fleet scenario for a planner: decide the initial allocation, stream
/// every member's traffic through the router, let per-member controllers reconfigure
/// their slices, and report per-member plus fleet-wide outcomes.
pub fn serve_fleet(
    planner: &RibbonFleetPlanner,
    fleet: &Fleet,
) -> Result<FleetReport, ScenarioError> {
    let evaluator = FleetEvaluator::new(fleet)?;
    let n = fleet.members.len();
    let seed = fleet.spec.seed;

    // --- 1. Initial deployment + one controller per dedicated slice. -----------------
    let mut controllers: Vec<Option<OnlineController>> = Vec::with_capacity(n);
    let outcome = if fleet.has_shared() {
        // The joint plan sizes dedicated slices AND the shared slice (every member
        // keeps a reconfigurable dedicated slice in serve mode); controllers are
        // seeded from the joint trace instead of a per-member bootstrap search.
        let planned = planner.plan_internal(fleet, &evaluator, true)?;
        for (m, member) in fleet.members.iter().enumerate() {
            let slice = planned.best.per_model[m].config.clone();
            let record: Vec<Evaluation> = planned
                .trace
                .iter()
                .map(|e| e.per_model[m].clone())
                .collect();
            let os = &member.scenario.online_settings;
            // The lane is planned to carry its plan-time share of the model's load;
            // the shared slice carries the rest.
            let planning_total = evaluator.member_evaluator(m).queries().len();
            let lane_fraction = if planning_total > 0 {
                (planning_total - planned.best.shared_queries[m].min(planning_total)) as f64
                    / planning_total as f64
            } else {
                1.0
            };
            controllers.push(Some(
                OnlineController::from_plan(
                    &member.scenario.workload,
                    os.controller.clone(),
                    seed,
                    member.scenario.policy.clone(),
                    record,
                    slice,
                    planned.best.per_model[m].clone(),
                    member.scenario.workload.qps * lane_fraction,
                )
                .with_tiers(member.scenario.tiers.clone()),
            ));
        }
        planned
    } else {
        // No shared slice: each member bootstraps exactly like single-model serving.
        for member in &fleet.members {
            let os = &member.scenario.online_settings;
            let controller = OnlineController::bootstrap_with_policy(
                &member.scenario.workload,
                &os.initial_search,
                os.controller.clone(),
                seed,
                member.scenario.policy.clone(),
            )
            .ok_or_else(|| {
                ScenarioError::Run(format!(
                    "{}: the initial search found no configuration meeting `{}` within {} \
                     evaluations",
                    member.name,
                    member.scenario.policy.describe(),
                    os.initial_search.max_evaluations
                ))
            })?;
            controllers.push(Some(controller.with_tiers(member.scenario.tiers.clone())));
        }
        // A joint evaluation of the bootstrapped deployment anchors the plan section of
        // the report (it does not influence serving).
        let slices: Vec<Vec<u32>> = controllers
            .iter()
            .map(|c| {
                c.as_ref()
                    .expect("all bootstrapped")
                    .current_config()
                    .to_vec()
            })
            .collect();
        let joint = evaluator.assemble(&slices, &vec![0u32; fleet.shared_bounds.len()]);
        let best = evaluator.evaluate(&joint);
        let baselines = if fleet.spec.baseline {
            planner.member_baselines(fleet, &evaluator)
        } else {
            vec![None; n]
        };
        PlanOutcome {
            trace: vec![best.clone()],
            best,
            baselines,
            bo_refinement_skipped: false,
        }
    };

    let init_slices: Vec<Vec<u32>> = (0..n)
        .map(|m| match &controllers[m] {
            Some(c) => c.current_config().to_vec(),
            None => outcome.best.per_model[m].config.clone(),
        })
        .collect();

    // --- 2. The fleet simulator over the merged traffic streams. ---------------------
    let profiles: Vec<ModelProfile> = fleet
        .members
        .iter()
        .map(|m| m.scenario.workload.profile())
        .collect();
    // Members with a variant palette time their lane dispatches by the palette's
    // latency model and get the deterministic per-lane variant router; variant-less
    // members keep the plain profile — the exact pre-variant code path.
    let variant_profiles: Vec<Option<VariantSetProfile>> = fleet
        .members
        .iter()
        .map(|m| {
            m.scenario
                .workload
                .has_variant_axis()
                .then(|| m.scenario.workload.variant_profile())
        })
        .collect();
    let model_configs: Vec<FleetModelConfig<'_>> = fleet
        .members
        .iter()
        .enumerate()
        .map(|(m, member)| {
            let os = &member.scenario.online_settings;
            FleetModelConfig {
                pool: member.scenario.workload.diverse_pool_spec(&init_slices[m]),
                profile: match &variant_profiles[m] {
                    Some(vp) => vp as &dyn LatencyModel,
                    None => &profiles[m],
                },
                target_latency_s: member.scenario.policy.deadline_s(),
                tail_percentile: member.scenario.policy.tail_percentile(),
                window: os.window,
                share_weight: if fleet.has_shared() {
                    member.share_weight
                } else {
                    0.0
                },
                spin_up_factor: os.spin_up_factor,
                variant_policy: variant_profiles[m]
                    .as_ref()
                    .map(|vp| VariantPolicy::new(vp.variants().len() as u32)),
                tiers: member.scenario.tiers.clone(),
            }
        })
        .collect();
    // Mirror `FleetSim::new`: an all-zero shared allocation is no shared slice at all.
    let shared_pool = fleet
        .has_shared()
        .then(|| PoolSpec::from_counts(&fleet.shared_types, &outcome.best.shared_config))
        .filter(|p| p.total_instances() > 0);

    let streams: Vec<Vec<Query>> = fleet
        .members
        .iter()
        .map(|member| {
            member
                .scenario
                .traffic
                .as_ref()
                .expect("serve-mode members compiled with traffic")
                .generate()
        })
        .collect();

    // --- 3. Partition into coupling groups, drive each group on its own worker. ------
    // Members only interact through the shared slice (see `ribbon_cloudsim::sharded`):
    // every member with a positive share weight joins one coupling group, everyone
    // else is a singleton, and each group runs its own `FleetSim` over the
    // deterministic merge of just its members' streams. The shard count only caps
    // worker threads — it never changes the partition — so serve results are identical
    // at every shard count, and a single-group fleet (e.g. all members sharing one
    // slice, or a lone member) reproduces the previous global drive bit for bit.
    let weights: Vec<f64> = model_configs.iter().map(|c| c.share_weight).collect();
    let groups = partition_groups(&weights, shared_pool.is_some());
    let t_last = streams
        .iter()
        .filter_map(|s| s.last())
        .map(|q| q.arrival)
        .fold(0.0, f64::max);
    let stream_queries: usize = streams.iter().map(Vec::len).sum();
    let shards = fleet
        .spec
        .shards
        .unwrap_or(if stream_queries >= LARGE_STREAM_QUERIES {
            default_threads()
        } else {
            1
        })
        .max(1);
    let shared_hourly = shared_pool.as_ref().map_or(0.0, |p| p.hourly_cost());

    let mut config_slots: Vec<Option<FleetModelConfig<'_>>> =
        model_configs.into_iter().map(Some).collect();
    let mut controller_slots = controllers;
    let tasks: Vec<GroupServeTask<'_>> = groups
        .iter()
        .map(|g| GroupServeTask {
            members: g.clone(),
            configs: g
                .iter()
                .map(|&m| config_slots[m].take().expect("each member in one group"))
                .collect(),
            // Only the coupled group dispatches to (and is simulated with) the shared
            // slice; its fleet-wide bill is added during recombination.
            shared: if g.len() > 1 || weights[g[0]] > 0.0 {
                shared_pool.clone()
            } else {
                None
            },
            controllers: g.iter().map(|&m| controller_slots[m].take()).collect(),
            streams: g.iter().map(|&m| streams[m].as_slice()).collect(),
        })
        .collect();

    let results = par_map_vec(tasks, shards, |task| drive_group(fleet, task, t_last));

    // Scatter group results back into global model slots.
    let mut member_windows: Vec<Vec<WindowStats>> = vec![Vec::new(); n];
    let mut num_complete = vec![0usize; n];
    let mut member_events: Vec<Vec<ReconfigEvent>> = vec![Vec::new(); n];
    let mut member_stats: Vec<Option<SimStats>> = vec![None; n];
    let mut shared_queries = vec![0usize; n];
    let mut member_variant_served: Vec<Vec<u64>> = vec![Vec::new(); n];
    let mut member_variant_switches: Vec<Vec<VariantSwitch>> = vec![Vec::new(); n];
    let mut lane_billing: Vec<Option<Vec<SlotBilling>>> = vec![None; n];
    let mut lane_timeline: Vec<Vec<(f64, f64)>> = vec![Vec::new(); n];
    let mut member_tier_totals: Vec<Vec<TierTotals>> = vec![Vec::new(); n];
    let mut controllers: Vec<Option<OnlineController>> = (0..n).map(|_| None).collect();
    let mut makespan = 0.0f64;
    let mut end_clock = 0.0f64;
    for (g, mut result) in groups.iter().zip(results) {
        makespan = makespan.max(result.makespan);
        end_clock = end_clock.max(result.end_clock);
        for (gi, &m) in g.iter().enumerate() {
            member_windows[m] = std::mem::take(&mut result.windows[gi]);
            num_complete[m] = result.num_complete[gi];
            member_events[m] = std::mem::take(&mut result.events[gi]);
            member_stats[m] = Some(result.stats[gi]);
            shared_queries[m] = result.shared_queries[gi];
            member_variant_served[m] = std::mem::take(&mut result.variant_served[gi]);
            member_variant_switches[m] = std::mem::take(&mut result.variant_switches[gi]);
            lane_billing[m] = result.lane_billing[gi].take();
            lane_timeline[m] = std::mem::take(&mut result.lane_timeline[gi]);
            member_tier_totals[m] = std::mem::take(&mut result.tier_totals[gi]);
            controllers[m] = result.controllers[gi].take();
        }
    }
    let member_stats: Vec<SimStats> = member_stats
        .into_iter()
        .map(|s| s.expect("every member driven"))
        .collect();

    // Global quantities, folded exactly as the global `FleetSim` computes them: lanes
    // in model order, then the shared slice (billed fleet-wide whether or not any
    // group dispatched to it). `cost_from_billing` replicates each lane's exact
    // mid-reconfiguration cost accounting bit for bit.
    let duration_s = makespan.max(end_clock);
    let cost_at = |t: f64| -> f64 {
        lane_billing
            .iter()
            .flatten()
            .map(|b| cost_from_billing(b, t))
            .sum::<f64>()
            + shared_hourly * t.max(0.0) / 3600.0
    };
    let total_cost_usd = cost_at(duration_s);
    let final_hourly_cost = lane_timeline
        .iter()
        .filter_map(|tl| tl.last())
        .map(|&(_, h)| h)
        .sum::<f64>()
        + shared_hourly;

    // Fleet-wide window cost fields. A single group carries them exactly as the global
    // drive wrote them; with several groups each group only saw its own lanes, so the
    // fields are reconstructed from the per-lane reconfiguration timelines: a window
    // reports the hourly cost of every pool change effective strictly before its end,
    // and samples accrued cost at its end (partial windows clamp to the run horizon) —
    // the same rules the global drive applies at close time.
    if groups.len() > 1 {
        for m in 0..n {
            for (i, w) in member_windows[m].iter_mut().enumerate() {
                let hourly: f64 = lane_timeline
                    .iter()
                    .filter_map(|tl| tl.iter().rev().find(|&&(at, _)| at < w.end_s))
                    .map(|&(_, h)| h)
                    .sum::<f64>()
                    + shared_hourly;
                let horizon = if i < num_complete[m] {
                    w.end_s
                } else {
                    w.end_s.min(duration_s)
                };
                w.pool_hourly_cost = hourly;
                w.cost_so_far_usd = cost_at(horizon);
            }
        }
    }

    // --- 4. Reports. ------------------------------------------------------------------
    let mut report = planner.build_report(fleet, &outcome);
    let mut total_queries = 0usize;
    let mut total_windows = 0usize;
    let mut total_events = 0usize;
    let mut total_variant_switches = 0usize;
    let mut total_admission_drops = 0u64;
    let mut total_preemptions = 0u64;
    for m in 0..n {
        let stats = &member_stats[m];
        total_queries += stats.num_queries;
        total_windows += member_windows[m].len();
        total_events += member_events[m].len();
        let events: Vec<EventReport> = member_events[m]
            .iter()
            .map(|e| EventReport {
                window_index: e.window_index,
                trigger: match e.trigger {
                    ReconfigTrigger::QosViolation => "qos-violation".to_string(),
                    ReconfigTrigger::OverProvisioning => "over-provisioning".to_string(),
                },
                config: e.config.clone(),
                planned_qps: e.planned_qps,
                transition_cost_usd: e.transition_cost_usd,
            })
            .collect();
        total_variant_switches += member_variant_switches[m].len();
        let tier_rows = fleet.members[m]
            .scenario
            .tiers
            .as_ref()
            .map(|set| TierReport::rows(set, &member_tier_totals[m]))
            .unwrap_or_default();
        total_admission_drops += tier_rows.iter().map(|t| t.admission_drops).sum::<u64>();
        total_preemptions += tier_rows.iter().map(|t| t.preemptions).sum::<u64>();
        report.models[m].serve = Some(FleetMemberServe {
            initial_config: init_slices[m].clone(),
            final_config: match &controllers[m] {
                Some(c) => c.current_config().to_vec(),
                None => init_slices[m].clone(),
            },
            windows: member_windows[m].len(),
            queries: stats.num_queries,
            shared_queries: shared_queries[m],
            satisfaction_rate: stats.satisfaction_rate(),
            events,
            variant_served: fleet.members[m]
                .scenario
                .workload
                .has_variant_axis()
                .then(|| std::mem::take(&mut member_variant_served[m])),
            variant_switches: std::mem::take(&mut member_variant_switches[m]),
            window_stats: std::mem::take(&mut member_windows[m]),
            tiers: tier_rows,
        });
    }
    report.serve = Some(FleetServeTotals {
        queries: total_queries,
        windows: total_windows,
        duration_s,
        total_cost_usd,
        mean_hourly_cost: mean_hourly_cost(total_cost_usd, duration_s),
        final_hourly_cost,
        reconfigurations: total_events,
        variant_switches: total_variant_switches,
        admission_drops: total_admission_drops,
        preemptions: total_preemptions,
    });
    Ok(report)
}

/// Streams above this size spread their coupling groups across all cores by default
/// (below it, thread setup outweighs the win); `fleet.shards` overrides either way.
const LARGE_STREAM_QUERIES: usize = 200_000;

/// One coupling group's serve work order: the members' lane configs, traffic slices,
/// and controllers, moved into the worker and returned with its results.
struct GroupServeTask<'a> {
    /// Global member indices, in model order.
    members: Vec<usize>,
    configs: Vec<FleetModelConfig<'a>>,
    /// The shared slice — only the coupled group carries one.
    shared: Option<PoolSpec>,
    controllers: Vec<Option<OnlineController>>,
    streams: Vec<&'a [Query]>,
}

/// One coupling group's serve outcome, indexed in group-member order.
struct GroupServe {
    controllers: Vec<Option<OnlineController>>,
    windows: Vec<Vec<WindowStats>>,
    /// Per member: how many leading windows are complete (the rest are partial).
    num_complete: Vec<usize>,
    events: Vec<Vec<ReconfigEvent>>,
    stats: Vec<SimStats>,
    shared_queries: Vec<usize>,
    variant_served: Vec<Vec<u64>>,
    variant_switches: Vec<Vec<VariantSwitch>>,
    lane_billing: Vec<Option<Vec<SlotBilling>>>,
    /// Per member lane: `(effective time, pool hourly cost after the change)`, seeded
    /// with the initial deployment and appended at every reconfiguration.
    lane_timeline: Vec<Vec<(f64, f64)>>,
    tier_totals: Vec<Vec<TierTotals>>,
    makespan: f64,
    end_clock: f64,
}

/// One member's lane hourly cost as currently deployed (0 when it has no lane).
fn lane_hourly(sim: &FleetSim<'_>, g: usize) -> f64 {
    sim.lane(g).map_or(0.0, |l| l.current_pool().hourly_cost())
}

/// Drives one coupling group through its own `FleetSim`: the same serve loop the
/// global drive ran, restricted to the group's merged stream, with per-query recording
/// off (constant memory — windows, counters, and satisfaction stay exact).
fn drive_group(fleet: &Fleet, task: GroupServeTask<'_>, t_last: f64) -> GroupServe {
    let k = task.members.len();
    let mut controllers = task.controllers;
    // Assigners are built before `FleetSim::new` consumes the configs; tagging the
    // merged stream per member in arrival order replays each member's stream in
    // member-local order — the exact sequence the plan-time assigner produced.
    let mut assigners = tier_assigners(&task.configs);
    let mut sim = FleetSim::new(task.configs, task.shared);
    sim.set_record_per_query(false);
    let mut windows: Vec<Vec<WindowStats>> = vec![Vec::new(); k];
    let mut events: Vec<Vec<ReconfigEvent>> = vec![Vec::new(); k];
    // Deferred retire phase of a make-before-break transition, per member.
    let mut pending: Vec<Option<(PoolSpec, f64, usize)>> = (0..k).map(|_| None).collect();
    let mut lane_cum: Vec<usize> = vec![0; k];
    let mut shared_cum: Vec<usize> = vec![0; k];
    let mut lane_timeline: Vec<Vec<(f64, f64)>> = (0..k)
        .map(|g| {
            sim.lane(g)
                .map(|l| vec![(0.0, l.current_pool().hourly_cost())])
                .unwrap_or_default()
        })
        .collect();

    let merged = merge_tagged_slices(&task.streams);
    let mut closed = Vec::new();
    for tq in &merged {
        for g in 0..k {
            if let Some((final_pool, apply_at, event_idx)) = pending[g].take() {
                if tq.query.arrival >= apply_at {
                    let rec = sim.reconfigure_model(g, &final_pool, apply_at);
                    lane_timeline[g].push((rec.at_s, lane_hourly(&sim, g)));
                    events[g][event_idx].completed = Some(rec);
                } else {
                    pending[g] = Some((final_pool, apply_at, event_idx));
                }
            }
        }
        let tq = tag_tier(tq, &mut assigners);
        sim.push_into(&tq, &mut closed);
        for (g, w) in closed.drain(..) {
            observe_window(
                fleet,
                task.members[g],
                g,
                &w,
                &mut sim,
                &mut controllers,
                &mut pending,
                &mut events,
                &mut lane_cum,
                &mut shared_cum,
                &mut lane_timeline,
            );
            windows[g].push(w);
        }
    }
    // Close the complete windows the global drive would have closed via other groups'
    // arrivals (none for a single-group fleet: its own last push already closed every
    // due window) and run the same controller observation over each. A pending retire
    // phase due by a drained window's end applies first, as the close-triggering
    // arrival would have applied it.
    for (g, w) in sim.drain_windows_until(t_last) {
        if let Some((final_pool, apply_at, event_idx)) = pending[g].take() {
            if apply_at <= w.end_s {
                let rec = sim.reconfigure_model(g, &final_pool, apply_at);
                lane_timeline[g].push((rec.at_s, lane_hourly(&sim, g)));
                events[g][event_idx].completed = Some(rec);
            } else {
                pending[g] = Some((final_pool, apply_at, event_idx));
            }
        }
        observe_window(
            fleet,
            task.members[g],
            g,
            &w,
            &mut sim,
            &mut controllers,
            &mut pending,
            &mut events,
            &mut lane_cum,
            &mut shared_cum,
            &mut lane_timeline,
        );
        windows[g].push(w);
    }
    for g in 0..k {
        if let Some((final_pool, apply_at, event_idx)) = pending[g].take() {
            let rec = sim.reconfigure_model(g, &final_pool, apply_at);
            lane_timeline[g].push((rec.at_s, lane_hourly(&sim, g)));
            events[g][event_idx].completed = Some(rec);
        }
    }
    let num_complete: Vec<usize> = windows.iter().map(Vec::len).collect();
    for (g, w) in sim.finish_windows() {
        windows[g].push(w);
    }
    GroupServe {
        makespan: sim.makespan(),
        end_clock: sim.clock(),
        stats: (0..k).map(|g| sim.stats(g)).collect(),
        shared_queries: (0..k).map(|g| sim.shared_queries(g)).collect(),
        variant_served: (0..k).map(|g| sim.variant_served(g)).collect(),
        variant_switches: (0..k).map(|g| sim.variant_switches(g).to_vec()).collect(),
        lane_billing: (0..k).map(|g| sim.lane_billing(g)).collect(),
        tier_totals: (0..k).map(|g| sim.tier_totals(g).to_vec()).collect(),
        controllers,
        windows,
        num_complete,
        events,
        lane_timeline,
    }
}

/// One closed window's controller step: scale the offered load by the lane's serve
/// share, let the member's controller observe it, and apply any planned slice
/// reconfiguration (make-before-break, with a deferred retire phase when the new and
/// old slices overlap on neither side).
#[allow(clippy::too_many_arguments)]
fn observe_window(
    fleet: &Fleet,
    member: usize,
    g: usize,
    w: &WindowStats,
    sim: &mut FleetSim<'_>,
    controllers: &mut [Option<OnlineController>],
    pending: &mut [Option<(PoolSpec, f64, usize)>],
    events: &mut [Vec<ReconfigEvent>],
    lane_cum: &mut [usize],
    shared_cum: &mut [usize],
    lane_timeline: &mut [Vec<(f64, f64)>],
) {
    let end_s = w.end_s;
    // The lane's share of this window's traffic (1.0 without a shared slice; for a
    // single-member no-shared fleet the scaled window is bit-identical to the
    // original, so the controller behaves exactly like serve_online's).
    let lane_now = sim.lane(g).map_or(0, |l| l.num_queries());
    let shared_now = sim.shared_queries(g);
    let lane_delta = lane_now - lane_cum[g];
    let shared_delta = shared_now - shared_cum[g];
    lane_cum[g] = lane_now;
    shared_cum[g] = shared_now;
    let lane_share = if lane_delta + shared_delta > 0 {
        lane_delta as f64 / (lane_delta + shared_delta) as f64
    } else {
        1.0
    };
    let mut controller_view = w.clone();
    controller_view.arrival_qps = w.arrival_qps * lane_share;
    if let Some(controller) = controllers[g].as_mut() {
        if let Some(plan) = controller.observe(&controller_view) {
            // A new decision supersedes any not-yet-completed retire phase.
            pending[g] = None;
            let workload = &fleet.members[member].scenario.workload;
            let new_pool = workload.diverse_pool_spec(&plan.config);
            let old_counts = sim
                .lane(g)
                .expect("controlled members have a lane")
                .current_pool()
                .counts
                .clone();
            let union: Vec<u32> = plan
                .config
                .iter()
                .zip(&old_counts)
                .map(|(&a, &b)| a.max(b))
                .collect();
            let two_phase = union != plan.config && union != old_counts;
            let first_pool = if two_phase {
                workload.diverse_pool_spec(&union)
            } else {
                new_pool.clone()
            };
            let applied = sim.reconfigure_model(g, &first_pool, end_s);
            lane_timeline[g].push((applied.at_s, lane_hourly(sim, g)));
            let transition_cost_usd = transition_overlap_cost(
                &applied.old_pool,
                &new_pool,
                applied.ready_at_s - applied.at_s,
            );
            if two_phase {
                pending[g] = Some((new_pool, applied.ready_at_s, events[g].len()));
            }
            events[g].push(ReconfigEvent {
                trigger: plan.trigger,
                window_index: plan.window_index,
                planned_qps: plan.planned_qps,
                config: plan.config,
                applied,
                completed: None,
                transition_cost_usd,
            });
        }
    }
}

fn u32s(values: &[u32]) -> Value {
    Value::Array(values.iter().map(|&v| Value::from(v)).collect())
}

impl FleetReport {
    /// Serializes the report to a value tree (for JSON output via the CLI's `--out`).
    pub fn to_value(&self) -> Value {
        let mut root = Value::table();
        root.insert("fleet", Value::from(self.fleet.as_str()));
        root.insert("planner", Value::from(self.planner.as_str()));
        root.insert("mode", Value::from(self.mode.name()));
        root.insert("seed", Value::from(self.seed));
        root.insert("shared_config", u32s(&self.shared_config));
        root.insert("shared_pool", Value::from(self.shared_pool.as_str()));
        root.insert("shared_hourly_cost", Value::from(self.shared_hourly_cost));
        root.insert("total_hourly_cost", Value::from(self.total_hourly_cost));
        if let Some(b) = self.baseline_total_hourly_cost {
            root.insert("baseline_total_hourly_cost", Value::from(b));
        }
        if let Some(s) = self.saving_percent {
            root.insert("saving_percent", Value::from(s));
        }
        root.insert(
            "bo_refinement_skipped",
            Value::from(self.bo_refinement_skipped),
        );
        root.insert("evaluations", Value::from(self.evaluations));
        root.insert("violations", Value::from(self.violations));

        let models: Vec<Value> = self
            .models
            .iter()
            .map(|m| {
                let mut t = Value::table();
                t.insert("name", Value::from(m.name.as_str()));
                t.insert("model", Value::from(m.model.as_str()));
                t.insert("qos", Value::from(m.qos.as_str()));
                t.insert("weight", Value::from(m.weight));
                t.insert("dedicated_config", u32s(&m.dedicated_config));
                t.insert("pool", Value::from(m.pool.as_str()));
                t.insert(
                    "dedicated_hourly_cost",
                    Value::from(m.dedicated_hourly_cost),
                );
                t.insert(
                    "attributed_hourly_cost",
                    Value::from(m.attributed_hourly_cost),
                );
                t.insert("satisfaction_rate", Value::from(m.satisfaction_rate));
                t.insert("meets_qos", Value::from(m.meets_qos));
                t.insert("shared_queries", Value::from(m.shared_queries));
                if let Some(c) = &m.baseline_config {
                    t.insert("baseline_config", u32s(c));
                }
                if let Some(p) = &m.baseline_pool {
                    t.insert("baseline_pool", Value::from(p.as_str()));
                }
                if let Some(c) = m.baseline_hourly_cost {
                    t.insert("baseline_hourly_cost", Value::from(c));
                }
                if let Some(s) = m.saving_percent {
                    t.insert("saving_percent", Value::from(s));
                }
                if let Some(serve) = &m.serve {
                    let mut st = Value::table();
                    st.insert("initial_config", u32s(&serve.initial_config));
                    st.insert("final_config", u32s(&serve.final_config));
                    st.insert("windows", Value::from(serve.windows));
                    st.insert("queries", Value::from(serve.queries));
                    st.insert("shared_queries", Value::from(serve.shared_queries));
                    if let Some(rate) = serve.satisfaction_rate {
                        st.insert("satisfaction_rate", Value::from(rate));
                    }
                    let events: Vec<Value> = serve
                        .events
                        .iter()
                        .map(|e| {
                            let mut et = Value::table();
                            et.insert("window", Value::from(e.window_index));
                            et.insert("trigger", Value::from(e.trigger.as_str()));
                            et.insert("config", u32s(&e.config));
                            et.insert("planned_qps", Value::from(e.planned_qps));
                            et.insert("transition_cost_usd", Value::from(e.transition_cost_usd));
                            et
                        })
                        .collect();
                    st.insert("events", Value::Array(events));
                    if let Some(served) = &serve.variant_served {
                        st.insert(
                            "variant_served",
                            Value::Array(served.iter().map(|&q| Value::from(q)).collect()),
                        );
                    }
                    if !serve.tiers.is_empty() {
                        st.insert(
                            "tiers",
                            Value::Array(serve.tiers.iter().map(TierReport::to_value).collect()),
                        );
                    }
                    if !serve.variant_switches.is_empty() {
                        let switches: Vec<Value> = serve
                            .variant_switches
                            .iter()
                            .map(|s| {
                                let mut vt = Value::table();
                                vt.insert("at_s", Value::from(s.at_s));
                                vt.insert("from", Value::from(s.from));
                                vt.insert("to", Value::from(s.to));
                                vt
                            })
                            .collect();
                        st.insert("variant_switches", Value::Array(switches));
                    }
                    t.insert("serve", st);
                }
                t
            })
            .collect();
        root.insert("models", Value::Array(models));

        if let Some(serve) = &self.serve {
            let mut st = Value::table();
            st.insert("queries", Value::from(serve.queries));
            st.insert("windows", Value::from(serve.windows));
            st.insert("duration_s", Value::from(serve.duration_s));
            st.insert("total_cost_usd", Value::from(serve.total_cost_usd));
            st.insert("mean_hourly_cost", Value::from(serve.mean_hourly_cost));
            st.insert("final_hourly_cost", Value::from(serve.final_hourly_cost));
            st.insert("reconfigurations", Value::from(serve.reconfigurations));
            if serve.variant_switches > 0 {
                st.insert("variant_switches", Value::from(serve.variant_switches));
            }
            if serve.admission_drops > 0 {
                st.insert("admission_drops", Value::from(serve.admission_drops));
            }
            if serve.preemptions > 0 {
                st.insert("preemptions", Value::from(serve.preemptions));
            }
            root.insert("serve", st);
        }
        root
    }

    /// Serializes the report as pretty JSON.
    pub fn to_json_string(&self) -> String {
        ribbon_spec::json::to_string(&self.to_value())
    }

    /// A compact human summary for terminal output.
    pub fn summary_lines(&self) -> Vec<String> {
        let mut lines = vec![format!(
            "fleet {} | planner {} | {} | {} model(s) | seed {}",
            self.fleet,
            self.planner,
            self.mode.name(),
            self.models.len(),
            self.seed
        )];
        let mut plan_line = format!(
            "  plan: total ${:.2}/hr (shared {} at ${:.2}/hr) after {} evaluations ({} violating)",
            self.total_hourly_cost,
            if self.shared_pool == "empty" {
                "none".to_string()
            } else {
                self.shared_pool.clone()
            },
            self.shared_hourly_cost,
            self.evaluations,
            self.violations
        );
        if let (Some(b), Some(s)) = (self.baseline_total_hourly_cost, self.saving_percent) {
            plan_line.push_str(&format!(
                "; dedicated-pools baseline ${b:.2}/hr -> saving {s:.1}%"
            ));
        }
        if self.bo_refinement_skipped {
            plan_line.push_str("; BO refinement SKIPPED (joint lattice over cap)");
        }
        lines.push(plan_line);
        for m in &self.models {
            let mut line = format!(
                "    {}: {} at ${:.2}/hr attributed (qos {} -> rate {:.4}{})",
                m.name,
                if m.pool == "empty" {
                    "shared-only"
                } else {
                    &m.pool
                },
                m.attributed_hourly_cost,
                m.qos,
                m.satisfaction_rate,
                if m.meets_qos { ", met" } else { ", VIOLATED" }
            );
            if let (Some(b), Some(s)) = (m.baseline_hourly_cost, m.saving_percent) {
                line.push_str(&format!("; baseline ${b:.2}/hr -> saving {s:.1}%"));
            }
            lines.push(line);
            if let Some(serve) = &m.serve {
                lines.push(format!(
                    "      serve: {} queries ({} shared) in {} windows, satisfaction {}, \
                     {} reconfiguration(s)",
                    serve.queries,
                    serve.shared_queries,
                    serve.windows,
                    serve
                        .satisfaction_rate
                        .map_or("n/a".to_string(), |r| format!("{r:.4}")),
                    serve.events.len()
                ));
                for t in &serve.tiers {
                    lines.push(format!(
                        "        tier {} ({}): {} served, satisfaction {}, {} dropped, \
                         {} preemption(s)",
                        t.name,
                        t.class,
                        t.served,
                        t.satisfaction_rate
                            .map_or("n/a".to_string(), |r| format!("{r:.4}")),
                        t.admission_drops,
                        t.preemptions
                    ));
                }
                for e in &serve.events {
                    lines.push(format!(
                        "        w{} {} -> {:?} (planned {:.0} qps, transition ~${:.4})",
                        e.window_index, e.trigger, e.config, e.planned_qps, e.transition_cost_usd
                    ));
                }
                if let Some(served) = &serve.variant_served {
                    lines.push(format!(
                        "      variants: served per palette index {:?}, {} switch(es)",
                        served,
                        serve.variant_switches.len()
                    ));
                }
            }
        }
        if let Some(serve) = &self.serve {
            lines.push(format!(
                "  serve totals: {} queries in {} windows over {:.0} s, total ${:.4} \
                 (mean ${:.2}/hr), {} reconfiguration(s)",
                serve.queries,
                serve.windows,
                serve.duration_s,
                serve.total_cost_usd,
                serve.mean_hourly_cost,
                serve.reconfigurations
            ));
        }
        lines
    }
}
