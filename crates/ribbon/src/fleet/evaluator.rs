//! Joint evaluation of fleet allocations.
//!
//! A *joint allocation* is one flat vector over the fleet's allocation lattice:
//!
//! ```text
//! [ member0 dedicated slice | member1 dedicated slice | … | shared slice ]
//! ```
//!
//! Each member slice counts instances of that member's diverse-pool types; the shared
//! slice counts instances of the fleet's shared families, usable by every member with a
//! positive `share_weight`. Evaluating an allocation answers: does **every** model meet
//! its QoS on its own traffic, and what does the whole fleet cost per hour?
//!
//! Two evaluation paths, chosen per allocation:
//!
//! * **fully dedicated** (shared slice all zero) — each member is evaluated by its own
//!   [`ConfigEvaluator`] (same stream, same cache, bit-identical to a single-model run);
//! * **shared slots in play** — the members' planning streams are merged by arrival
//!   time and driven through the [`FleetSim`] router, so cross-model contention on the
//!   shared slots is actually simulated, not approximated.
//!
//! The joint objective is Eq. 2 lifted to a fleet: any allocation violating *some*
//! member's QoS scores below ½ (graded by the worst member's shortfall), every
//! allocation satisfying *all* members scores `½ + ½·(1 − cost/max_cost)` over the
//! **total** fleet cost. For a single-member fleet with no shared families this is
//! bit-identical to [`RibbonObjective`](crate::objective::RibbonObjective).

use crate::evaluator::{ConfigEvaluator, Evaluation};
use crate::fleet::Fleet;
use crate::scenario::ScenarioError;
use parking_lot::Mutex;
use ribbon_cloudsim::router::{FleetModelConfig, FleetSim, TaggedQuery};
use ribbon_cloudsim::{parallel, InstanceType, PoolSpec, QosEvidence, WindowConfig};
use ribbon_models::ModelProfile;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The outcome of evaluating one joint allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetEvaluation {
    /// The flat joint allocation.
    pub config: Vec<u32>,
    /// Per-member evaluations (each `config` field is that member's dedicated slice).
    pub per_model: Vec<Evaluation>,
    /// The shared slice (empty when the fleet declares no shared families).
    pub shared_config: Vec<u32>,
    /// Hourly cost of the shared slice.
    pub shared_hourly_cost: f64,
    /// Total fleet hourly cost (dedicated slices + shared slice).
    pub total_hourly_cost: f64,
    /// Per-member count of planning queries served by the shared slice (all zero on
    /// the fully-dedicated path).
    pub shared_queries: Vec<usize>,
    /// Whether every member meets its QoS.
    pub meets_qos: bool,
    /// The joint Eq. 2 objective value.
    pub objective: f64,
}

struct MemberState {
    evaluator: ConfigEvaluator,
    profile: ModelProfile,
    share_weight: f64,
    target_rate: f64,
}

/// Evaluates joint allocations for one fleet. Construction builds every member's
/// [`ConfigEvaluator`] (streams, bounds probing) and pre-merges the planning streams.
pub struct FleetEvaluator {
    members: Vec<MemberState>,
    shared_types: Vec<InstanceType>,
    shared_bounds: Vec<u32>,
    bounds: Vec<u32>,
    offsets: Vec<Range<usize>>,
    prices: Vec<f64>,
    max_cost: f64,
    merged: Vec<TaggedQuery>,
    threads: usize,
    // lint:allow(hash-container): lookup-only memo (insert/get by exact key); never iterated
    cache: Mutex<HashMap<Vec<u32>, FleetEvaluation>>,
    simulations: AtomicUsize,
}

impl FleetEvaluator {
    /// Builds the evaluator from a compiled fleet.
    pub fn new(fleet: &Fleet) -> Result<FleetEvaluator, ScenarioError> {
        let mut members = Vec::with_capacity(fleet.members.len());
        let mut bounds = Vec::new();
        let mut offsets = Vec::with_capacity(fleet.members.len());
        let mut prices = Vec::new();
        for m in &fleet.members {
            let evaluator = m.scenario.build_evaluator();
            let start = bounds.len();
            bounds.extend_from_slice(evaluator.bounds());
            offsets.push(start..bounds.len());
            prices.extend(
                m.scenario
                    .workload
                    .diverse_pool
                    .iter()
                    .map(|t| t.hourly_price()),
            );
            members.push(MemberState {
                profile: m.scenario.workload.profile(),
                share_weight: if fleet.has_shared() {
                    m.share_weight
                } else {
                    0.0
                },
                target_rate: m.scenario.policy.threshold(),
                evaluator,
            });
        }
        bounds.extend_from_slice(&fleet.shared_bounds);
        prices.extend(fleet.shared_types.iter().map(|t| t.hourly_price()));
        let max_cost: f64 = bounds
            .iter()
            .zip(&prices)
            .map(|(&m, &p)| m as f64 * p)
            .sum();

        let streams: Vec<Vec<ribbon_cloudsim::Query>> = members
            .iter()
            .map(|m| m.evaluator.queries().to_vec())
            .collect();
        let merged = ribbon_cloudsim::merge_tagged(&streams);
        let threads = members
            .first()
            .map(|m| m.evaluator.parallelism())
            .unwrap_or(1);

        Ok(FleetEvaluator {
            members,
            shared_types: fleet.shared_types.clone(),
            shared_bounds: fleet.shared_bounds.clone(),
            bounds,
            offsets,
            prices,
            max_cost,
            merged,
            threads,
            // lint:allow(hash-container): lookup-only memo; never iterated
            cache: Mutex::new(HashMap::new()),
            simulations: AtomicUsize::new(0),
        })
    }

    /// The joint allocation bounds (member slices then the shared slice).
    pub fn bounds(&self) -> &[u32] {
        &self.bounds
    }

    /// Number of fleet members.
    pub fn num_members(&self) -> usize {
        self.members.len()
    }

    /// The dimension range of a member's dedicated slice.
    pub fn member_range(&self, member: usize) -> Range<usize> {
        self.offsets[member].clone()
    }

    /// The dimension range of the shared slice (empty range when no shared families).
    pub fn shared_range(&self) -> Range<usize> {
        let start = self.offsets.last().map_or(0, |r| r.end);
        start..self.bounds.len()
    }

    /// A member's own configuration evaluator (its planning stream and cache).
    pub fn member_evaluator(&self, member: usize) -> &ConfigEvaluator {
        &self.members[member].evaluator
    }

    /// A member's QoS threshold (the joint pruning rule needs it).
    pub fn member_target_rate(&self, member: usize) -> f64 {
        self.members[member].target_rate
    }

    /// Number of distinct joint simulations/evaluations run so far (cache misses).
    pub fn num_simulations(&self) -> usize {
        self.simulations.load(Ordering::Relaxed)
    }

    /// Total fleet hourly cost of an allocation: `Σ pᵢ·xᵢ` over every dimension.
    pub fn cost(&self, config: &[u32]) -> f64 {
        assert_eq!(config.len(), self.prices.len(), "allocation dimensionality");
        config
            .iter()
            .zip(&self.prices)
            .map(|(&x, &p)| x as f64 * p)
            .sum()
    }

    /// Maximum possible fleet cost (the satisfying-branch normalizer).
    pub fn max_cost(&self) -> f64 {
        self.max_cost
    }

    /// Assembles a joint allocation from per-member slices and a shared slice.
    pub fn assemble(&self, slices: &[Vec<u32>], shared: &[u32]) -> Vec<u32> {
        assert_eq!(slices.len(), self.members.len(), "one slice per member");
        let mut out = Vec::with_capacity(self.bounds.len());
        for (m, slice) in slices.iter().enumerate() {
            assert_eq!(slice.len(), self.offsets[m].len(), "member slice length");
            out.extend_from_slice(slice);
        }
        assert_eq!(
            shared.len(),
            self.shared_bounds.len(),
            "shared slice length"
        );
        out.extend_from_slice(shared);
        out
    }

    fn validate(&self, config: &[u32]) {
        assert_eq!(
            config.len(),
            self.bounds.len(),
            "allocation has {} entries but the fleet lattice has {} dimensions",
            config.len(),
            self.bounds.len()
        );
        assert!(
            config.iter().any(|&c| c > 0),
            "cannot evaluate an empty fleet allocation"
        );
    }

    /// Evaluates one joint allocation (cached).
    pub fn evaluate(&self, config: &[u32]) -> FleetEvaluation {
        self.validate(config);
        if let Some(hit) = self.cache.lock().get(config) {
            return hit.clone();
        }
        let eval = self.simulate_joint(config);
        self.simulations.fetch_add(1, Ordering::Relaxed);
        self.cache.lock().insert(config.to_vec(), eval.clone());
        eval
    }

    /// Evaluates a batch of allocations across worker threads, in input order —
    /// same contract as [`ConfigEvaluator::evaluate_many`] (order-preserving,
    /// bit-identical to serial, duplicates evaluated once).
    pub fn evaluate_many(&self, configs: &[Vec<u32>]) -> Vec<FleetEvaluation> {
        for c in configs {
            self.validate(c);
        }
        let mut results: Vec<Option<FleetEvaluation>> = vec![None; configs.len()];
        let mut misses: Vec<Vec<u32>> = Vec::new();
        {
            let cache = self.cache.lock();
            let mut queued: BTreeSet<&[u32]> = BTreeSet::new();
            for (slot, config) in results.iter_mut().zip(configs) {
                if let Some(hit) = cache.get(config.as_slice()) {
                    *slot = Some(hit.clone());
                } else if queued.insert(config.as_slice()) {
                    misses.push(config.clone());
                }
            }
        }
        let fresh = parallel::par_map(&misses, self.threads, |c| self.simulate_joint(c));
        self.simulations.fetch_add(fresh.len(), Ordering::Relaxed);
        {
            let mut cache = self.cache.lock();
            for eval in &fresh {
                cache.insert(eval.config.clone(), eval.clone());
            }
        }
        let by_config: BTreeMap<&[u32], &FleetEvaluation> =
            fresh.iter().map(|e| (e.config.as_slice(), e)).collect();
        results
            .into_iter()
            .zip(configs)
            .map(|(slot, config)| match slot {
                Some(eval) => eval,
                None => (*by_config
                    .get(config.as_slice())
                    .expect("every miss was simulated"))
                .clone(),
            })
            .collect()
    }

    /// An evaluation for a member that has no serving capacity at all under the
    /// allocation: nothing is served, satisfaction is zero.
    fn infeasible_member(&self, member: usize, slice: &[u32]) -> Evaluation {
        let m = &self.members[member];
        let pool = PoolSpec::from_counts(&m.evaluator.workload().diverse_pool, slice);
        Evaluation {
            config: slice.to_vec(),
            hourly_cost: pool.hourly_cost(),
            satisfaction_rate: 0.0,
            meets_qos: false,
            objective: 0.0,
            mean_latency_s: f64::INFINITY,
            tail_latency_s: f64::INFINITY,
            tier_totals: Vec::new(),
            pool,
        }
    }

    /// The pure joint simulation — shared by the serial and batch paths.
    fn simulate_joint(&self, config: &[u32]) -> FleetEvaluation {
        let shared_config: Vec<u32> = config[self.shared_range()].to_vec();
        let shared_total: u32 = shared_config.iter().sum();
        let slices: Vec<&[u32]> = (0..self.members.len())
            .map(|m| &config[self.member_range(m)])
            .collect();

        let mut shared_queries = vec![0usize; self.members.len()];
        let per_model: Vec<Evaluation> = if shared_total == 0 {
            // Fully dedicated: every member evaluated by its own (cached) evaluator —
            // bit-identical to a standalone single-model evaluation.
            slices
                .iter()
                .enumerate()
                .map(|(m, slice)| {
                    if slice.iter().all(|&c| c == 0) {
                        self.infeasible_member(m, slice)
                    } else {
                        self.members[m].evaluator.evaluate(slice)
                    }
                })
                .collect()
        } else {
            // Shared slots in play: merge the planning streams and simulate the
            // contention through the fleet router.
            let shared_pool = PoolSpec::from_counts(&self.shared_types, &shared_config);
            // Members with neither dedicated capacity nor shared access sit out the
            // simulation and score zero.
            let included: Vec<usize> = (0..self.members.len())
                .filter(|&m| slices[m].iter().any(|&c| c > 0) || self.members[m].share_weight > 0.0)
                .collect();
            let sim_index: BTreeMap<usize, usize> = included
                .iter()
                .enumerate()
                .map(|(si, &m)| (m, si))
                .collect();
            let model_configs: Vec<FleetModelConfig<'_>> = included
                .iter()
                .map(|&m| {
                    let state = &self.members[m];
                    let workload = state.evaluator.workload();
                    FleetModelConfig {
                        pool: PoolSpec::from_counts(&workload.diverse_pool, slices[m]),
                        profile: &state.profile,
                        target_latency_s: state.evaluator.policy().deadline_s(),
                        tail_percentile: state.evaluator.policy().tail_percentile(),
                        // Plan-time evaluation needs no windowed monitoring.
                        window: WindowConfig::tumbling(1e18),
                        share_weight: state.share_weight,
                        spin_up_factor: 1.0,
                        variant_policy: None,
                        // Plan-time sizing scores the blended stream; the tier-weighted
                        // objective re-weights it downstream (see fleet::objective).
                        tiers: None,
                    }
                })
                .collect();
            let mut sim = FleetSim::new(model_configs, Some(shared_pool));
            for tq in &self.merged {
                if let Some(&si) = sim_index.get(&tq.model) {
                    sim.push(&TaggedQuery::new(si, tq.query));
                }
            }
            (0..self.members.len())
                .map(|m| match sim_index.get(&m) {
                    None => self.infeasible_member(m, slices[m]),
                    Some(&si) => {
                        shared_queries[m] = sim.shared_queries(si);
                        let state = &self.members[m];
                        let stats = sim.stats(si);
                        let rate = state
                            .evaluator
                            .policy()
                            .score(&QosEvidence::from_stats(&stats))
                            .unwrap_or(1.0);
                        let objective = state.evaluator.objective();
                        let pool = PoolSpec::from_counts(
                            &state.evaluator.workload().diverse_pool,
                            slices[m],
                        );
                        Evaluation {
                            config: slices[m].to_vec(),
                            hourly_cost: pool.hourly_cost(),
                            pool,
                            satisfaction_rate: rate,
                            meets_qos: objective.meets_qos(rate),
                            objective: objective.value(slices[m], rate),
                            mean_latency_s: stats.mean_latency_s,
                            tail_latency_s: stats.tail_latency_s,
                            tier_totals: Vec::new(),
                        }
                    }
                })
                .collect()
        };

        let (meets_qos, objective) = self.joint_objective(config, &per_model);
        let shared_hourly_cost: f64 = shared_config
            .iter()
            .zip(&self.shared_types)
            .map(|(&c, t)| c as f64 * t.hourly_price())
            .sum();
        FleetEvaluation {
            config: config.to_vec(),
            total_hourly_cost: self.cost(config),
            per_model,
            shared_config,
            shared_hourly_cost,
            shared_queries,
            meets_qos,
            objective,
        }
    }

    /// The fleet-level Eq. 2: worst-member shortfall below ½ when any member violates,
    /// total-cost cheapness above ½ when all satisfy. Bit-identical to
    /// [`RibbonObjective::value`](crate::objective::RibbonObjective::value) for a
    /// single-member, no-shared fleet.
    fn joint_objective(&self, config: &[u32], per_model: &[Evaluation]) -> (bool, f64) {
        let mut meets_all = true;
        let mut worst = f64::INFINITY;
        for (state, eval) in self.members.iter().zip(per_model) {
            let rate = eval.satisfaction_rate.clamp(0.0, 1.0);
            if rate < state.target_rate {
                meets_all = false;
            }
            let score = 0.5 * rate / state.target_rate;
            if score < worst {
                worst = score;
            }
        }
        if meets_all {
            (true, 0.5 + 0.5 * (1.0 - self.cost(config) / self.max_cost))
        } else {
            (false, worst)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::FleetSpec;

    fn duo_evaluator() -> FleetEvaluator {
        let fleet = FleetSpec::from_toml_str(
            r#"
[fleet]
name = "duo"
seed = 5
budget = 8
shared_pool = ["g4dn"]
shared_bounds = [3]

[[model]]
bounds = [4, 2, 4]

[model.workload]
model = "MT-WND"
num_queries = 500

[[model]]
bounds = [4, 2, 4]

[model.workload]
model = "DIEN"
num_queries = 400
"#,
        )
        .unwrap()
        .compile()
        .unwrap();
        FleetEvaluator::new(&fleet).unwrap()
    }

    #[test]
    fn lattice_concatenates_member_and_shared_bounds() {
        let ev = duo_evaluator();
        assert_eq!(ev.bounds(), &[4, 2, 4, 4, 2, 4, 3]);
        assert_eq!(ev.member_range(0), 0..3);
        assert_eq!(ev.member_range(1), 3..6);
        assert_eq!(ev.shared_range(), 6..7);
    }

    #[test]
    fn dedicated_path_matches_the_member_evaluators_bit_for_bit() {
        let ev = duo_evaluator();
        let joint = ev.evaluate(&[3, 0, 2, 2, 1, 0, 0]);
        let a = ev.member_evaluator(0).evaluate(&[3, 0, 2]);
        let b = ev.member_evaluator(1).evaluate(&[2, 1, 0]);
        assert_eq!(joint.per_model[0], a);
        assert_eq!(joint.per_model[1], b);
        assert_eq!(joint.shared_queries, vec![0, 0]);
        assert!((joint.total_hourly_cost - (a.hourly_cost + b.hourly_cost)).abs() < 1e-12);
    }

    #[test]
    fn shared_allocation_simulates_cross_model_contention() {
        let ev = duo_evaluator();
        // All g4dn capacity moved to the shared slice: both models lean on it.
        let joint = ev.evaluate(&[0, 0, 3, 0, 0, 3, 3]);
        assert!(joint.shared_queries[0] > 0, "MT-WND uses the shared slots");
        assert!(joint.shared_queries[1] > 0, "DIEN uses the shared slots");
        assert_eq!(joint.shared_config, vec![3]);
        assert!(joint.shared_hourly_cost > 0.0);
        // Per-member rates reflect the merged-stream simulation.
        for e in &joint.per_model {
            assert!((0.0..=1.0).contains(&e.satisfaction_rate));
        }
    }

    #[test]
    fn empty_member_slice_without_shared_access_scores_zero() {
        let ev = duo_evaluator();
        let joint = ev.evaluate(&[0, 0, 0, 2, 1, 2, 0]);
        assert_eq!(joint.per_model[0].satisfaction_rate, 0.0);
        assert!(!joint.per_model[0].meets_qos);
        assert!(!joint.meets_qos);
        assert!(joint.objective < 0.5, "violating branch");
    }

    #[test]
    fn evaluate_many_is_bit_identical_to_serial_and_caches() {
        let ev = duo_evaluator();
        let configs = vec![
            vec![3, 0, 2, 2, 1, 0, 0],
            vec![2, 0, 2, 2, 0, 2, 1],
            vec![3, 0, 2, 2, 1, 0, 0], // duplicate
        ];
        let batch = ev.evaluate_many(&configs);
        let sims_after_batch = ev.num_simulations();
        assert_eq!(sims_after_batch, 2, "duplicate evaluated once");
        let serial: Vec<FleetEvaluation> = configs.iter().map(|c| ev.evaluate(c)).collect();
        assert_eq!(ev.num_simulations(), 2, "serial re-reads hit the cache");
        assert_eq!(batch, serial);
    }

    #[test]
    fn joint_objective_prefers_cheaper_satisfying_allocations() {
        let ev = duo_evaluator();
        let small = ev.evaluate(&[4, 2, 4, 4, 2, 4, 0]);
        let bigger = ev.evaluate(&[4, 2, 4, 4, 2, 4, 3]);
        if small.meets_qos && bigger.meets_qos {
            assert!(
                small.objective > bigger.objective,
                "extra shared capacity on an already-satisfying fleet only costs money"
            );
        }
    }
}
