//! The typed fleet schema: what a `fleet.toml` (or `.json`) file contains.
//!
//! A fleet file describes **several** models sharing one instance catalog:
//!
//! ```toml
//! [fleet]
//! name = "rec-duo"
//! mode = "plan"
//! seed = 11
//! budget = 40
//! shared_pool = ["g4dn"]
//! shared_bounds = [4]
//!
//! [[model]]
//! bounds = [4, 2, 4]
//!
//! [model.workload]
//! model = "MT-WND"
//! num_queries = 1200
//!
//! [[model]]
//! bounds = [4, 2, 4]
//!
//! [model.workload]
//! model = "DIEN"
//! num_queries = 1100
//! ```
//!
//! Each `[[model]]` entry embeds the same `workload` / `qos` / `traffic` / `online`
//! sections a single-model scenario file uses (parsed by the exact same code), plus
//! fleet-only knobs: `weight` (objective weight), `share_weight` (shared-slice routing
//! weight), `bounds` (per-model search bounds), and an optional `name`. Parsing follows
//! the scenario conventions: strict unknown-key rejection, dotted error paths
//! (`model[1].qos.latency_ms`), lossless parse → serialize → parse round-trips.

use crate::scenario::spec::{
    online_to_value, qos_section_to_value, traffic_to_value, workload_to_value,
};
use crate::scenario::{
    OnlineSpec, QosSpec, RunMode, ScenarioError, ScenarioSpec, TierSpecDef, TrafficSpec,
    WorkloadSpec,
};
use ribbon_spec::{Format, Value};
use serde::{Deserialize, Serialize};

/// One model of a fleet: its workload, policies, and fleet-only knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetModelSpec {
    /// Display name (defaults to the workload's model name).
    pub name: Option<String>,
    /// Objective weight of this model in the joint Eq. 2 score.
    pub weight: Option<f64>,
    /// Shared-slice routing weight (`0` = this model never uses shared slots; omitted
    /// defaults to `1.0` when the fleet declares a shared pool).
    pub share_weight: Option<f64>,
    /// Explicit per-type search bounds for this model's dedicated slice.
    pub bounds: Option<Vec<u32>>,
    /// The served workload (same schema as a scenario's `[workload]`).
    pub workload: WorkloadSpec,
    /// QoS policy (same schema as a scenario's `[qos]`).
    pub qos: Option<QosSpec>,
    /// `[[model.qos.tiers]]`: optional priority classes (same schema as a scenario's
    /// `[[qos.tiers]]`).
    pub qos_tiers: Option<Vec<TierSpecDef>>,
    /// Traffic trace for serve mode (same schema as a scenario's `[traffic]`).
    pub traffic: Option<TrafficSpec>,
    /// Online-serving knobs (same schema as a scenario's `[online]`).
    pub online: OnlineSpec,
}

/// A complete declarative fleet: shared catalog and joint-search knobs plus one
/// [`FleetModelSpec`] per served model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetSpec {
    /// Fleet name (used in reports and output files).
    pub name: String,
    /// Free-form description.
    pub description: String,
    /// What to do: joint offline `plan` or online `serve`.
    pub mode: RunMode,
    /// Master seed (joint search, member baselines, controllers).
    pub seed: u64,
    /// Path to an instance-catalog data file shared by every model.
    pub catalog: Option<String>,
    /// Evaluation budget of the joint search (warm-start candidates included).
    pub budget: usize,
    /// Evaluation budget of each member's dedicated-pool baseline search (defaults to
    /// `budget`).
    pub member_budget: Option<usize>,
    /// Whether to report the dedicated-pools baseline and per-model savings. The
    /// per-member optimum searches still run for multi-model fleets regardless (they
    /// seed the joint search's pooling warm start); `false` only suppresses the
    /// baseline/saving fields in the report.
    pub baseline: bool,
    /// Random space-filling evaluations before the joint GP takes over.
    pub initial_samples: Option<usize>,
    /// Active-pruning threshold θ of the joint search.
    pub prune_threshold: Option<f64>,
    /// Candidates asked per joint-search optimizer round (`q`, defaults to 1; batches
    /// evaluate in parallel and `1` reproduces the sequential trace bit-for-bit).
    pub batch: Option<usize>,
    /// Worker threads for batch evaluation.
    pub threads: Option<usize>,
    /// Worker shards of the serve drive: coupling groups of fleet lanes are simulated
    /// on up to this many threads (results are bit-identical at every shard count).
    /// Defaults to one shard for small streams and the machine's parallelism above the
    /// large-stream threshold.
    pub shards: Option<usize>,
    /// Instance families opened for cross-model shared slots (catalog names).
    pub shared_pool: Vec<String>,
    /// Per-family search bounds of the shared slice (defaults to 4 each).
    pub shared_bounds: Option<Vec<u32>>,
    /// The fleet's models, in routing/report order.
    pub models: Vec<FleetModelSpec>,
}

impl FleetSpec {
    /// Default joint-search budget.
    pub const DEFAULT_BUDGET: usize = 40;

    /// `true` when a parsed value tree looks like a fleet file (has a `[fleet]` table).
    pub fn is_fleet_value(root: &Value) -> bool {
        root.get("fleet").is_some()
    }

    /// Builds a fleet spec from a parsed value tree, validating shape and key names.
    pub fn from_value(root: &Value) -> Result<FleetSpec, ScenarioError> {
        if root.as_table().is_none() {
            return Err(ScenarioError::invalid("", "a fleet spec must be a table"));
        }
        for key in root.keys() {
            if key != "fleet" && key != "model" {
                return Err(ScenarioError::invalid(
                    key,
                    "unknown key (expected one of: fleet, model)",
                ));
            }
        }
        let header = root
            .get("fleet")
            .ok_or_else(|| ScenarioError::invalid("fleet", "missing [fleet] section"))?;
        if header.as_table().is_none() {
            return Err(ScenarioError::invalid(
                "fleet",
                format!("expected a [fleet] table, found {}", header.type_name()),
            ));
        }
        let allowed = [
            "name",
            "description",
            "mode",
            "seed",
            "catalog",
            "budget",
            "member_budget",
            "baseline",
            "initial_samples",
            "prune_threshold",
            "batch",
            "threads",
            "shards",
            "shared_pool",
            "shared_bounds",
        ];
        for key in header.keys() {
            if !allowed.contains(&key) {
                return Err(ScenarioError::invalid(
                    format!("fleet.{key}"),
                    format!("unknown key (expected one of: {})", allowed.join(", ")),
                ));
            }
        }
        let name = get_str(header, "fleet", "name")?
            .ok_or_else(|| ScenarioError::invalid("fleet.name", "required field is missing"))?;
        let description = get_str(header, "fleet", "description")?.unwrap_or_default();
        let mode = match get_str(header, "fleet", "mode")? {
            None => RunMode::default(),
            Some(m) => RunMode::from_name(&m).ok_or_else(|| {
                ScenarioError::invalid("fleet.mode", format!("unknown mode `{m}`"))
            })?,
        };
        let seed = get_u64(header, "fleet", "seed")?.unwrap_or(0);
        let catalog = get_str(header, "fleet", "catalog")?;
        let budget = get_usize(header, "fleet", "budget")?.unwrap_or(Self::DEFAULT_BUDGET);
        if budget == 0 {
            return Err(ScenarioError::invalid("fleet.budget", "must be at least 1"));
        }
        let member_budget = get_usize(header, "fleet", "member_budget")?;
        if member_budget == Some(0) {
            return Err(ScenarioError::invalid(
                "fleet.member_budget",
                "must be at least 1",
            ));
        }
        let baseline = get_bool(header, "fleet", "baseline")?.unwrap_or(true);
        let initial_samples = get_usize(header, "fleet", "initial_samples")?;
        let prune_threshold = get_f64(header, "fleet", "prune_threshold")?;
        let batch = get_usize(header, "fleet", "batch")?;
        if batch == Some(0) {
            return Err(ScenarioError::invalid("fleet.batch", "must be at least 1"));
        }
        let threads = get_usize(header, "fleet", "threads")?;
        let shards = get_usize(header, "fleet", "shards")?;
        let shared_pool = get_str_list(header, "fleet", "shared_pool")?.unwrap_or_default();
        let shared_bounds = get_u32_list(header, "fleet", "shared_bounds")?;
        if let Some(b) = &shared_bounds {
            if b.len() != shared_pool.len() {
                return Err(ScenarioError::invalid(
                    "fleet.shared_bounds",
                    format!(
                        "{} bounds for {} shared families",
                        b.len(),
                        shared_pool.len()
                    ),
                ));
            }
        }

        let models_value = root
            .get("model")
            .ok_or_else(|| ScenarioError::invalid("model", "a fleet needs [[model]] entries"))?;
        let items = models_value.as_array().ok_or_else(|| {
            ScenarioError::invalid(
                "model",
                format!(
                    "expected [[model]] array-of-tables, found {}",
                    models_value.type_name()
                ),
            )
        })?;
        if items.is_empty() {
            return Err(ScenarioError::invalid(
                "model",
                "a fleet needs at least one [[model]] entry",
            ));
        }
        let mut models = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            let path = format!("model[{i}]");
            models.push(Self::model_from(item).map_err(|e| e.prefix_path(&path))?);
        }
        // Report lines, routing weights, and per-member reconfigurations are all keyed by
        // the member's display name — two members resolving to the same name would alias.
        let mut seen = std::collections::BTreeSet::new();
        for (i, m) in models.iter().enumerate() {
            let name = m.name.clone().unwrap_or_else(|| m.workload.model.clone());
            if !seen.insert(name.clone()) {
                return Err(ScenarioError::invalid(
                    format!("model[{i}].name"),
                    format!(
                        "duplicate model name `{name}` (give each [[model]] entry serving \
                         the same model a distinct `name`)"
                    ),
                ));
            }
        }

        Ok(FleetSpec {
            name,
            description,
            mode,
            seed,
            catalog,
            budget,
            member_budget,
            baseline,
            initial_samples,
            prune_threshold,
            batch,
            threads,
            shards,
            shared_pool,
            shared_bounds,
            models,
        })
    }

    fn model_from(t: &Value) -> Result<FleetModelSpec, ScenarioError> {
        if t.as_table().is_none() {
            return Err(ScenarioError::invalid(
                "",
                format!("expected a [[model]] table, found {}", t.type_name()),
            ));
        }
        let allowed = [
            "name",
            "weight",
            "share_weight",
            "bounds",
            "workload",
            "qos",
            "traffic",
            "online",
        ];
        for key in t.keys() {
            if !allowed.contains(&key) {
                return Err(ScenarioError::invalid(
                    key,
                    format!("unknown key (expected one of: {})", allowed.join(", ")),
                ));
            }
        }
        let workload_table = t
            .get("workload")
            .ok_or_else(|| ScenarioError::invalid("workload", "missing workload section"))?;
        let workload = ScenarioSpec::workload_from(workload_table)?;
        let (qos, qos_tiers) = match t.get("qos") {
            None => (None, None),
            Some(q) => ScenarioSpec::qos_section_from(q, "qos")?,
        };
        let traffic = match t.get("traffic") {
            None => None,
            Some(tr) => Some(ScenarioSpec::traffic_from(tr)?),
        };
        let online = match t.get("online") {
            None => OnlineSpec::default(),
            Some(o) => ScenarioSpec::online_from(o)?,
        };
        Ok(FleetModelSpec {
            name: get_str(t, "", "name")?,
            weight: get_f64(t, "", "weight")?,
            share_weight: get_f64(t, "", "share_weight")?,
            bounds: get_u32_list(t, "", "bounds")?,
            workload,
            qos,
            qos_tiers,
            traffic,
            online,
        })
    }

    /// Serializes the spec to a value tree (only explicitly-set optional fields are
    /// emitted, so a sparse file round-trips to an identical spec).
    pub fn to_value(&self) -> Value {
        let mut root = Value::table();
        let mut header = Value::table();
        header.insert("name", Value::from(self.name.as_str()));
        if !self.description.is_empty() {
            header.insert("description", Value::from(self.description.as_str()));
        }
        header.insert("mode", Value::from(self.mode.name()));
        header.insert("seed", Value::from(self.seed));
        if let Some(c) = &self.catalog {
            header.insert("catalog", Value::from(c.as_str()));
        }
        header.insert("budget", Value::from(self.budget));
        if let Some(b) = self.member_budget {
            header.insert("member_budget", Value::from(b));
        }
        header.insert("baseline", Value::from(self.baseline));
        if let Some(s) = self.initial_samples {
            header.insert("initial_samples", Value::from(s));
        }
        if let Some(p) = self.prune_threshold {
            header.insert("prune_threshold", Value::from(p));
        }
        if let Some(b) = self.batch {
            header.insert("batch", Value::from(b));
        }
        if let Some(t) = self.threads {
            header.insert("threads", Value::from(t));
        }
        if let Some(s) = self.shards {
            header.insert("shards", Value::from(s));
        }
        if !self.shared_pool.is_empty() {
            header.insert(
                "shared_pool",
                Value::Array(
                    self.shared_pool
                        .iter()
                        .map(|s| Value::from(s.as_str()))
                        .collect(),
                ),
            );
        }
        if let Some(b) = &self.shared_bounds {
            header.insert(
                "shared_bounds",
                Value::Array(b.iter().map(|&v| Value::from(v)).collect()),
            );
        }
        root.insert("fleet", header);

        let models: Vec<Value> = self
            .models
            .iter()
            .map(|m| {
                let mut t = Value::table();
                if let Some(n) = &m.name {
                    t.insert("name", Value::from(n.as_str()));
                }
                if let Some(w) = m.weight {
                    t.insert("weight", Value::from(w));
                }
                if let Some(w) = m.share_weight {
                    t.insert("share_weight", Value::from(w));
                }
                if let Some(b) = &m.bounds {
                    t.insert(
                        "bounds",
                        Value::Array(b.iter().map(|&v| Value::from(v)).collect()),
                    );
                }
                t.insert("workload", workload_to_value(&m.workload));
                if let Some(qt) = qos_section_to_value(m.qos.as_ref(), m.qos_tiers.as_deref()) {
                    t.insert("qos", qt);
                }
                if let Some(tr) = &m.traffic {
                    t.insert("traffic", traffic_to_value(tr));
                }
                if m.online != OnlineSpec::default() {
                    t.insert("online", online_to_value(&m.online));
                }
                t
            })
            .collect();
        root.insert("model", Value::Array(models));
        root
    }

    /// Parses a fleet spec from TOML text.
    pub fn from_toml_str(text: &str) -> Result<FleetSpec, ScenarioError> {
        Self::from_value(&ribbon_spec::toml::parse(text)?)
    }

    /// Parses a fleet spec from JSON text.
    pub fn from_json_str(text: &str) -> Result<FleetSpec, ScenarioError> {
        Self::from_value(&ribbon_spec::json::parse(text)?)
    }

    /// Serializes the spec as TOML.
    pub fn to_toml_string(&self) -> String {
        ribbon_spec::toml::to_string(&self.to_value())
            .expect("a fleet value tree is always TOML-expressible")
    }

    /// Serializes the spec as JSON.
    pub fn to_json_string(&self) -> String {
        ribbon_spec::json::to_string(&self.to_value())
    }

    /// Loads a fleet spec from a TOML/JSON file (by extension).
    pub fn load_file(path: &str) -> Result<FleetSpec, ScenarioError> {
        let text = std::fs::read_to_string(path).map_err(|e| ScenarioError::Io {
            path: path.to_string(),
            message: e.to_string(),
        })?;
        let value = Format::from_path(path).parse(&text)?;
        Self::from_value(&value)
    }
}

// Small typed accessors mirroring the scenario spec's conventions (dotted error paths).

fn field(path: &str, key: &str) -> String {
    if path.is_empty() {
        key.to_string()
    } else {
        format!("{path}.{key}")
    }
}

fn get_str(t: &Value, path: &str, key: &str) -> Result<Option<String>, ScenarioError> {
    match t.get(key) {
        None => Ok(None),
        Some(v) => v.as_str().map(|s| Some(s.to_string())).ok_or_else(|| {
            ScenarioError::invalid(
                field(path, key),
                format!("expected a string, found {}", v.type_name()),
            )
        }),
    }
}

fn get_bool(t: &Value, path: &str, key: &str) -> Result<Option<bool>, ScenarioError> {
    match t.get(key) {
        None => Ok(None),
        Some(v) => v.as_bool().map(Some).ok_or_else(|| {
            ScenarioError::invalid(
                field(path, key),
                format!("expected a boolean, found {}", v.type_name()),
            )
        }),
    }
}

fn get_f64(t: &Value, path: &str, key: &str) -> Result<Option<f64>, ScenarioError> {
    match t.get(key) {
        None => Ok(None),
        Some(v) => v.as_f64().map(Some).ok_or_else(|| {
            ScenarioError::invalid(
                field(path, key),
                format!("expected a number, found {}", v.type_name()),
            )
        }),
    }
}

fn get_u64(t: &Value, path: &str, key: &str) -> Result<Option<u64>, ScenarioError> {
    match t.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_i64()
            .and_then(|i| u64::try_from(i).ok())
            .map(Some)
            .ok_or_else(|| {
                ScenarioError::invalid(
                    field(path, key),
                    format!("expected a non-negative integer, found {}", v.type_name()),
                )
            }),
    }
}

fn get_usize(t: &Value, path: &str, key: &str) -> Result<Option<usize>, ScenarioError> {
    Ok(get_u64(t, path, key)?.map(|v| v as usize))
}

fn get_u32_list(t: &Value, path: &str, key: &str) -> Result<Option<Vec<u32>>, ScenarioError> {
    match t.get(key) {
        None => Ok(None),
        Some(v) => {
            let items = v.as_array().ok_or_else(|| {
                ScenarioError::invalid(
                    field(path, key),
                    format!("expected an array of integers, found {}", v.type_name()),
                )
            })?;
            items
                .iter()
                .map(|item| {
                    item.as_i64()
                        .and_then(|i| u32::try_from(i).ok())
                        .ok_or_else(|| {
                            ScenarioError::invalid(
                                field(path, key),
                                "expected non-negative integers",
                            )
                        })
                })
                .collect::<Result<Vec<u32>, _>>()
                .map(Some)
        }
    }
}

fn get_str_list(t: &Value, path: &str, key: &str) -> Result<Option<Vec<String>>, ScenarioError> {
    match t.get(key) {
        None => Ok(None),
        Some(v) => {
            let items = v.as_array().ok_or_else(|| {
                ScenarioError::invalid(
                    field(path, key),
                    format!("expected an array of strings, found {}", v.type_name()),
                )
            })?;
            items
                .iter()
                .map(|item| {
                    item.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| ScenarioError::invalid(field(path, key), "expected strings"))
                })
                .collect::<Result<Vec<String>, _>>()
                .map(Some)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn duo_toml() -> &'static str {
        r#"
[fleet]
name = "duo"
mode = "plan"
seed = 5
budget = 12
shared_pool = ["g4dn"]
shared_bounds = [3]

[[model]]
bounds = [4, 2, 4]

[model.workload]
model = "MT-WND"
num_queries = 600

[model.qos]
latency_ms = 20.0
target_rate = 0.99

[[model]]
name = "dien"
weight = 2.0
share_weight = 1.5
bounds = [4, 2, 4]

[model.workload]
model = "DIEN"
num_queries = 500
"#
    }

    #[test]
    fn fleet_spec_parses_the_array_of_tables_form() {
        let spec = FleetSpec::from_toml_str(duo_toml()).unwrap();
        assert_eq!(spec.name, "duo");
        assert_eq!(spec.models.len(), 2);
        assert_eq!(spec.models[0].workload.model, "MT-WND");
        assert_eq!(spec.models[1].name.as_deref(), Some("dien"));
        assert_eq!(spec.models[1].weight, Some(2.0));
        assert_eq!(spec.shared_pool, vec!["g4dn"]);
        assert_eq!(spec.shared_bounds, Some(vec![3]));
        assert!(matches!(spec.models[0].qos, Some(QosSpec::TailRate { .. })));
    }

    #[test]
    fn fleet_spec_round_trips_losslessly() {
        let spec = FleetSpec::from_toml_str(duo_toml()).unwrap();
        let via_toml = FleetSpec::from_toml_str(&spec.to_toml_string()).unwrap();
        assert_eq!(spec, via_toml);
        let via_json = FleetSpec::from_json_str(&spec.to_json_string()).unwrap();
        assert_eq!(spec, via_json);
    }

    #[test]
    fn unknown_keys_carry_member_paths() {
        let bad = duo_toml().replace("weight = 2.0", "weight = 2.0\nwieght = 3.0");
        let e = FleetSpec::from_toml_str(&bad).unwrap_err();
        assert!(e.to_string().contains("model[1].wieght"), "{e}");

        let bad = duo_toml().replace("latency_ms = 20.0", "latency_msec = 20.0");
        let e = FleetSpec::from_toml_str(&bad).unwrap_err();
        assert!(e.to_string().contains("model[0].qos"), "{e}");
    }

    #[test]
    fn shared_bounds_must_match_shared_pool() {
        let bad = duo_toml().replace("shared_bounds = [3]", "shared_bounds = [3, 4]");
        let e = FleetSpec::from_toml_str(&bad).unwrap_err();
        assert!(e.to_string().contains("fleet.shared_bounds"), "{e}");
    }

    #[test]
    fn fleet_requires_models_and_a_header() {
        let e = FleetSpec::from_toml_str("[fleet]\nname = \"x\"\n").unwrap_err();
        assert!(e.to_string().contains("model"), "{e}");
        let e = FleetSpec::from_toml_str("[[model]]\n[model.workload]\nmodel = \"DIEN\"\n")
            .unwrap_err();
        assert!(e.to_string().contains("fleet"), "{e}");
    }

    #[test]
    fn is_fleet_value_distinguishes_fleet_files() {
        let fleet = ribbon_spec::toml::parse(duo_toml()).unwrap();
        assert!(FleetSpec::is_fleet_value(&fleet));
        let scenario =
            ribbon_spec::toml::parse("[scenario]\nname = \"s\"\n[workload]\nmodel = \"DIEN\"\n")
                .unwrap();
        assert!(!FleetSpec::is_fleet_value(&scenario));
    }
}
