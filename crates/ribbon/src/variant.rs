//! Joint variant × pool evaluation: the config lattice extended with a per-type
//! serving-variant axis (INFaaS-style model-less serving).
//!
//! A [`VariantEvaluator`] configuration is `[c_0..c_{d-1}, v_0..v_{d-1}]`: the first `d`
//! coordinates are the familiar per-type instance counts, the last `d` pick the serving
//! variant (an index into the workload's variant palette) for every instance of that
//! type. The Eq. 2 objective is computed over the **pool half only** — variants change
//! *how fast* a pool serves, not what it costs per hour — so a joint plan beats a
//! single-variant plan exactly when a mixed per-type assignment satisfies QoS with a
//! strictly cheaper pool.
//!
//! The evaluator implements [`BatchEvaluator`], so the ask/tell [`SearchDriver`], batched
//! parallel evaluation, and multi-fidelity successive halving all work on the joint
//! lattice unchanged. Caching, order preservation, and the soundness of prefix objective
//! upper bounds mirror [`ConfigEvaluator`] exactly (the objective stays monotone in the
//! satisfaction rate for a fixed configuration, and the simulator stays prefix-closed —
//! the variant assignment is fixed for the whole stream).
//!
//! [`SearchDriver`]: crate::search::SearchDriver
//! [`ConfigEvaluator`]: crate::evaluator::ConfigEvaluator

use crate::bounds::{find_bounds, BoundSettings};
#[cfg(test)]
use crate::evaluator::ConfigEvaluator;
use crate::evaluator::{BatchEvaluator, Evaluation, EvaluatorSettings, PrefixEvaluation};
use crate::objective::RibbonObjective;
use parking_lot::Mutex;
use ribbon_bo::ConfigLattice;
use ribbon_cloudsim::{parallel, simulate_stats, PoolSpec, QosEvidence, QosPolicy, Query};
use ribbon_models::{AssignedVariantProfile, VariantKind, VariantSetProfile, Workload};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Evaluates joint variant × pool configurations for one workload.
///
/// Built from a workload whose `variants` palette is non-empty; index 0 of the palette is
/// by convention the accuracy-best variant. See the module docs for the configuration
/// layout and the relationship to [`ConfigEvaluator`](crate::evaluator::ConfigEvaluator).
pub struct VariantEvaluator {
    workload: Workload,
    profile: VariantSetProfile,
    policy: Arc<dyn QosPolicy>,
    queries: Vec<Query>,
    objective: RibbonObjective,
    pool_bounds: Vec<u32>,
    threads: usize,
    // lint:allow(hash-container): lookup-only memo (insert/get by exact key); never iterated
    cache: Mutex<HashMap<Vec<u32>, Evaluation>>,
    simulations: AtomicUsize,
    // lint:allow(hash-container): lookup-only memo (insert/get by exact key); never iterated
    prefix_cache: Mutex<HashMap<(usize, Vec<u32>), PrefixEvaluation>>,
    prefix_simulations: AtomicUsize,
    prefix_queries: AtomicUsize,
}

impl VariantEvaluator {
    /// Builds a joint evaluator. Per-type pool bounds are probed (or taken explicitly)
    /// exactly as in [`ConfigEvaluator::new`](crate::evaluator::ConfigEvaluator::new),
    /// against the accuracy-best baseline variant — bounds are caps, and the baseline is
    /// the palette's reference speed.
    ///
    /// # Panics
    /// Panics if the workload's variant palette is empty (use
    /// [`ConfigEvaluator`](crate::evaluator::ConfigEvaluator) for variant-less
    /// workloads) or if explicit bounds mismatch the pool's type count.
    pub fn new(workload: &Workload, settings: EvaluatorSettings) -> Self {
        Self::with_policy(workload, settings, Arc::new(workload.qos))
    }

    /// Builds a joint evaluator judging configurations against an arbitrary QoS policy.
    pub fn with_policy(
        workload: &Workload,
        settings: EvaluatorSettings,
        policy: Arc<dyn QosPolicy>,
    ) -> Self {
        assert!(
            !workload.variants.is_empty(),
            "a variant evaluator needs a non-empty variant palette"
        );
        let profile = workload.variant_profile();
        let baseline = workload.profile();
        let queries = workload.stream_config().generate();
        let threads = settings
            .threads
            .unwrap_or_else(parallel::default_threads)
            .max(1);
        let pool_bounds = match settings.explicit_bounds {
            Some(b) => {
                assert_eq!(
                    b.len(),
                    workload.diverse_pool.len(),
                    "explicit bounds must match the pool's type count"
                );
                b
            }
            None => find_bounds(
                &workload.diverse_pool,
                &queries,
                &baseline,
                policy.deadline_s(),
                &BoundSettings {
                    max_per_type: settings.max_per_type,
                    saturation_epsilon: settings.saturation_epsilon,
                    threads,
                },
            ),
        };
        let objective =
            RibbonObjective::new(&workload.diverse_pool, &pool_bounds, policy.threshold());
        VariantEvaluator {
            workload: workload.clone(),
            profile,
            policy,
            queries,
            objective,
            pool_bounds,
            threads,
            // lint:allow(hash-container): lookup-only memo; never iterated
            cache: Mutex::new(HashMap::new()),
            simulations: AtomicUsize::new(0),
            // lint:allow(hash-container): lookup-only memo; never iterated
            prefix_cache: Mutex::new(HashMap::new()),
            prefix_simulations: AtomicUsize::new(0),
            prefix_queries: AtomicUsize::new(0),
        }
    }

    /// The workload this evaluator serves.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// The QoS policy configurations are judged against.
    pub fn policy(&self) -> &Arc<dyn QosPolicy> {
        &self.policy
    }

    /// Number of pool types `d`; joint configurations have `2 d` coordinates.
    pub fn pool_dims(&self) -> usize {
        self.workload.diverse_pool.len()
    }

    /// The per-type pool bounds m_i (the first `d` lattice bounds).
    pub fn pool_bounds(&self) -> &[u32] {
        &self.pool_bounds
    }

    /// The Eq. 2 objective (over the pool half of a configuration).
    pub fn objective(&self) -> &RibbonObjective {
        &self.objective
    }

    /// Number of distinct joint simulations run so far (cache misses).
    pub fn num_simulations(&self) -> usize {
        self.simulations.load(Ordering::Relaxed)
    }

    /// The query stream all configurations are evaluated against.
    pub fn queries(&self) -> &[Query] {
        &self.queries
    }

    /// Splits a joint configuration into its pool-counts and variant-assignment halves.
    pub fn split<'c>(&self, config: &'c [u32]) -> (&'c [u32], &'c [u32]) {
        config.split_at(self.pool_dims())
    }

    /// The palette entries a joint configuration assigns, parallel to the diverse pool.
    pub fn assigned_variants(&self, config: &[u32]) -> Vec<VariantKind> {
        let (_, variants) = self.split(config);
        variants
            .iter()
            .map(|&v| self.profile.variants()[v as usize])
            .collect()
    }

    /// The joint configuration serving `counts` entirely on the baseline variant.
    pub fn baseline_config(&self, counts: &[u32]) -> Vec<u32> {
        let mut config = counts.to_vec();
        config.resize(2 * self.pool_dims(), 0);
        config
    }

    /// The worst (lowest) accuracy any *populated* type serves under a configuration;
    /// the palette's best accuracy when the pool half is empty.
    pub fn worst_accuracy(&self, config: &[u32]) -> f64 {
        let (counts, variants) = self.split(config);
        counts
            .iter()
            .zip(variants)
            .filter(|(&c, _)| c > 0)
            .map(|(_, &v)| self.profile.accuracy_of(v))
            .fold(self.profile.accuracy_of(0), f64::min)
    }

    /// Panics unless `config` is a valid joint configuration: `2 d` coordinates, a
    /// non-empty pool half, and in-palette variant indices.
    fn validate(&self, config: &[u32]) {
        let d = self.pool_dims();
        assert_eq!(
            config.len(),
            2 * d,
            "joint configuration has {} entries but the variant lattice has {} (pool {d} + variants {d})",
            config.len(),
            2 * d
        );
        assert!(
            config[..d].iter().any(|&c| c > 0),
            "cannot evaluate an empty pool"
        );
        let palette = self.profile.variants().len() as u32;
        for (i, &v) in config[d..].iter().enumerate() {
            assert!(
                v < palette,
                "variant coordinate {i} is {v} but the palette has {palette} variants"
            );
        }
    }

    /// The simulated latency model of one joint configuration: the workload's variant
    /// set with each pool type pinned to its assigned palette index.
    fn assigned_profile(&self, variants: &[u32]) -> AssignedVariantProfile {
        let assignment: Vec<_> = self
            .workload
            .diverse_pool
            .iter()
            .zip(variants)
            .map(|(&ty, &v)| (ty, v))
            .collect();
        AssignedVariantProfile::new(self.profile.clone(), &assignment)
    }

    /// Runs the actual joint simulation — a pure function of the evaluator's immutable
    /// state, shared by the serial and batch paths (the parallel-safety contract of
    /// [`ConfigEvaluator`] carries over unchanged).
    fn simulate_config(&self, config: &[u32]) -> Evaluation {
        let (counts, variants) = self.split(config);
        let pool = PoolSpec::from_counts(&self.workload.diverse_pool, counts);
        let assigned = self.assigned_profile(variants);
        let stats = simulate_stats(
            &pool,
            &self.queries,
            &assigned,
            self.policy.deadline_s(),
            self.policy.tail_percentile(),
        );
        let rate = self
            .policy
            .score(&QosEvidence::from_stats(&stats))
            .unwrap_or(1.0);
        Evaluation {
            config: config.to_vec(),
            hourly_cost: pool.hourly_cost(),
            satisfaction_rate: rate,
            meets_qos: self.objective.meets_qos(rate),
            objective: self.objective.value(counts, rate),
            mean_latency_s: stats.mean_latency_s,
            tail_latency_s: stats.tail_latency_s,
            tier_totals: Vec::new(),
            pool,
        }
    }

    fn simulate_config_prefix(&self, config: &[u32], k: usize) -> PrefixEvaluation {
        let k = k.min(self.queries.len());
        let (counts, variants) = self.split(config);
        let pool = PoolSpec::from_counts(&self.workload.diverse_pool, counts);
        let assigned = self.assigned_profile(variants);
        let stats = simulate_stats(
            &pool,
            &self.queries[..k],
            &assigned,
            self.policy.deadline_s(),
            self.policy.tail_percentile(),
        );
        let evidence = QosEvidence::from_stats(&stats);
        let rate = self.policy.score(&evidence).unwrap_or(1.0);
        let remaining = self.queries.len() - k;
        let ub_rate = self.policy.prefix_score_upper_bound(&evidence, remaining);
        // Same monotonicity argument as the pool-only evaluator: for a fixed joint
        // configuration Eq. 2 is nondecreasing in the rate, so a sound rate bound gives a
        // sound objective bound.
        let objective_upper_bound = self.objective.value(counts, ub_rate);
        PrefixEvaluation {
            evaluation: Evaluation {
                config: config.to_vec(),
                hourly_cost: pool.hourly_cost(),
                satisfaction_rate: rate,
                meets_qos: self.objective.meets_qos(rate),
                objective: self.objective.value(counts, rate),
                mean_latency_s: stats.mean_latency_s,
                tail_latency_s: stats.tail_latency_s,
                tier_totals: Vec::new(),
                pool,
            },
            prefix_len: k,
            objective_upper_bound,
        }
    }
}

impl BatchEvaluator for VariantEvaluator {
    fn num_queries(&self) -> usize {
        self.queries.len()
    }

    fn prefix_len(&self, fidelity: f64) -> usize {
        let n = self.queries.len();
        (((n as f64) * fidelity).ceil() as usize).clamp(1, n.max(1))
    }

    /// The joint lattice: pool bounds followed by `V − 1` for every variant coordinate.
    fn lattice(&self) -> ConfigLattice {
        let palette_top = (self.profile.variants().len() as u32).saturating_sub(1);
        let mut bounds = self.pool_bounds.clone();
        bounds.extend(std::iter::repeat_n(palette_top, self.pool_dims()));
        ConfigLattice::new(bounds)
    }

    fn target_rate(&self) -> f64 {
        self.objective.target_rate()
    }

    fn evaluate(&self, config: &[u32]) -> Evaluation {
        self.validate(config);
        if let Some(hit) = self.cache.lock().get(config) {
            return hit.clone();
        }
        let eval = self.simulate_config(config);
        self.simulations.fetch_add(1, Ordering::Relaxed);
        self.cache.lock().insert(config.to_vec(), eval.clone());
        eval
    }

    fn evaluate_many(&self, configs: &[Vec<u32>]) -> Vec<Evaluation> {
        for c in configs {
            self.validate(c);
        }
        let mut results: Vec<Option<Evaluation>> = vec![None; configs.len()];
        let mut misses: Vec<Vec<u32>> = Vec::new();
        {
            let cache = self.cache.lock();
            let mut queued: BTreeSet<&[u32]> = BTreeSet::new();
            for (slot, config) in results.iter_mut().zip(configs) {
                if let Some(hit) = cache.get(config.as_slice()) {
                    *slot = Some(hit.clone());
                } else if queued.insert(config.as_slice()) {
                    misses.push(config.clone());
                }
            }
        }
        let fresh = parallel::par_map(&misses, self.threads, |c| self.simulate_config(c));
        self.simulations.fetch_add(fresh.len(), Ordering::Relaxed);
        {
            let mut cache = self.cache.lock();
            for eval in &fresh {
                cache.insert(eval.config.clone(), eval.clone());
            }
        }
        let by_config: BTreeMap<&[u32], &Evaluation> =
            fresh.iter().map(|e| (e.config.as_slice(), e)).collect();
        results
            .into_iter()
            .zip(configs)
            .map(|(slot, config)| match slot {
                Some(eval) => eval,
                None => (*by_config
                    .get(config.as_slice())
                    .expect("every miss was simulated"))
                .clone(),
            })
            .collect()
    }

    fn evaluate_many_prefix(&self, configs: &[Vec<u32>], k: usize) -> Vec<PrefixEvaluation> {
        assert!(k > 0, "prefix length must be at least 1");
        let k = k.min(self.queries.len());
        for c in configs {
            self.validate(c);
        }
        let mut results: Vec<Option<PrefixEvaluation>> = vec![None; configs.len()];
        let mut misses: Vec<Vec<u32>> = Vec::new();
        {
            let cache = self.prefix_cache.lock();
            let mut queued: BTreeSet<&[u32]> = BTreeSet::new();
            for (slot, config) in results.iter_mut().zip(configs) {
                if let Some(hit) = cache.get(&(k, config.clone())) {
                    *slot = Some(hit.clone());
                } else if queued.insert(config.as_slice()) {
                    misses.push(config.clone());
                }
            }
        }
        let fresh = parallel::par_map(&misses, self.threads, |c| self.simulate_config_prefix(c, k));
        self.prefix_simulations
            .fetch_add(fresh.len(), Ordering::Relaxed);
        self.prefix_queries
            .fetch_add(fresh.len() * k, Ordering::Relaxed);
        {
            let mut cache = self.prefix_cache.lock();
            for pe in &fresh {
                cache.insert((k, pe.evaluation.config.clone()), pe.clone());
            }
        }
        let by_config: BTreeMap<&[u32], &PrefixEvaluation> = fresh
            .iter()
            .map(|pe| (pe.evaluation.config.as_slice(), pe))
            .collect();
        results
            .into_iter()
            .zip(configs)
            .map(|(slot, config)| match slot {
                Some(pe) => pe,
                None => (*by_config
                    .get(config.as_slice())
                    .expect("every prefix miss was simulated"))
                .clone(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ribbon_models::{ModelKind, ALL_VARIANT_KINDS};

    fn variant_workload() -> Workload {
        let mut w = Workload::standard(ModelKind::MtWnd);
        w.num_queries = 800;
        w.variants = ALL_VARIANT_KINDS.to_vec();
        w
    }

    fn settings() -> EvaluatorSettings {
        EvaluatorSettings {
            explicit_bounds: Some(vec![6, 6, 6]),
            ..Default::default()
        }
    }

    #[test]
    fn lattice_appends_a_variant_axis_per_pool_type() {
        let ev = VariantEvaluator::new(&variant_workload(), settings());
        assert_eq!(ev.pool_dims(), 3);
        assert_eq!(ev.lattice().dims(), 6);
        assert!(BatchEvaluator::lattice(&ev).contains(&[6, 6, 6, 2, 2, 2]));
        assert!(!BatchEvaluator::lattice(&ev).contains(&[1, 1, 1, 3, 0, 0]));
    }

    #[test]
    fn baseline_assignment_is_bit_identical_to_the_pool_only_evaluator() {
        let w = variant_workload();
        let joint = VariantEvaluator::new(&w, settings());
        let mut plain_w = w.clone();
        plain_w.variants.clear();
        let plain = ConfigEvaluator::new(&plain_w, settings());
        for counts in [[3u32, 1, 2], [5, 0, 0], [0, 2, 4]] {
            let j = joint.evaluate(&joint.baseline_config(&counts));
            let p = BatchEvaluator::evaluate(&plain, &counts);
            assert_eq!(
                j.satisfaction_rate.to_bits(),
                p.satisfaction_rate.to_bits(),
                "{counts:?}"
            );
            assert_eq!(j.mean_latency_s.to_bits(), p.mean_latency_s.to_bits());
            assert_eq!(j.tail_latency_s.to_bits(), p.tail_latency_s.to_bits());
            assert_eq!(j.objective.to_bits(), p.objective.to_bits());
            assert_eq!(j.hourly_cost.to_bits(), p.hourly_cost.to_bits());
        }
    }

    #[test]
    fn variant_assignment_changes_latency_but_not_cost() {
        let ev = VariantEvaluator::new(&variant_workload(), settings());
        let base = ev.evaluate(&[0, 4, 0, 0, 0, 0]);
        // m5 (pool type 1) on int8-compiled runs at 0.76× baseline speed.
        let int8 = ev.evaluate(&[0, 4, 0, 0, 2, 0]);
        assert_eq!(base.hourly_cost.to_bits(), int8.hourly_cost.to_bits());
        assert!(
            int8.mean_latency_s < base.mean_latency_s,
            "int8 on CPU must be faster: {} vs {}",
            int8.mean_latency_s,
            base.mean_latency_s
        );
        assert!(int8.satisfaction_rate >= base.satisfaction_rate);
    }

    #[test]
    fn evaluate_many_matches_serial_and_caches_jointly() {
        let ev = VariantEvaluator::new(&variant_workload(), settings());
        let configs = vec![
            vec![3u32, 1, 2, 0, 1, 2],
            vec![5, 0, 0, 1, 0, 0],
            vec![3, 1, 2, 0, 1, 2],
        ];
        let batch = ev.evaluate_many(&configs);
        assert_eq!(ev.num_simulations(), 2, "duplicates collapse");
        for (c, e) in configs.iter().zip(&batch) {
            assert_eq!(&e.config, c);
            assert_eq!(e, &ev.evaluate(c), "serial re-read must hit the cache");
        }
        assert_eq!(ev.num_simulations(), 2);
    }

    #[test]
    fn prefix_bounds_are_sound_on_the_joint_lattice() {
        let ev = VariantEvaluator::new(&variant_workload(), settings());
        let configs = vec![vec![3u32, 1, 2, 1, 2, 0], vec![2, 2, 2, 0, 0, 1]];
        let k = BatchEvaluator::prefix_len(&ev, 0.25);
        for pe in ev.evaluate_many_prefix(&configs, k) {
            let full = ev.evaluate(&pe.evaluation.config);
            assert!(
                pe.objective_upper_bound >= full.objective - 1e-12,
                "{:?}: ub {} < full {}",
                pe.evaluation.config,
                pe.objective_upper_bound,
                full.objective
            );
        }
    }

    #[test]
    fn accuracy_and_split_helpers() {
        let ev = VariantEvaluator::new(&variant_workload(), settings());
        let config = vec![2u32, 0, 3, 1, 2, 0];
        let (counts, variants) = ev.split(&config);
        assert_eq!(counts, &[2, 0, 3]);
        assert_eq!(variants, &[1, 2, 0]);
        // Type 1 is empty, so its int8 assignment does not drag worst accuracy down.
        let acc = ev.worst_accuracy(&config);
        assert_eq!(
            acc,
            ribbon_models::variants::accuracy(ModelKind::MtWnd, VariantKind::Fp16B8)
        );
        assert_eq!(
            ev.assigned_variants(&config),
            vec![
                VariantKind::Fp16B8,
                VariantKind::Int8Compiled,
                VariantKind::Fp32B1
            ]
        );
    }

    #[test]
    #[should_panic(expected = "variant coordinate")]
    fn out_of_palette_coordinates_are_rejected() {
        let ev = VariantEvaluator::new(&variant_workload(), settings());
        let _ = ev.evaluate(&[1, 1, 1, 0, 0, 3]);
    }

    #[test]
    #[should_panic(expected = "non-empty variant palette")]
    fn variantless_workloads_are_rejected() {
        let mut w = variant_workload();
        w.variants.clear();
        let _ = VariantEvaluator::new(&w, settings());
    }
}
