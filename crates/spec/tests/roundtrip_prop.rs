//! Property tests: random value trees round-trip through both wire formats
//! **bit-exactly** — `Value → TOML → Value` and `Value → JSON → Value` reproduce every
//! scalar bit-for-bit (floats compared by `to_bits`, not `==`), including float edge
//! cases (negative zero, subnormals, extreme exponents, shortest-round-trip decimals)
//! and `[[array-of-table]]` shapes with continuation headers.
//!
//! The TOML writer's canonical layout (inline keys before `[section]`s) means *value*
//! round-trips are exact when the tree is already in canonical order, which is how
//! every producer in this workspace builds tables — the generator produces canonical
//! trees and the test demands exact equality, not merely semantic equivalence.

use proptest::prelude::*;
use ribbon_spec::{json, toml, Value};

/// Deterministic splitmix64 generator — the test only needs cheap, seedable entropy.
struct Gen {
    state: u64,
}

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Float edge cases every run must exercise alongside random finite bit patterns.
const FLOAT_EDGES: [f64; 12] = [
    0.0,
    -0.0,
    1.0,
    -1.0,
    0.1,
    1.0 / 3.0,
    f64::MIN_POSITIVE, // smallest normal
    5e-324,            // smallest subnormal
    f64::MAX,
    -f64::MAX,
    1e308,
    -2.5e-3,
];

fn gen_float(g: &mut Gen, allow_inf: bool) -> f64 {
    match g.below(4) {
        0 => FLOAT_EDGES[g.below(FLOAT_EDGES.len() as u64) as usize],
        1 if allow_inf && g.below(8) == 0 => {
            if g.below(2) == 0 {
                f64::INFINITY
            } else {
                f64::NEG_INFINITY
            }
        }
        _ => loop {
            // Random bit patterns cover exponent/mantissa space uniformly; NaN is
            // excluded (payload bits are not representable in either text format).
            let x = f64::from_bits(g.next());
            if x.is_nan() || (!allow_inf && x.is_infinite()) {
                continue;
            }
            break x;
        },
    }
}

fn gen_string(g: &mut Gen) -> String {
    const PIECES: [&str; 10] = [
        "plain",
        "with space",
        "q\"uote",
        "back\\slash",
        "new\nline",
        "tab\t",
        "unicode≤π",
        "zero",
        "\u{1}ctrl",
        "end",
    ];
    let n = g.below(3) + 1;
    (0..n)
        .map(|_| PIECES[g.below(PIECES.len() as u64) as usize])
        .collect::<Vec<_>>()
        .join("-")
}

fn gen_scalar(g: &mut Gen, allow_inf: bool) -> Value {
    match g.below(4) {
        0 => Value::Bool(g.below(2) == 0),
        1 => Value::Int(g.next() as i64),
        2 => Value::Float(gen_float(g, allow_inf)),
        _ => Value::Str(gen_string(g)),
    }
}

/// An array safe for TOML's *inline* position: scalars and nested inline arrays only
/// (a non-empty all-table array would be promoted to `[[section]]` form, which
/// re-canonicalizes element order — section arrays are generated explicitly instead).
fn gen_inline_array(g: &mut Gen, depth: u32, allow_inf: bool) -> Value {
    let n = g.below(4);
    Value::Array(
        (0..n)
            .map(|_| {
                if depth > 0 && g.below(4) == 0 {
                    gen_inline_array(g, depth - 1, allow_inf)
                } else {
                    gen_scalar(g, allow_inf)
                }
            })
            .collect(),
    )
}

/// A table in TOML-canonical order: inline-expressible entries first, then
/// `[section]` tables and `[[section]]` arrays-of-tables.
fn gen_canonical_table(g: &mut Gen, depth: u32, allow_inf: bool) -> Value {
    let mut table = Value::table();
    let inline_n = g.below(4);
    for i in 0..inline_n {
        let value = if g.below(4) == 0 {
            gen_inline_array(g, 1, allow_inf)
        } else {
            gen_scalar(g, allow_inf)
        };
        table.insert(format!("k{i}"), value);
    }
    if depth > 0 {
        let section_n = g.below(3);
        for i in 0..section_n {
            if g.below(3) == 0 {
                // An array of tables: every element itself canonical.
                let elems = g.below(3) + 1;
                let items: Vec<Value> = (0..elems)
                    .map(|_| gen_canonical_table(g, depth - 1, allow_inf))
                    .collect();
                table.insert(format!("arr{i}"), Value::Array(items));
            } else {
                table.insert(
                    format!("sec{i}"),
                    gen_canonical_table(g, depth - 1, allow_inf),
                );
            }
        }
    }
    table
}

/// A JSON value tree: order and nesting unconstrained (JSON preserves both exactly).
fn gen_json_value(g: &mut Gen, depth: u32) -> Value {
    if depth == 0 {
        return gen_scalar(g, false);
    }
    match g.below(6) {
        0 => {
            let n = g.below(4);
            Value::Array((0..n).map(|_| gen_json_value(g, depth - 1)).collect())
        }
        1 | 2 => {
            let mut t = Value::table();
            for i in 0..g.below(5) {
                // Mixed order on purpose: scalars and tables interleave freely.
                t.insert(
                    format!("k{i}-{}", gen_string(g)),
                    gen_json_value(g, depth - 1),
                );
            }
            t
        }
        _ => gen_scalar(g, false),
    }
}

/// Bit-exact structural equality: floats by `to_bits`, everything else by value.
fn assert_bit_eq(a: &Value, b: &Value, path: &str) {
    match (a, b) {
        (Value::Float(x), Value::Float(y)) => {
            assert_eq!(x.to_bits(), y.to_bits(), "float bits diverged at {path}");
        }
        (Value::Array(xs), Value::Array(ys)) => {
            assert_eq!(xs.len(), ys.len(), "array length diverged at {path}");
            for (i, (x, y)) in xs.iter().zip(ys).enumerate() {
                assert_bit_eq(x, y, &format!("{path}[{i}]"));
            }
        }
        (Value::Table(xs), Value::Table(ys)) => {
            assert_eq!(
                xs.iter().map(|(k, _)| k).collect::<Vec<_>>(),
                ys.iter().map(|(k, _)| k).collect::<Vec<_>>(),
                "table keys diverged at {path}"
            );
            for ((k, x), (_, y)) in xs.iter().zip(ys) {
                assert_bit_eq(x, y, &format!("{path}.{k}"));
            }
        }
        _ => assert_eq!(a, b, "value diverged at {path}"),
    }
}

proptest! {
    #[test]
    fn prop_toml_roundtrip_is_bit_exact(seed in 0u64..u64::MAX) {
        let mut g = Gen::new(seed);
        let tree = gen_canonical_table(&mut g, 3, true);
        let text = toml::to_string(&tree).expect("canonical trees are TOML-expressible");
        let reparsed = toml::parse(&text)
            .unwrap_or_else(|e| panic!("seed {seed}: reparse failed: {e}\n{text}"));
        assert_bit_eq(&tree, &reparsed, "root");
    }

    #[test]
    fn prop_json_roundtrip_is_bit_exact(seed in 0u64..u64::MAX) {
        let mut g = Gen::new(seed);
        // JSON documents in this workspace are always object-rooted.
        let mut tree = gen_json_value(&mut g, 3);
        if tree.as_table().is_none() {
            let mut root = Value::table();
            root.insert("root", tree);
            tree = root;
        }
        let text = json::to_string(&tree);
        let reparsed = json::parse(&text)
            .unwrap_or_else(|e| panic!("seed {seed}: reparse failed: {e}\n{text}"));
        assert_bit_eq(&tree, &reparsed, "root");
    }

    #[test]
    fn prop_toml_json_cross_agree_on_finite_trees(seed in 0u64..u64::MAX) {
        // The same canonical tree pushed through BOTH formats must come back bit-equal
        // to itself through each — i.e. the two wire formats agree on every value the
        // workspace can express in both.
        let mut g = Gen::new(seed);
        let tree = gen_canonical_table(&mut g, 2, false);
        let via_toml = toml::parse(&toml::to_string(&tree).unwrap()).unwrap();
        let via_json = json::parse(&json::to_string(&tree)).unwrap();
        assert_bit_eq(&via_toml, &via_json, "root");
    }
}

#[test]
fn float_edge_cases_round_trip_bit_exactly_in_both_formats() {
    for (i, &x) in FLOAT_EDGES.iter().enumerate() {
        let mut t = Value::table();
        t.insert("x", Value::Float(x));
        let via_toml = toml::parse(&toml::to_string(&t).unwrap()).unwrap();
        assert_eq!(
            via_toml.get("x").unwrap().as_f64().unwrap().to_bits(),
            x.to_bits(),
            "TOML edge case #{i} ({x:?})"
        );
        let via_json = json::parse(&json::to_string(&t)).unwrap();
        assert_eq!(
            via_json.get("x").unwrap().as_f64().unwrap().to_bits(),
            x.to_bits(),
            "JSON edge case #{i} ({x:?})"
        );
    }
    // Infinities are TOML-only (JSON nulls them — pinned by the json unit tests).
    for x in [f64::INFINITY, f64::NEG_INFINITY] {
        let mut t = Value::table();
        t.insert("x", Value::Float(x));
        let back = toml::parse(&toml::to_string(&t).unwrap()).unwrap();
        assert_eq!(
            back.get("x").unwrap().as_f64().unwrap().to_bits(),
            x.to_bits()
        );
    }
}

#[test]
fn array_of_tables_with_continuation_headers_round_trips() {
    // The `[[model]]` + `[model.workload]` shape fleet files use: sub-table headers
    // under *each* array element are distinct tables, not duplicate definitions.
    let doc = r#"
[fleet]
name = "duo"

[[model]]
weight = 1.5

[model.workload]
model = "MT-WND"
qps = 1400.0

[[model]]
weight = 2.5

[model.workload]
model = "DIEN"

[model.workload.inner]
deep = true
"#;
    let v = toml::parse(doc).expect("continuation headers parse");
    let models = v.get("model").unwrap().as_array().unwrap();
    assert_eq!(models.len(), 2);
    assert_eq!(
        models[0]
            .get("workload")
            .unwrap()
            .get("model")
            .unwrap()
            .as_str(),
        Some("MT-WND")
    );
    assert_eq!(
        models[1]
            .get("workload")
            .unwrap()
            .get("inner")
            .unwrap()
            .get("deep")
            .unwrap()
            .as_bool(),
        Some(true)
    );
    // And the whole shape round-trips bit-exactly.
    let emitted = toml::to_string(&v).unwrap();
    let reparsed = toml::parse(&emitted).unwrap();
    assert_bit_eq(&v, &reparsed, "root");

    // Re-defining the SAME element's sub-table is still a duplicate.
    let dup = "[[model]]\n[model.workload]\nx = 1\n[model.workload]\ny = 2\n";
    assert!(
        toml::parse(dup).is_err(),
        "same-element redefinition must fail"
    );
}
