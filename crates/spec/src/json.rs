//! JSON reader/writer over the same [`Value`] tree as the TOML module.
//!
//! JSON is the report format (`ribbon run --out report.json`) and an accepted input
//! format for scenario specs. Objects preserve key order; numbers parse as
//! [`Value::Int`] when they carry no fraction or exponent, [`Value::Float`] otherwise,
//! so a value round-trips through either format without changing type. Non-finite
//! floats serialize as `null` (JSON has no spelling for them); reports avoid them by
//! construction.

use crate::toml::{format_float, quote_string};
use crate::value::{SpecError, Value};

/// Parses a JSON document.
pub fn parse(input: &str) -> Result<Value, SpecError> {
    let mut p = Parser {
        chars: input.chars().collect(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if let Some(c) = p.peek() {
        return Err(p.err(format!("unexpected `{c}` after the document")));
    }
    Ok(v)
}

/// Serializes a value as pretty-printed JSON (2-space indent, trailing newline).
pub fn to_string(value: &Value) -> String {
    let mut out = String::new();
    emit(&mut out, value, 0);
    out.push('\n');
    out
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn advance(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.pos += 1;
        }
    }

    fn line(&self) -> usize {
        1 + self.chars[..self.pos]
            .iter()
            .filter(|&&c| c == '\n')
            .count()
    }

    fn err(&self, message: impl Into<String>) -> SpecError {
        SpecError::syntax(self.line(), message)
    }

    fn parse_value(&mut self) -> Result<Value, SpecError> {
        self.skip_ws();
        match self.peek() {
            Some('{') => self.parse_object(),
            Some('[') => self.parse_array(),
            Some('"') => self.parse_string().map(Value::Str),
            Some('t') | Some('f') | Some('n') => self.parse_keyword(),
            Some(c) if c.is_ascii_digit() || c == '-' => self.parse_number(),
            Some(c) => Err(self.err(format!("unexpected `{c}`"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_object(&mut self) -> Result<Value, SpecError> {
        self.advance(); // '{'
        let mut table = Value::table();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.advance();
            return Ok(table);
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            if self.advance() != Some(':') {
                return Err(self.err("expected `:`"));
            }
            let value = self.parse_value()?;
            if table.get(&key).is_some() {
                return Err(self.err(format!("duplicate key `{key}`")));
            }
            table.insert(key, value);
            self.skip_ws();
            match self.advance() {
                Some(',') => {}
                Some('}') => return Ok(table),
                Some(c) => return Err(self.err(format!("expected `,` or `}}`, found `{c}`"))),
                None => return Err(self.err("unterminated object")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, SpecError> {
        self.advance(); // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.advance();
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.advance() {
                Some(',') => {}
                Some(']') => return Ok(Value::Array(items)),
                Some(c) => return Err(self.err(format!("expected `,` or `]`, found `{c}`"))),
                None => return Err(self.err("unterminated array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, SpecError> {
        if self.advance() != Some('"') {
            return Err(self.err("expected a string"));
        }
        let mut out = String::new();
        loop {
            match self.advance() {
                None => return Err(self.err("unterminated string")),
                Some('"') => return Ok(out),
                Some('\\') => match self.advance() {
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some('r') => out.push('\r'),
                    Some('b') => out.push('\u{8}'),
                    Some('f') => out.push('\u{c}'),
                    Some('/') => out.push('/'),
                    Some('\\') => out.push('\\'),
                    Some('"') => out.push('"'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .advance()
                                .and_then(|c| c.to_digit(16))
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            code = code * 16 + d;
                        }
                        out.push(
                            char::from_u32(code).ok_or_else(|| self.err("invalid \\u escape"))?,
                        );
                    }
                    Some(c) => return Err(self.err(format!("unsupported escape `\\{c}`"))),
                    None => return Err(self.err("unterminated string")),
                },
                Some(c) => out.push(c),
            }
        }
    }

    fn parse_keyword(&mut self) -> Result<Value, SpecError> {
        let mut word = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphabetic() {
                word.push(c);
                self.advance();
            } else {
                break;
            }
        }
        match word.as_str() {
            "true" => Ok(Value::Bool(true)),
            "false" => Ok(Value::Bool(false)),
            // JSON null only arises for the non-finite floats the writer mapped there.
            "null" => Ok(Value::Float(f64::NAN)),
            _ => Err(self.err(format!("unrecognized keyword `{word}`"))),
        }
    }

    fn parse_number(&mut self) -> Result<Value, SpecError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E') {
                self.advance();
            } else {
                break;
            }
        }
        let raw: String = self.chars[start..self.pos].iter().collect();
        if raw.contains(['.', 'e', 'E']) {
            raw.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err(format!("invalid number `{raw}`")))
        } else {
            raw.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| self.err(format!("invalid number `{raw}`")))
        }
    }
}

fn emit(out: &mut String, value: &Value, indent: usize) {
    match value {
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                out.push_str(&format_float(*x));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => out.push_str(&quote_string(s)),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                push_indent(out, indent + 1);
                emit(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Table(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                push_indent(out, indent + 1);
                out.push_str(&quote_string(k));
                out.push_str(": ");
                emit(out, v, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(doc: &str) -> Value {
        let v = parse(doc).expect("parse");
        let emitted = to_string(&v);
        let reparsed = parse(&emitted).unwrap_or_else(|e| panic!("reparse {emitted}: {e}"));
        assert_eq!(v, reparsed, "round-trip changed the value:\n{emitted}");
        v
    }

    #[test]
    fn parses_nested_documents() {
        let v = roundtrip(
            r#"{"name": "x", "n": 3, "rate": 0.5, "flags": [true, false],
                "nested": {"a": [1, 2.5], "empty": {}, "none": []}}"#,
        );
        assert_eq!(v.get("n").unwrap().as_i64(), Some(3));
        assert_eq!(v.get("rate").unwrap().as_f64(), Some(0.5));
        assert_eq!(
            v.get("nested")
                .unwrap()
                .get("a")
                .unwrap()
                .as_array()
                .unwrap()
                .len(),
            2
        );
    }

    #[test]
    fn int_float_distinction_survives() {
        let v = roundtrip(r#"{"i": 4, "f": 4.0, "e": 1e-6}"#);
        assert_eq!(v.get("i").unwrap(), &Value::Int(4));
        assert_eq!(v.get("f").unwrap(), &Value::Float(4.0));
        assert_eq!(v.get("e").unwrap(), &Value::Float(1e-6));
    }

    #[test]
    fn string_escapes() {
        let v = roundtrip(r#"{"s": "a\nb\t\"q\" \\ A"}"#);
        assert_eq!(v.get("s").unwrap().as_str(), Some("a\nb\t\"q\" \\ A"));
    }

    #[test]
    fn non_finite_floats_become_null() {
        let s = to_string(&Value::Float(f64::INFINITY));
        assert_eq!(s.trim(), "null");
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse(r#"{"a": 1,}"#).is_err());
        assert!(parse(r#"{"a": 1} trailing"#).is_err());
        assert!(parse(r#"{"a": 1, "a": 2}"#).is_err());
        let e = parse("{\n  \"a\": bad\n}").unwrap_err();
        assert!(e.path.contains("line 2"), "{e}");
    }

    #[test]
    fn scalar_documents_parse() {
        assert_eq!(parse("42").unwrap(), Value::Int(42));
        assert_eq!(parse("\"x\"").unwrap(), Value::Str("x".into()));
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
    }
}
