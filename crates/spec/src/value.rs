//! The format-agnostic value tree that scenario files and reports are built from.
//!
//! [`Value`] is the common denominator of the TOML subset ([`crate::toml`]) and JSON
//! ([`crate::json`]): booleans, integers, floats, strings, arrays, and order-preserving
//! tables. Order preservation matters for lossless round-trips — a spec serialized and
//! re-parsed must compare equal key for key, in order.

use std::fmt;

/// A parse- or schema-level error, tagged with the path of the offending value
/// (e.g. `qos.latency_ms`) or the line of the syntax error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// Dotted path of the value (schema errors) or `line N` (syntax errors).
    pub path: String,
    /// Human-readable description of what is wrong.
    pub message: String,
}

impl SpecError {
    /// Creates an error at a dotted path.
    pub fn at(path: impl Into<String>, message: impl Into<String>) -> Self {
        SpecError {
            path: path.into(),
            message: message.into(),
        }
    }

    /// Creates a syntax error at a 1-based line number.
    pub fn syntax(line: usize, message: impl Into<String>) -> Self {
        SpecError {
            path: format!("line {line}"),
            message: message.into(),
        }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.path.is_empty() {
            write!(f, "{}", self.message)
        } else {
            write!(f, "{}: {}", self.path, self.message)
        }
    }
}

impl std::error::Error for SpecError {}

/// A dynamically typed configuration value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `true` / `false`.
    Bool(bool),
    /// A 64-bit signed integer.
    Int(i64),
    /// A 64-bit float. Integers and floats are distinct so round-trips are lossless.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence of values.
    Array(Vec<Value>),
    /// An order-preserving map. Keys are unique (enforced by the parsers and
    /// [`Value::insert`]).
    Table(Vec<(String, Value)>),
}

impl Value {
    /// An empty table.
    pub fn table() -> Value {
        Value::Table(Vec::new())
    }

    /// Name of the variant, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Bool(_) => "bool",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Table(_) => "table",
        }
    }

    /// Looks a key up in a table; `None` for missing keys or non-table receivers.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Table(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Inserts (or replaces) a key in a table. Panics if the receiver is not a table —
    /// builder-side misuse, not a data error.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) {
        let key = key.into();
        match self {
            Value::Table(entries) => {
                if let Some(slot) = entries.iter_mut().find(|(k, _)| *k == key) {
                    slot.1 = value;
                } else {
                    entries.push((key, value));
                }
            }
            // lint:allow(no-panic): builder-API contract violation (documented above);
            // unreachable from parsed user input, which only inserts under tables.
            _ => panic!("Value::insert on a non-table value"),
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The numeric payload as a float; integers widen losslessly enough for config use.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(*x),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The entry list, if this is a table.
    pub fn as_table(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Table(entries) => Some(entries),
            _ => None,
        }
    }

    /// Keys of a table, in order (empty for non-tables).
    pub fn keys(&self) -> Vec<&str> {
        match self {
            Value::Table(entries) => entries.iter().map(|(k, _)| k.as_str()).collect(),
            _ => Vec::new(),
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Value {
        Value::Int(i)
    }
}

impl From<u32> for Value {
    fn from(i: u32) -> Value {
        Value::Int(i as i64)
    }
}

impl From<usize> for Value {
    fn from(i: usize) -> Value {
        Value::Int(i as i64)
    }
}

impl From<u64> for Value {
    fn from(i: u64) -> Value {
        // Seeds and counts in this workspace fit i64; saturate rather than wrap so a
        // pathological value fails loudly at the schema layer (it will not round-trip).
        Value::Int(i64::try_from(i).unwrap_or(i64::MAX))
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Value {
        Value::Float(x)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Value {
        Value::Array(items.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_replaces_and_preserves_order() {
        let mut t = Value::table();
        t.insert("a", Value::Int(1));
        t.insert("b", Value::Int(2));
        t.insert("a", Value::Int(3));
        assert_eq!(t.keys(), vec!["a", "b"]);
        assert_eq!(t.get("a"), Some(&Value::Int(3)));
        assert_eq!(t.get("missing"), None);
    }

    #[test]
    fn accessors_match_variants() {
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Int(4).as_i64(), Some(4));
        assert_eq!(Value::Int(4).as_f64(), Some(4.0));
        assert_eq!(Value::Float(0.5).as_f64(), Some(0.5));
        assert_eq!(Value::Float(0.5).as_i64(), None);
        assert_eq!(Value::Str("x".into()).as_str(), Some("x"));
        assert!(Value::from(vec![1i64, 2]).as_array().is_some());
        assert_eq!(Value::Bool(true).type_name(), "bool");
    }

    #[test]
    #[should_panic(expected = "non-table")]
    fn insert_on_scalar_panics() {
        Value::Int(1).insert("k", Value::Int(2));
    }

    #[test]
    fn error_display_includes_path() {
        let e = SpecError::at("qos.latency_ms", "must be positive");
        assert_eq!(e.to_string(), "qos.latency_ms: must be positive");
        let s = SpecError::syntax(3, "unexpected ']'");
        assert_eq!(s.to_string(), "line 3: unexpected ']'");
    }
}
