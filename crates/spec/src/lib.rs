//! # ribbon-spec
//!
//! The declarative substrate of the scenario façade: a format-agnostic, order-preserving
//! [`Value`] tree with offline TOML ([`toml`]) and JSON ([`json`]) readers and writers.
//!
//! This crate exists because the workspace builds in network-isolated environments where
//! the vendored `serde` is a no-op marker shim (see `vendor/README.md`): scenario files
//! and reports need a *real* wire format, so this crate implements one from scratch —
//! exactly the subset the scenario layer needs, with line-tagged parse errors and
//! bit-exact float round-trips.
//!
//! ```
//! use ribbon_spec::{toml, Value};
//!
//! let spec = toml::parse("name = \"demo\"\n[qos]\nlatency_ms = 20.0\n").unwrap();
//! assert_eq!(spec.get("name").and_then(Value::as_str), Some("demo"));
//! assert_eq!(
//!     spec.get("qos").and_then(|q| q.get("latency_ms")).and_then(Value::as_f64),
//!     Some(20.0),
//! );
//! ```

pub mod json;
pub mod toml;
mod value;

pub use value::{SpecError, Value};

/// The on-disk formats the scenario layer understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// TOML (the default for scenario files).
    Toml,
    /// JSON (reports, and accepted for specs too).
    Json,
}

impl Format {
    /// Picks a format from a file name: `.json` means JSON, everything else TOML.
    pub fn from_path(path: &str) -> Format {
        if path
            .rsplit('.')
            .next()
            .is_some_and(|e| e.eq_ignore_ascii_case("json"))
        {
            Format::Json
        } else {
            Format::Toml
        }
    }

    /// Parses a document in this format.
    pub fn parse(&self, input: &str) -> Result<Value, SpecError> {
        match self {
            Format::Toml => toml::parse(input),
            Format::Json => json::parse(input),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_detection() {
        assert_eq!(Format::from_path("a/b/run.json"), Format::Json);
        assert_eq!(Format::from_path("a/b/run.JSON"), Format::Json);
        assert_eq!(Format::from_path("scenario.toml"), Format::Toml);
        assert_eq!(Format::from_path("no_extension"), Format::Toml);
    }

    #[test]
    fn the_same_value_survives_both_formats() {
        let doc = "name = \"x\"\nbounds = [1, 2]\n[qos]\nrate = 0.99\n";
        let v = toml::parse(doc).unwrap();
        let via_json = json::parse(&json::to_string(&v)).unwrap();
        assert_eq!(v, via_json);
        let via_toml = toml::parse(&toml::to_string(&via_json).unwrap()).unwrap();
        assert_eq!(v, via_toml);
    }
}
