//! A self-contained reader/writer for the TOML subset scenario files use.
//!
//! Supported on the way in: `[table]` and `[[array-of-tables]]` headers (dotted paths),
//! bare/quoted/dotted keys, basic `"…"` and literal `'…'` strings, booleans,
//! integers (with `_` separators), floats (including `inf`/`nan` and exponent forms),
//! arrays (nested, multi-line), and inline tables. Dates and multi-line strings are not
//! supported — scenario files do not need them, and an unsupported construct fails with a
//! line-tagged [`SpecError`] instead of being silently misread.
//!
//! On the way out, [`to_string`] emits a canonical form: within each table, inline
//! key/value pairs first, then `[section]`s and `[[section arrays]]`. Parsing the writer's
//! output reproduces the value exactly *if* the value already interleaves entries that
//! way; otherwise one write→parse pass canonicalizes the order (and is idempotent from
//! then on). Typed specs compare structurally, so schema-level round-trips are exact
//! either way.

use crate::value::{SpecError, Value};
use std::collections::HashSet;

/// Parses a TOML document into a [`Value::Table`].
pub fn parse(input: &str) -> Result<Value, SpecError> {
    let mut root = Value::table();
    let mut explicit_headers: HashSet<String> = HashSet::new();
    // Path of the table subsequent key/value lines land in (`[]` = root).
    let mut current_path: Vec<String> = Vec::new();

    for (line_no, logical) in logical_lines(input)? {
        let line = logical.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("[[") {
            let inner = rest
                .strip_suffix("]]")
                .ok_or_else(|| SpecError::syntax(line_no, "unterminated [[table]] header"))?;
            let path = parse_key_path(inner, line_no)?;
            append_array_table(&mut root, &path, line_no)?;
            current_path = path;
        } else if let Some(rest) = line.strip_prefix('[') {
            let inner = rest
                .strip_suffix(']')
                .ok_or_else(|| SpecError::syntax(line_no, "unterminated [table] header"))?;
            let path = parse_key_path(inner, line_no)?;
            // Header identity accounts for array-of-tables elements: `[model.workload]`
            // under the *second* `[[model]]` is a different table than under the first,
            // so the duplicate check keys on the resolved element indices.
            let resolved = resolved_header_key(&root, &path);
            if !explicit_headers.insert(resolved) {
                return Err(SpecError::syntax(
                    line_no,
                    format!("table [{}] defined twice", path.join(".")),
                ));
            }
            define_table(&mut root, &path, line_no)?;
            current_path = path;
        } else {
            let eq = find_unquoted_eq(line)
                .ok_or_else(|| SpecError::syntax(line_no, "expected `key = value`"))?;
            let key_path = parse_key_path(&line[..eq], line_no)?;
            let mut p = Parser::new(&line[eq + 1..], line_no);
            let value = p.parse_value()?;
            p.expect_end()?;
            let table = navigate(&mut root, &current_path, line_no)?;
            insert_at(table, &key_path, value, line_no)?;
        }
    }
    Ok(root)
}

/// Serializes a table value as a TOML document (canonical layout; see the module docs).
///
/// Fails if the root is not a table or the tree contains a shape TOML cannot express
/// (e.g. a non-string-keyed construct never arises here, but a scalar root does).
pub fn to_string(root: &Value) -> Result<String, SpecError> {
    let entries = root
        .as_table()
        .ok_or_else(|| SpecError::at("", "TOML document root must be a table"))?;
    let mut out = String::new();
    emit_table(&mut out, &mut Vec::new(), entries)?;
    if out.starts_with('\n') {
        out.remove(0);
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Lexical pass: comments stripped, bracket-continued lines joined.
// ---------------------------------------------------------------------------

/// Splits the input into logical lines: comments removed, lines with open `[`/`{`
/// brackets joined with the following line(s). Returns `(first physical line, text)`.
fn logical_lines(input: &str) -> Result<Vec<(usize, String)>, SpecError> {
    let mut lines = Vec::new();
    let mut buf = String::new();
    let mut start_line = 1usize;
    let mut line_no = 1usize;
    let mut depth = 0i32;
    let mut chars = input.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '\n' => {
                if depth == 0 {
                    if !buf.trim().is_empty() {
                        lines.push((start_line, std::mem::take(&mut buf)));
                    } else {
                        buf.clear();
                    }
                    start_line = line_no + 1;
                } else {
                    buf.push(' ');
                }
                line_no += 1;
            }
            '#' => {
                // Comment: skip to (not past) the newline.
                for d in chars.by_ref() {
                    if d == '\n' {
                        if depth == 0 {
                            if !buf.trim().is_empty() {
                                lines.push((start_line, std::mem::take(&mut buf)));
                            } else {
                                buf.clear();
                            }
                            start_line = line_no + 1;
                        } else {
                            buf.push(' ');
                        }
                        break;
                    }
                }
                line_no += 1;
            }
            '"' | '\'' => {
                let quote = c;
                buf.push(c);
                let mut escaped = false;
                let mut closed = false;
                for d in chars.by_ref() {
                    if d == '\n' {
                        return Err(SpecError::syntax(line_no, "unterminated string"));
                    }
                    buf.push(d);
                    if escaped {
                        escaped = false;
                    } else if d == '\\' && quote == '"' {
                        escaped = true;
                    } else if d == quote {
                        closed = true;
                        break;
                    }
                }
                if !closed {
                    return Err(SpecError::syntax(line_no, "unterminated string"));
                }
            }
            '[' | '{' => {
                // Header brackets at column 0 of a logical line do not continue lines —
                // they close on the same line — but counting them is harmless because
                // the matching `]` arrives before the newline.
                depth += 1;
                buf.push(c);
            }
            ']' | '}' => {
                depth -= 1;
                if depth < 0 {
                    return Err(SpecError::syntax(line_no, format!("unexpected `{c}`")));
                }
                buf.push(c);
            }
            _ => buf.push(c),
        }
    }
    if depth != 0 {
        return Err(SpecError::syntax(
            line_no,
            "unclosed bracket at end of input",
        ));
    }
    if !buf.trim().is_empty() {
        lines.push((start_line, buf));
    }
    Ok(lines)
}

/// Canonical identity of a `[header]` path: segments that traverse an array of tables
/// carry the index of the element they address (always the last one, per TOML's
/// continuation rule), so re-defining a sub-table under a *new* `[[element]]` is not a
/// duplicate of the previous element's sub-table.
fn resolved_header_key(root: &Value, path: &[String]) -> String {
    let mut key = String::new();
    let mut node = Some(root);
    for seg in path {
        if !key.is_empty() {
            key.push('.');
        }
        match node.and_then(|n| n.get(seg)) {
            Some(Value::Array(items)) => {
                key.push_str(&format!("{seg}[{}]", items.len().saturating_sub(1)));
                node = items.last();
            }
            Some(next @ Value::Table(_)) => {
                key.push_str(seg);
                node = Some(next);
            }
            _ => {
                key.push_str(seg);
                node = None;
            }
        }
    }
    key
}

/// Position of the first `=` outside quotes, if any.
fn find_unquoted_eq(line: &str) -> Option<usize> {
    let mut in_basic = false;
    let mut in_literal = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_basic => escaped = true,
            '"' if !in_literal => in_basic = !in_basic,
            '\'' if !in_basic => in_literal = !in_literal,
            '=' if !in_basic && !in_literal => return Some(i),
            _ => {}
        }
    }
    None
}

/// Parses a dotted key path: bare segments or quoted segments separated by `.`.
fn parse_key_path(s: &str, line: usize) -> Result<Vec<String>, SpecError> {
    let mut segments = Vec::new();
    let mut p = Parser::new(s, line);
    loop {
        p.skip_ws();
        let seg = match p.peek() {
            Some('"') | Some('\'') => p.parse_string()?,
            Some(c) if is_bare_key_char(c) => {
                let mut seg = String::new();
                while let Some(c) = p.peek() {
                    if is_bare_key_char(c) {
                        seg.push(c);
                        p.advance();
                    } else {
                        break;
                    }
                }
                seg
            }
            _ => return Err(SpecError::syntax(line, format!("invalid key `{s}`"))),
        };
        segments.push(seg);
        p.skip_ws();
        match p.peek() {
            Some('.') => {
                p.advance();
            }
            None => break,
            Some(c) => {
                return Err(SpecError::syntax(
                    line,
                    format!("unexpected `{c}` in key `{s}`"),
                ))
            }
        }
    }
    if segments.is_empty() {
        return Err(SpecError::syntax(line, "empty key"));
    }
    Ok(segments)
}

fn is_bare_key_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '-'
}

// ---------------------------------------------------------------------------
// Tree navigation for headers and dotted keys.
// ---------------------------------------------------------------------------

/// Walks one segment down, creating an empty table if the key is absent. Entering an
/// array of tables means entering its *last* element (TOML's `[[x]]` continuation rule).
fn enter<'a>(node: &'a mut Value, seg: &str, line: usize) -> Result<&'a mut Value, SpecError> {
    let Value::Table(entries) = node else {
        return Err(SpecError::syntax(line, format!("`{seg}` is not a table")));
    };
    let idx = match entries.iter().position(|(k, _)| k == seg) {
        Some(i) => i,
        None => {
            entries.push((seg.to_string(), Value::table()));
            entries.len() - 1
        }
    };
    let slot = &mut entries[idx].1;
    match slot {
        Value::Table(_) => Ok(slot),
        Value::Array(items) => match items.last_mut() {
            Some(last @ Value::Table(_)) => Ok(last),
            _ => Err(SpecError::syntax(
                line,
                format!("cannot extend non-table array `{seg}`"),
            )),
        },
        _ => Err(SpecError::syntax(
            line,
            format!("key `{seg}` already holds a {}", slot.type_name()),
        )),
    }
}

fn navigate<'a>(
    root: &'a mut Value,
    path: &[String],
    line: usize,
) -> Result<&'a mut Value, SpecError> {
    let mut node = root;
    for seg in path {
        node = enter(node, seg, line)?;
    }
    Ok(node)
}

/// Defines (or re-enters) the table at `path` for a `[path]` header.
///
/// Intermediate segments may traverse arrays of tables (TOML's `[a.b]` under `[[a]]`
/// addresses the last element), but the *final* segment must name a table: `[x]` after
/// `[[x]]` is a single/double-bracket mix-up that must error, not silently merge keys
/// into the last array element.
fn define_table(root: &mut Value, path: &[String], line: usize) -> Result<(), SpecError> {
    let Some((last, parents)) = path.split_last() else {
        return Err(SpecError::syntax(line, "empty table header"));
    };
    let parent = navigate(root, parents, line)?;
    let Value::Table(entries) = parent else {
        return Err(SpecError::syntax(line, "header path does not name a table"));
    };
    match entries.iter_mut().find(|(k, _)| k == last) {
        None => {
            entries.push((last.clone(), Value::table()));
            Ok(())
        }
        Some((_, Value::Table(_))) => Ok(()),
        Some((_, Value::Array(_))) => Err(SpecError::syntax(
            line,
            format!("`{last}` is an array of tables; use [[{last}]] to append an element"),
        )),
        Some((_, v)) => Err(SpecError::syntax(
            line,
            format!("key `{last}` already holds a {}", v.type_name()),
        )),
    }
}

/// Appends a fresh element to the array of tables at `path` for a `[[path]]` header.
fn append_array_table(root: &mut Value, path: &[String], line: usize) -> Result<(), SpecError> {
    let Some((last, parents)) = path.split_last() else {
        return Err(SpecError::syntax(line, "empty table header"));
    };
    let parent = navigate(root, parents, line)?;
    let Value::Table(entries) = parent else {
        return Err(SpecError::syntax(line, "header path does not name a table"));
    };
    match entries.iter_mut().find(|(k, _)| k == last) {
        None => {
            entries.push((last.clone(), Value::Array(vec![Value::table()])));
            Ok(())
        }
        Some((_, Value::Array(items))) if items.iter().all(|v| v.as_table().is_some()) => {
            items.push(Value::table());
            Ok(())
        }
        Some(_) => Err(SpecError::syntax(
            line,
            format!("key `{last}` is not an array of tables"),
        )),
    }
}

/// Inserts a value at a (possibly dotted) key path under `table`, rejecting duplicates.
fn insert_at(
    table: &mut Value,
    key_path: &[String],
    value: Value,
    line: usize,
) -> Result<(), SpecError> {
    let Some((last, parents)) = key_path.split_last() else {
        return Err(SpecError::syntax(line, "empty key"));
    };
    let target = navigate(table, parents, line)?;
    let Value::Table(entries) = target else {
        return Err(SpecError::syntax(line, "key path does not name a table"));
    };
    if entries.iter().any(|(k, _)| k == last) {
        return Err(SpecError::syntax(line, format!("duplicate key `{last}`")));
    }
    entries.push((last.clone(), value));
    Ok(())
}

// ---------------------------------------------------------------------------
// Value parser (shared by TOML assignments and inline constructs).
// ---------------------------------------------------------------------------

struct Parser {
    chars: Vec<char>,
    pos: usize,
    line: usize,
}

impl Parser {
    fn new(s: &str, line: usize) -> Parser {
        Parser {
            chars: s.chars().collect(),
            pos: 0,
            line,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn advance(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        // `\r` counts as whitespace so CRLF files parse: logical-line joining replaces
        // the `\n` of a continued line but leaves the preceding `\r` in the buffer.
        while matches!(self.peek(), Some(' ') | Some('\t') | Some('\r')) {
            self.pos += 1;
        }
    }

    fn err(&self, message: impl Into<String>) -> SpecError {
        SpecError::syntax(self.line, message)
    }

    fn expect_end(&mut self) -> Result<(), SpecError> {
        self.skip_ws();
        match self.peek() {
            None => Ok(()),
            Some(c) => Err(self.err(format!("unexpected `{c}` after value"))),
        }
    }

    fn parse_value(&mut self) -> Result<Value, SpecError> {
        self.skip_ws();
        match self.peek() {
            Some('"') | Some('\'') => self.parse_string().map(Value::Str),
            Some('[') => self.parse_array(),
            Some('{') => self.parse_inline_table(),
            Some(c) if c == 't' || c == 'f' => self.parse_keyword(),
            Some(c) if c.is_ascii_digit() || c == '+' || c == '-' || c == 'i' || c == 'n' => {
                self.parse_number()
            }
            Some(c) => Err(self.err(format!("unexpected `{c}`"))),
            None => Err(self.err("expected a value")),
        }
    }

    fn parse_string(&mut self) -> Result<String, SpecError> {
        let Some(quote) = self.advance() else {
            return Err(self.err("expected a quoted string"));
        };
        let mut out = String::new();
        loop {
            match self.advance() {
                None => return Err(self.err("unterminated string")),
                Some(c) if c == quote => return Ok(out),
                Some('\\') if quote == '"' => match self.advance() {
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some('r') => out.push('\r'),
                    Some('\\') => out.push('\\'),
                    Some('"') => out.push('"'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .advance()
                                .and_then(|c| c.to_digit(16))
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            code = code * 16 + d;
                        }
                        out.push(
                            char::from_u32(code).ok_or_else(|| self.err("invalid \\u escape"))?,
                        );
                    }
                    Some(c) => return Err(self.err(format!("unsupported escape `\\{c}`"))),
                    None => return Err(self.err("unterminated string")),
                },
                Some(c) => out.push(c),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, SpecError> {
        self.advance(); // '['
        let mut items = Vec::new();
        loop {
            self.skip_ws();
            if self.peek() == Some(']') {
                self.advance();
                return Ok(Value::Array(items));
            }
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(',') => {
                    self.advance();
                }
                Some(']') => {}
                Some(c) => return Err(self.err(format!("expected `,` or `]`, found `{c}`"))),
                None => return Err(self.err("unterminated array")),
            }
        }
    }

    fn parse_inline_table(&mut self) -> Result<Value, SpecError> {
        self.advance(); // '{'
        let mut table = Value::table();
        loop {
            self.skip_ws();
            if self.peek() == Some('}') {
                self.advance();
                return Ok(table);
            }
            // Key: bare or quoted (no dotted keys inside inline tables — keep it strict).
            let key = match self.peek() {
                Some('"') | Some('\'') => self.parse_string()?,
                Some(c) if is_bare_key_char(c) => {
                    let mut k = String::new();
                    while let Some(c) = self.peek() {
                        if is_bare_key_char(c) {
                            k.push(c);
                            self.advance();
                        } else {
                            break;
                        }
                    }
                    k
                }
                _ => return Err(self.err("expected a key in inline table")),
            };
            self.skip_ws();
            if self.advance() != Some('=') {
                return Err(self.err("expected `=` in inline table"));
            }
            let value = self.parse_value()?;
            if table.get(&key).is_some() {
                return Err(self.err(format!("duplicate key `{key}` in inline table")));
            }
            table.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(',') => {
                    self.advance();
                }
                Some('}') => {}
                Some(c) => return Err(self.err(format!("expected `,` or `}}`, found `{c}`"))),
                None => return Err(self.err("unterminated inline table")),
            }
        }
    }

    fn parse_keyword(&mut self) -> Result<Value, SpecError> {
        let word = self.take_word();
        match word.as_str() {
            "true" => Ok(Value::Bool(true)),
            "false" => Ok(Value::Bool(false)),
            _ => Err(self.err(format!("unrecognized value `{word}`"))),
        }
    }

    fn take_word(&mut self) -> String {
        let mut w = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == '_' || c == '+' || c == '-' || c == '.' {
                w.push(c);
                self.advance();
            } else {
                break;
            }
        }
        w
    }

    fn parse_number(&mut self) -> Result<Value, SpecError> {
        let raw = self.take_word();
        let cleaned: String = raw.chars().filter(|&c| c != '_').collect();
        let body = cleaned.trim_start_matches(['+', '-']);
        let negative = cleaned.starts_with('-');
        match body {
            "inf" => {
                return Ok(Value::Float(if negative {
                    f64::NEG_INFINITY
                } else {
                    f64::INFINITY
                }))
            }
            "nan" => return Ok(Value::Float(f64::NAN)),
            _ => {}
        }
        let is_float = cleaned.contains(['.', 'e', 'E']);
        if is_float {
            cleaned
                .parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err(format!("invalid float `{raw}`")))
        } else {
            cleaned
                .parse::<i64>()
                .map(Value::Int)
                .map_err(|_| self.err(format!("invalid integer `{raw}`")))
        }
    }
}

// ---------------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------------

/// `true` when an entry must be emitted as a `[section]` rather than inline.
fn is_section(v: &Value) -> bool {
    matches!(v, Value::Table(_))
}

/// `true` when an entry must be emitted as a `[[section]]` list.
fn is_section_array(v: &Value) -> bool {
    match v {
        Value::Array(items) => !items.is_empty() && items.iter().all(|i| i.as_table().is_some()),
        _ => false,
    }
}

fn emit_table(
    out: &mut String,
    path: &mut Vec<String>,
    entries: &[(String, Value)],
) -> Result<(), SpecError> {
    for (key, value) in entries {
        if is_section(value) || is_section_array(value) {
            continue;
        }
        out.push_str(&format_key(key));
        out.push_str(" = ");
        emit_inline(out, value)?;
        out.push('\n');
    }
    for (key, value) in entries {
        match value {
            Value::Table(inner) => {
                path.push(key.clone());
                out.push('\n');
                out.push('[');
                out.push_str(&format_path(path));
                out.push_str("]\n");
                emit_table(out, path, inner)?;
                path.pop();
            }
            Value::Array(items) if is_section_array(value) => {
                path.push(key.clone());
                for item in items {
                    // `is_section_array` established every item is a table.
                    let Value::Table(inner) = item else { continue };
                    out.push('\n');
                    out.push_str("[[");
                    out.push_str(&format_path(path));
                    out.push_str("]]\n");
                    emit_table(out, path, inner)?;
                }
                path.pop();
            }
            _ => {}
        }
    }
    Ok(())
}

fn emit_inline(out: &mut String, value: &Value) -> Result<(), SpecError> {
    match value {
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(x) => out.push_str(&format_float(*x)),
        Value::Str(s) => out.push_str(&quote_string(s)),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                emit_inline(out, item)?;
            }
            out.push(']');
        }
        Value::Table(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push(' ');
                out.push_str(&format_key(k));
                out.push_str(" = ");
                emit_inline(out, v)?;
            }
            if !entries.is_empty() {
                out.push(' ');
            }
            out.push('}');
        }
    }
    Ok(())
}

/// Formats a float so `parse(format(x))` is bit-exact: Rust's shortest round-trip
/// representation, which TOML accepts (always carries a `.`, exponent, `inf`, or `nan`).
pub(crate) fn format_float(x: f64) -> String {
    if x.is_nan() {
        "nan".to_string()
    } else if x.is_infinite() {
        if x > 0.0 { "inf" } else { "-inf" }.to_string()
    } else {
        // `{:?}` omits the `.0` for exponent forms like `1e-6`, which TOML allows; a bare
        // integer form like `2` cannot occur (`{:?}` prints `2.0`).
        format!("{x:?}")
    }
}

fn format_path(path: &[String]) -> String {
    path.iter()
        .map(|seg| format_key(seg))
        .collect::<Vec<_>>()
        .join(".")
}

fn format_key(key: &str) -> String {
    if !key.is_empty() && key.chars().all(is_bare_key_char) {
        key.to_string()
    } else {
        quote_string(key)
    }
}

pub(crate) fn quote_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(doc: &str) -> Value {
        let v = parse(doc).expect("parse");
        let emitted = to_string(&v).expect("emit");
        let reparsed = parse(&emitted).unwrap_or_else(|e| panic!("reparse {emitted}: {e}"));
        assert_eq!(v, reparsed, "round-trip changed the value:\n{emitted}");
        v
    }

    #[test]
    fn parses_scalars_and_sections() {
        let v = roundtrip(
            r#"
name = "demo"
count = 3
rate = 0.99
big = 1_000
neg = -2.5e-3
on = true

[nested]
key = "x"

[nested.deeper]
flag = false
"#,
        );
        assert_eq!(v.get("name").unwrap().as_str(), Some("demo"));
        assert_eq!(v.get("count").unwrap().as_i64(), Some(3));
        assert_eq!(v.get("big").unwrap().as_i64(), Some(1000));
        assert_eq!(v.get("rate").unwrap().as_f64(), Some(0.99));
        assert_eq!(v.get("neg").unwrap().as_f64(), Some(-2.5e-3));
        assert_eq!(
            v.get("nested").unwrap().get("deeper").unwrap().get("flag"),
            Some(&Value::Bool(false))
        );
    }

    #[test]
    fn parses_arrays_including_multiline() {
        let v = roundtrip(
            r#"
bounds = [7, 4, 7]
mixed = [[1, 2], [3]]
phases = [
    { duration_s = 10.0, qps = 1400.0 },  # first
    { duration_s = 5.0, qps = 2100.0 },
]
"#,
        );
        assert_eq!(v.get("bounds").unwrap(), &Value::from(vec![7i64, 4, 7]),);
        let phases = v.get("phases").unwrap().as_array().unwrap();
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[1].get("qps").unwrap().as_f64(), Some(2100.0));
    }

    #[test]
    fn parses_array_of_tables_headers() {
        let v = roundtrip(
            r#"
[[phase]]
qps = 100.0

[[phase]]
qps = 200.0
duration_s = 3.5
"#,
        );
        let phases = v.get("phase").unwrap().as_array().unwrap();
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].get("qps").unwrap().as_f64(), Some(100.0));
        assert_eq!(phases[1].get("duration_s").unwrap().as_f64(), Some(3.5));
    }

    #[test]
    fn parses_quoted_and_dotted_keys() {
        let v = roundtrip("\"a key\" = 1\nouter.inner = 2\n");
        assert_eq!(v.get("a key").unwrap().as_i64(), Some(1));
        assert_eq!(
            v.get("outer").unwrap().get("inner").unwrap().as_i64(),
            Some(2)
        );
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = roundtrip("s = \"line\\nbreak \\\"q\\\" \\\\ \\u0041\"\nlit = 'no \\escape'\n");
        assert_eq!(v.get("s").unwrap().as_str(), Some("line\nbreak \"q\" \\ A"));
        assert_eq!(v.get("lit").unwrap().as_str(), Some("no \\escape"));
    }

    #[test]
    fn special_floats_round_trip() {
        let v = parse("a = inf\nb = -inf\nc = nan\n").unwrap();
        assert_eq!(v.get("a").unwrap().as_f64(), Some(f64::INFINITY));
        assert_eq!(v.get("b").unwrap().as_f64(), Some(f64::NEG_INFINITY));
        assert!(v.get("c").unwrap().as_f64().unwrap().is_nan());
        let emitted = to_string(&v).unwrap();
        assert!(emitted.contains("a = inf"));
        assert!(emitted.contains("c = nan"));
    }

    #[test]
    fn rejects_duplicate_keys_and_headers() {
        assert!(parse("a = 1\na = 2\n").is_err());
        assert!(parse("[t]\nx = 1\n\n[t]\ny = 2\n").is_err());
        assert!(parse("a = 1\n[a]\nb = 2\n").is_err());
    }

    #[test]
    fn rejects_single_double_bracket_mixups() {
        // `[x]` after `[[x]]` must not silently merge into the last array element.
        let e = parse("[[phase]]\nqps = 1.0\n\n[phase]\nduration_s = 2.0\n").unwrap_err();
        assert!(e.message.contains("[[phase]]"), "{e}");
        // And `[[x]]` after `[x]` must not turn a table into an array.
        assert!(parse("[t]\nx = 1\n\n[[t]]\ny = 2\n").is_err());
        // The legitimate continuation form still works.
        let v = parse("[[a]]\nx = 1\n\n[a.sub]\ny = 2\n").unwrap();
        let first = &v.get("a").unwrap().as_array().unwrap()[0];
        assert_eq!(
            first.get("sub").unwrap().get("y").unwrap().as_i64(),
            Some(2)
        );
    }

    #[test]
    fn rejects_malformed_input_with_line_numbers() {
        let e = parse("ok = 1\nbad =\n").unwrap_err();
        assert!(e.path.contains("line 2"), "{e}");
        let e = parse("x = [1, 2\n").unwrap_err();
        assert!(e.message.contains("unclosed"), "{e}");
        assert!(parse("x = 2021-01-01\n").is_err(), "dates are unsupported");
        assert!(parse("just a line\n").is_err());
    }

    #[test]
    fn canonical_emission_is_idempotent() {
        let doc = "[b]\nx = 1\n\n[a]\ny = 2.5\ntop = \"late key\"\n";
        // `top` belongs to [a]; the writer emits it before [a]'s subsections anyway.
        let v = parse(doc).unwrap();
        let once = to_string(&v).unwrap();
        let twice = to_string(&parse(&once).unwrap()).unwrap();
        assert_eq!(once, twice);
    }

    #[test]
    fn writer_quotes_non_bare_keys() {
        let mut t = Value::table();
        t.insert("needs quoting!", Value::Int(1));
        let s = to_string(&t).unwrap();
        assert_eq!(s, "\"needs quoting!\" = 1\n");
    }

    #[test]
    fn float_formatting_is_bit_exact() {
        for x in [0.1, 2.0, 1e-6, 0.3333333333333333, f64::MIN_POSITIVE] {
            let s = format_float(x);
            assert_eq!(s.parse::<f64>().unwrap().to_bits(), x.to_bits(), "{s}");
        }
    }
}
