//! Offline shim of `criterion` (see `vendor/README.md`).
//!
//! Implements the subset of the criterion 0.5 API the workspace's benches use:
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`], [`BenchmarkId`],
//! [`black_box`], and the [`criterion_group!`]/[`criterion_main!`] macros
//! (both the simple and the `name/config/targets` forms).
//!
//! Measurement model: each benchmark is calibrated with a single warm-up call,
//! then timed over `sample_size` samples of `iters_per_sample` calls each,
//! where `iters_per_sample` targets roughly one millisecond per sample. The
//! report prints min/median/mean per-iteration times. This is deliberately
//! simple — good enough for the relative comparisons the experiment benches
//! make, and for keeping `cargo bench --no-run` meaningful in CI — and the CLI
//! accepts (and ignores) the arguments cargo forwards, plus an optional
//! substring filter like upstream.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group: a function name plus a
/// parameter rendered with `Display`, printed as `name/parameter`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from a parameter value alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    /// Collected per-iteration durations (one entry per sample).
    samples: Vec<Duration>,
}

impl Bencher {
    /// Calls `routine` repeatedly and records per-iteration wall-clock times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration call.
        let start = Instant::now();
        black_box(routine());
        let first = start.elapsed();

        // Aim for ~1 ms per sample so fast routines still get timer resolution,
        // without letting slow routines run thousands of times.
        let target = Duration::from_millis(1);
        let iters = if first.is_zero() {
            1_000
        } else {
            (target.as_nanos() / first.as_nanos().max(1)).clamp(1, 10_000) as u32
        };

        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(t0.elapsed() / iters);
        }
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", ns as f64 / 1_000_000_000.0)
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "--bench");
        Criterion {
            sample_size: 20,
            filter,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark (builder form, used by
    /// `criterion_group!`'s `config = ...` clause).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Returns `true` when `id` passes the CLI substring filter.
    fn selected(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        if !self.selected(id) {
            return;
        }
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        let mut sorted = b.samples.clone();
        sorted.sort_unstable();
        if sorted.is_empty() {
            println!("{id:<50} (no samples)");
            return;
        }
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
        println!(
            "{id:<50} min {:>10}   median {:>10}   mean {:>10}",
            format_duration(min),
            format_duration(median),
            format_duration(mean)
        );
    }

    /// Runs a single named benchmark.
    pub fn bench_function<S: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        self.run_one(&id, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            sample_size: None,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = Some(n);
        self
    }

    fn run_grouped<F: FnMut(&mut Bencher)>(&mut self, id: String, f: F) {
        let full = format!("{}/{}", self.name, id);
        let saved = self.parent.sample_size;
        if let Some(n) = self.sample_size {
            self.parent.sample_size = n;
        }
        self.parent.run_one(&full, f);
        self.parent.sample_size = saved;
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<S: Display, F: FnMut(&mut Bencher)>(&mut self, id: S, f: F) -> &mut Self {
        self.run_grouped(id.to_string(), f);
        self
    }

    /// Runs one parameterized benchmark inside the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run_grouped(id.to_string(), |b| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility; printing is immediate).
    pub fn finish(&mut self) {}
}

/// Declares a benchmark group: either `criterion_group!(name, target, ...)` or
/// the `name = ...; config = ...; targets = ...` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats_like_upstream() {
        assert_eq!(BenchmarkId::new("fit", 30).to_string(), "fit/30");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }

    #[test]
    fn bench_function_runs_the_routine() {
        let mut c = Criterion {
            sample_size: 3,
            filter: None,
        };
        let mut calls = 0u32;
        c.bench_function("counter", |b| b.iter(|| calls += 1));
        assert!(calls >= 3, "routine ran {calls} times");
    }

    #[test]
    fn groups_respect_sample_size_and_inputs() {
        let mut c = Criterion {
            sample_size: 2,
            filter: None,
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(4);
        let mut seen = 0u64;
        group.bench_with_input(BenchmarkId::new("f", 7), &7u64, |b, &x| b.iter(|| seen = x));
        group.finish();
        assert_eq!(seen, 7);
    }

    #[test]
    fn filter_skips_unmatched_benchmarks() {
        let mut c = Criterion {
            sample_size: 2,
            filter: Some("match-me".into()),
        };
        let mut ran = false;
        c.bench_function("other", |b| b.iter(|| ran = true));
        assert!(!ran);
        c.bench_function("match-me-please", |b| b.iter(|| ran = true));
        assert!(ran);
    }

    #[test]
    fn duration_formatting_covers_all_scales() {
        assert_eq!(format_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(format_duration(Duration::from_micros(12)), "12.00 µs");
        assert_eq!(format_duration(Duration::from_millis(12)), "12.00 ms");
        assert_eq!(format_duration(Duration::from_secs(2)), "2.000 s");
    }
}
