//! Offline shim of the `serde` crate (see `vendor/README.md`).
//!
//! `Serialize` and `Deserialize` are blanket-implemented marker traits and the
//! re-exported derives expand to nothing. Annotating a type therefore compiles
//! exactly as with real serde, but no wire format exists yet; swapping in the
//! real crates requires no source changes in the workspace.

pub use serde_derive::{Deserialize, Serialize};

/// Marker for types that can be serialized (no-op shim).
pub trait Serialize {}

/// Marker for types that can be deserialized (no-op shim).
///
/// The lifetime mirrors real serde's `Deserialize<'de>` so trait bounds
/// written against the real crate keep compiling.
pub trait Deserialize<'de>: Sized {}

/// Marker for types deserializable without borrowing (no-op shim).
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T> Serialize for T {}
impl<'de, T> Deserialize<'de> for T {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

#[cfg(test)]
mod tests {
    use super::{Deserialize, Serialize};

    #[derive(Serialize, Deserialize, Debug, PartialEq)]
    struct Point {
        x: f64,
        y: f64,
    }

    #[derive(Serialize, Deserialize, Debug, PartialEq)]
    #[allow(dead_code)]
    enum Shape {
        Dot,
        Line { from: Point, to: Point },
    }

    fn assert_serializable<T: Serialize + for<'de> Deserialize<'de>>() {}

    #[test]
    fn derived_types_satisfy_the_marker_traits() {
        assert_serializable::<Point>();
        assert_serializable::<Shape>();
        assert_serializable::<Vec<Point>>();
    }
}
