//! Offline shim of `serde_derive` (see `vendor/README.md`).
//!
//! The derives expand to nothing: the sibling `serde` shim defines
//! `Serialize`/`Deserialize` as blanket-implemented marker traits, so an empty
//! expansion leaves every annotated type "serializable" without generating
//! code. This keeps `#[derive(Serialize, Deserialize)]` and serde-style trait
//! bounds compiling unchanged until a real serialization backend is wired in.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
