//! Offline shim of `parking_lot` (see `vendor/README.md`).
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning API:
//! `lock()` returns the guard directly instead of a `Result`. A poisoned lock
//! (a thread panicked while holding it) is recovered rather than propagated,
//! matching `parking_lot`'s behaviour of not tracking poisoning at all.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual-exclusion lock with `parking_lot`'s non-poisoning interface.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock with `parking_lot`'s non-poisoning interface.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn mutex_guards_mutation() {
        let m = Mutex::new(0u32);
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
        assert_eq!(m.into_inner(), 5);
    }

    #[test]
    fn mutex_survives_a_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(1u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std mutex underneath");
        })
        .join();
        // parking_lot has no poisoning: the lock must still be usable.
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(7u32);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(*m.try_lock().unwrap(), 7);
    }

    #[test]
    fn rwlock_allows_many_readers() {
        let l = RwLock::new(3u32);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 6);
        drop((a, b));
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }
}
