//! Offline shim of `proptest` (see `vendor/README.md`).
//!
//! Supports the subset this workspace's property tests use: the
//! [`proptest!`] macro over functions whose arguments are drawn from numeric
//! range strategies (`lo..hi`, `lo..=hi`), plus [`prop_assert!`] and
//! [`prop_assert_eq!`].
//!
//! Unlike real proptest there is no shrinking and no persistence: each test
//! runs a fixed number of uniformly sampled cases (default 64, override with
//! the `PROPTEST_CASES` environment variable) from a seed derived
//! deterministically from the test name, so failures reproduce exactly on
//! re-run.

use std::ops::{Range, RangeInclusive};

/// A source of test-case values.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut test_runner::PtRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut test_runner::PtRng) -> $t {
                rand::Rng::gen_range(&mut rng.0, self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut test_runner::PtRng) -> $t {
                rand::Rng::gen_range(&mut rng.0, self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, f64);

/// Fixed value sets also work as strategies (e.g. `[1u32, 2, 3]` by value is
/// not supported by real proptest; this mirrors `prop::sample::select` for
/// slices in the simplest form the shim needs).
impl<T: Clone> Strategy for &[T] {
    type Value = T;

    fn sample(&self, rng: &mut test_runner::PtRng) -> T {
        assert!(!self.is_empty(), "cannot sample from an empty slice");
        let i = rand::Rng::gen_range(&mut rng.0, 0..self.len());
        self[i].clone()
    }
}

/// Test-runner plumbing used by the generated code.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// RNG handed to strategies, seeded per test.
    pub struct PtRng(pub StdRng);

    impl PtRng {
        /// Builds the RNG for a named test: deterministic per name.
        pub fn new(name: &str) -> Self {
            // FNV-1a over the test name: stable across runs and platforms.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            PtRng(StdRng::seed_from_u64(h))
        }
    }

    /// Number of cases each property test runs.
    pub fn cases() -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running [`test_runner::cases`] sampled cases.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$attr:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let mut __pt_rng = $crate::test_runner::PtRng::new(stringify!($name));
                for __pt_case in 0..$crate::test_runner::cases() {
                    let _ = __pt_case;
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __pt_rng);)+
                    $body
                }
            }
        )*
    };
}

/// Asserts a property holds for the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts two values are equal for the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
///
/// Shim behaviour: expands to `continue` on the case loop, so it must be used
/// at the top level of a `proptest!` body (which is how real proptest is used
/// here too). Unlike upstream there is no "too many rejected cases" budget.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Everything a test module needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::test_runner;
    pub use crate::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 0u32..10, y in -2.5f64..2.5, n in 1usize..=4) {
            prop_assert!(x < 10);
            prop_assert!((-2.5..2.5).contains(&y));
            prop_assert!((1..=4).contains(&n));
        }

        #[test]
        fn multiple_tests_in_one_block_work(a in 0u64..100, b in 0u64..100) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn assume_skips_unwanted_cases(a in 0u64..100) {
            prop_assume!(a % 2 == 0);
            prop_assert!(a % 2 == 0);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = test_runner::PtRng::new("some_test");
        let mut b = test_runner::PtRng::new("some_test");
        let sa = (0u32..5)
            .map(|_| (0u32..1000).sample(&mut a))
            .collect::<Vec<_>>();
        let sb = (0u32..5)
            .map(|_| (0u32..1000).sample(&mut b))
            .collect::<Vec<_>>();
        assert_eq!(sa, sb);
        let mut c = test_runner::PtRng::new("other_test");
        let sc = (0u32..5)
            .map(|_| (0u32..1000).sample(&mut c))
            .collect::<Vec<_>>();
        assert_ne!(sa, sc);
    }

    #[test]
    fn case_count_defaults_to_64() {
        if std::env::var("PROPTEST_CASES").is_err() {
            assert_eq!(test_runner::cases(), 64);
        }
    }
}
