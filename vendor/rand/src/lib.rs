//! Minimal offline shim of the `rand` crate (see `vendor/README.md`).
//!
//! Provides the subset of the `rand 0.8` API used by this workspace: the
//! [`Rng`]/[`RngCore`]/[`SeedableRng`] traits, a seedable [`rngs::StdRng`]
//! (xoshiro256** seeded through SplitMix64 — *not* upstream's ChaCha12, so
//! streams differ from upstream for the same seed), and
//! [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! Determinism contract: for a fixed seed and a fixed sequence of calls, every
//! method produces the same values on every platform. The workspace's
//! reproducibility tests rely on exactly this and nothing more.

use std::ops::{Range, RangeInclusive};

/// The core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an RNG via [`Rng::gen`].
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        let v = self.start + (self.end - self.start) * u;
        // Guard against rounding up to the exclusive end.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + (hi - lo) * f64::sample(rng)
    }
}

/// Unbiased uniform integer in `[0, n)` via Lemire-style rejection.
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "cannot sample empty range");
    if n.is_power_of_two() {
        return rng.next_u64() & (n - 1);
    }
    let zone = u64::MAX - (u64::MAX % n);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % n;
        }
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_u64_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_u64_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize);

/// User-facing random-value methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64`/`f32`: uniform `[0, 1)`; integers: full range; `bool`: fair coin).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range (`lo..hi` or `lo..=hi`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds an RNG from a 64-bit seed, expanding it to the full state.
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds an RNG from OS entropy. The shim has no OS entropy source, so
    /// this derives a seed from the system clock — adequate for the
    /// non-reproducible use cases (none in this workspace today).
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e37_79b9_7f4a_7c15);
        Self::seed_from_u64(nanos)
    }
}

/// SplitMix64 step, used for seed expansion (reference: Vigna, 2015).
#[inline]
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256** (Blackman & Vigna), state
    /// expanded from the seed with SplitMix64.
    ///
    /// Statistically solid for simulation workloads and fully deterministic
    /// per seed. Not cryptographically secure, and not stream-compatible with
    /// upstream `rand`'s `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = rng.gen_range(0..self.len());
                self.get(i)
            }
        }
    }

    // Silence the unused-import lint for users who only need the trait.
    const _: fn(&mut dyn RngCore) = |_| {};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let av: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let bv: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(av, bv);
    }

    #[test]
    fn f64_samples_are_in_unit_interval_and_well_spread() {
        let mut r = StdRng::seed_from_u64(7);
        let xs: Vec<f64> = (0..50_000).map(|_| r.gen::<f64>()).collect();
        assert!(xs.iter().all(|&x| (0.0..1.0).contains(&x)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!((var - 1.0 / 12.0).abs() < 0.005, "var {var}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: u32 = r.gen_range(5..=9);
            assert!((5..=9).contains(&x));
            let y: f64 = r.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(y > 0.0 && y < 1.0);
            let z: usize = r.gen_range(0..3);
            assert!(z < 3);
        }
    }

    #[test]
    fn integer_range_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(11);
        let mut counts = [0u32; 6];
        for _ in 0..60_000 {
            counts[r.gen_range(0..6usize)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation_and_seed_deterministic() {
        let base: Vec<u32> = (0..50).collect();
        let mut a = base.clone();
        let mut b = base.clone();
        a.shuffle(&mut StdRng::seed_from_u64(9));
        b.shuffle(&mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, base);
        let mut c = base.clone();
        c.shuffle(&mut StdRng::seed_from_u64(10));
        assert_ne!(a, c);
    }

    #[test]
    fn choose_returns_elements_from_the_slice() {
        let mut r = StdRng::seed_from_u64(5);
        let xs = [10, 20, 30];
        for _ in 0..100 {
            assert!(xs.contains(xs.choose(&mut r).unwrap()));
        }
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut r = StdRng::seed_from_u64(13);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((23_500..26_500).contains(&hits), "hits {hits}");
    }
}
