//! Differential suite for the event-driven simulator rewrite: the heap scheduler
//! ([`ribbon_cloudsim::simulate`]) and the lean stats path
//! ([`ribbon_cloudsim::simulate_stats`]) must be bit-identical to the O(Q·N) reference scan
//! ([`ribbon_cloudsim::sim::reference`]) — on hand-built pools, on random pools/streams
//! (proptest), and on every configuration visited by each search strategy.

use proptest::prelude::*;
use ribbon::evaluator::{ConfigEvaluator, EvaluatorSettings};
use ribbon::search::SearchTrace;
use ribbon::strategies::{HillClimbSearch, RandomSearch, ResponseSurfaceSearch, SearchStrategy};
use ribbon::{RibbonSearch, RibbonSettings};
use ribbon_cloudsim::dist::{ArrivalProcess, BatchDistribution};
use ribbon_cloudsim::{sim, simulate, simulate_stats, PoolSpec, Query, StreamConfig};
use ribbon_cloudsim::{InstanceType, ALL_INSTANCE_TYPES};
use ribbon_gp::FitConfig;
use ribbon_models::{ModelKind, Workload};

fn small_workload() -> Workload {
    let mut w = Workload::standard(ModelKind::MtWnd);
    w.num_queries = 800;
    w
}

fn small_evaluator() -> ConfigEvaluator {
    ConfigEvaluator::new(
        &small_workload(),
        EvaluatorSettings {
            explicit_bounds: Some(vec![6, 4, 6]),
            ..Default::default()
        },
    )
}

/// Recomputes every evaluation of a trace with the reference scan and asserts the metrics
/// the evaluator derived from the event-driven lean path match bit for bit.
fn assert_trace_matches_reference(trace: &SearchTrace, workload: &Workload) {
    assert!(!trace.is_empty(), "strategy produced an empty trace");
    let profile = workload.profile();
    let queries = workload.stream_config().generate();
    for e in trace.evaluations() {
        let pool = PoolSpec::from_counts(&workload.diverse_pool, &e.config);
        let oracle = sim::reference::simulate(&pool, &queries, &profile);
        assert_eq!(
            Some(e.satisfaction_rate),
            oracle.satisfaction_rate(workload.qos.latency_target_s),
            "satisfaction diverges on {:?} ({})",
            e.config,
            trace.strategy
        );
        assert_eq!(e.mean_latency_s, oracle.mean_latency(), "{:?}", e.config);
        assert_eq!(
            e.tail_latency_s,
            oracle.tail_latency(workload.qos.target_rate * 100.0),
            "{:?}",
            e.config
        );
    }
}

#[test]
fn ribbon_search_metrics_match_the_reference_scan() {
    let w = small_workload();
    let ev = small_evaluator();
    let trace = RibbonSearch::new(RibbonSettings {
        max_evaluations: 12,
        fit: FitConfig::coarse(),
        ..RibbonSettings::fast()
    })
    .run(&ev, 5);
    assert_trace_matches_reference(&trace, &w);
}

#[test]
fn baseline_strategy_metrics_match_the_reference_scan() {
    let w = small_workload();
    let strategies: Vec<Box<dyn SearchStrategy>> = vec![
        Box::new(RandomSearch::new(10)),
        Box::new(HillClimbSearch::new(10)),
        Box::new(ResponseSurfaceSearch::new(10)),
    ];
    for s in strategies {
        let ev = small_evaluator();
        let trace = s.run_search(&ev, 7);
        assert_trace_matches_reference(&trace, &w);
    }
}

fn query_stream(qps: f64, n: usize, seed: u64) -> Vec<Query> {
    StreamConfig {
        arrivals: ArrivalProcess::Poisson { qps },
        batches: BatchDistribution::default_heavy_tail(32.0, 256),
        num_queries: n,
        seed,
    }
    .generate()
}

proptest! {

    /// Random pools (1–5 types, 0–4 instances each, at least one instance) and random
    /// streams: heap, reference scan, and lean stats must agree exactly.
    #[test]
    fn prop_heap_scan_and_stats_agree_on_random_pools(
        type_mask in 0usize..8,
        c0 in 0u32..5,
        c1 in 0u32..5,
        c2 in 0u32..5,
        c3 in 0u32..5,
        c4 in 0u32..5,
        qps in 50.0f64..1500.0,
        n in 1usize..600,
        seed in 0u64..1000,
    ) {
        // Pick 5 types deterministically from the catalog, rotated by the mask.
        let types: Vec<InstanceType> =
            (0..5).map(|i| ALL_INSTANCE_TYPES[(i + type_mask) % ALL_INSTANCE_TYPES.len()]).collect();
        let mut counts = vec![c0, c1, c2, c3, c4];
        if counts.iter().all(|&c| c == 0) {
            counts[0] = 1;
        }
        let pool = PoolSpec::from_counts(&types, &counts);
        let queries = query_stream(qps, n, seed);
        let profile = ribbon_models::ModelProfile::new(ModelKind::MtWnd);

        let fast = simulate(&pool, &queries, &profile);
        let slow = sim::reference::simulate(&pool, &queries, &profile);
        prop_assert_eq!(&fast.latencies, &slow.latencies);
        prop_assert_eq!(&fast.assigned_instance, &slow.assigned_instance);
        prop_assert_eq!(&fast.per_instance_load, &slow.per_instance_load);
        prop_assert_eq!(fast.makespan, slow.makespan);

        let target = 0.02;
        let stats = simulate_stats(&pool, &queries, &profile, target, 99.0);
        prop_assert_eq!(stats.num_queries, slow.num_queries());
        prop_assert_eq!(stats.satisfaction_rate(), slow.satisfaction_rate(target));
        prop_assert_eq!(stats.mean_latency_s, slow.mean_latency());
        prop_assert_eq!(stats.tail_latency_s, slow.tail_latency(99.0));
        prop_assert_eq!(stats.makespan, slow.makespan);
    }
}
