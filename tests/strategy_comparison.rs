//! Integration tests comparing Ribbon against the competing strategies of Sec. 5.3 on a
//! shared, reduced MT-WND workload.

use ribbon::accounting::{samples_to_reach_optimum, TraceMetrics};
use ribbon::evaluator::{ConfigEvaluator, EvaluatorSettings};
use ribbon::prelude::*;
use ribbon::search::RibbonSettings;
use ribbon::strategies::ExhaustiveSearch;
use ribbon_models::{ModelKind, Workload};

fn shared_evaluator() -> ConfigEvaluator {
    let mut w = Workload::standard(ModelKind::MtWnd);
    w.num_queries = 1500;
    ConfigEvaluator::new(
        &w,
        EvaluatorSettings {
            explicit_bounds: Some(vec![6, 4, 8]),
            ..Default::default()
        },
    )
}

#[test]
fn every_strategy_eventually_finds_a_qos_satisfying_configuration() {
    let ev = shared_evaluator();
    let budget = 60;
    let strategies: Vec<Box<dyn SearchStrategy>> = vec![
        Box::new(RibbonSearch::new(RibbonSettings {
            max_evaluations: budget,
            ..RibbonSettings::fast()
        })),
        Box::new(HillClimbSearch::new(budget)),
        Box::new(RandomSearch::new(budget)),
        Box::new(ResponseSurfaceSearch::new(budget)),
    ];
    for s in strategies {
        let trace = s.run_search(&ev, 21);
        assert!(
            trace.best_satisfying().is_some(),
            "{} found no satisfying configuration in {budget} evaluations",
            s.name()
        );
    }
}

#[test]
fn ribbon_reaches_a_meaningful_cost_saving_within_a_small_budget() {
    // The Fig. 10 claim, phrased robustly for a single-seed test: within a modest evaluation
    // budget Ribbon finds a QoS-satisfying configuration that saves a meaningful fraction
    // over the homogeneous optimum, and it does reach the ground-truth optimum eventually.
    let ev = shared_evaluator();
    let homogeneous = homogeneous_optimum(&ev, 8).expect("homogeneous optimum exists");
    let optimum_cost = ExhaustiveSearch::optimum(&ev)
        .expect("optimum exists")
        .hourly_cost;
    let budget = 120;
    let ribbon = RibbonSearch::new(RibbonSettings {
        max_evaluations: budget,
        ..RibbonSettings::fast()
    })
    .run_search(&ev, 42);
    let to_five_percent =
        ribbon::accounting::samples_to_reach_saving(&ribbon, homogeneous.hourly_cost, 5.0)
            .expect("ribbon reaches a 5% saving");
    assert!(
        to_five_percent <= 40,
        "ribbon needed {to_five_percent} samples to reach a 5% saving"
    );
    assert!(
        samples_to_reach_optimum(&ribbon, optimum_cost).is_some(),
        "ribbon should reach the ground-truth optimum within {budget} evaluations"
    );
}

#[test]
fn ribbon_exploration_cost_is_a_small_fraction_of_exhaustive() {
    let ev = shared_evaluator();
    let exhaustive = ExhaustiveSearch::full().run_search(&ev, 0);
    let ribbon = RibbonSearch::new(RibbonSettings {
        max_evaluations: 30,
        ..RibbonSettings::fast()
    })
    .run_search(&ev, 13);
    let metrics = TraceMetrics::new(&ribbon, 5.0 * 0.526);
    let pct = metrics.exploration_cost_percent(exhaustive.exploration_cost());
    assert!(
        pct < 30.0,
        "ribbon exploration cost {pct:.1}% of exhaustive is too high"
    );
}

#[test]
fn all_strategies_respect_their_evaluation_budget_and_never_duplicate() {
    let ev = shared_evaluator();
    let budget = 25;
    let strategies: Vec<Box<dyn SearchStrategy>> = vec![
        Box::new(RibbonSearch::new(RibbonSettings {
            max_evaluations: budget,
            ..RibbonSettings::fast()
        })),
        Box::new(HillClimbSearch::new(budget)),
        Box::new(RandomSearch::new(budget)),
        Box::new(ResponseSurfaceSearch::new(budget)),
        Box::new(ExhaustiveSearch::capped(budget)),
    ];
    for s in strategies {
        let trace = s.run_search(&ev, 4);
        assert!(trace.len() <= budget, "{} exceeded its budget", s.name());
        let mut seen = std::collections::HashSet::new();
        for e in trace.evaluations() {
            assert!(
                seen.insert(e.config.clone()),
                "{} evaluated {:?} twice",
                s.name(),
                e.config
            );
        }
    }
}
