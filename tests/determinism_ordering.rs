//! Regression tests pinning the *exact* evaluation order of every strategy whose
//! internal bookkeeping once lived in `HashMap`/`HashSet`.
//!
//! Issue 8 converted that state to `BTreeMap`/`BTreeSet` (enforced from here on by
//! `ribbon-lint`'s `hash-container` rule). None of those containers is iterated
//! today, so the conversion must be a bit-identical no-op — which is precisely
//! what these tests pin: two runs in one process must agree (seeded RNG), and the
//! sequences must be stable under repetition so a future change that starts
//! iterating a hash container — whose order varies per process — cannot land
//! without tripping either this test or the lint.

use ribbon::evaluator::{ConfigEvaluator, EvaluatorSettings};
use ribbon::prelude::*;
use ribbon::search::RibbonSettings;
use ribbon_models::{ModelKind, Workload};

fn small_evaluator() -> ConfigEvaluator {
    let mut w = Workload::standard(ModelKind::MtWnd);
    w.num_queries = 800;
    ConfigEvaluator::new(
        &w,
        EvaluatorSettings {
            explicit_bounds: Some(vec![6, 4, 6]),
            ..Default::default()
        },
    )
}

/// The full config sequence a strategy evaluates, in trace order.
fn sequence(strategy: &dyn SearchStrategy, seed: u64) -> Vec<Vec<u32>> {
    let ev = small_evaluator();
    strategy
        .run_search(&ev, seed)
        .evaluations()
        .iter()
        .map(|e| e.config.clone())
        .collect()
}

#[test]
fn every_converted_strategy_replays_its_exact_evaluation_order() {
    let budget = 40;
    let strategies: Vec<Box<dyn SearchStrategy>> = vec![
        Box::new(HillClimbSearch::new(budget)),
        Box::new(ResponseSurfaceSearch::new(budget)),
        Box::new(RandomSearch::new(budget)),
        Box::new(RibbonSearch::new(RibbonSettings {
            max_evaluations: budget,
            ..RibbonSettings::fast()
        })),
    ];
    for s in strategies {
        let first = sequence(s.as_ref(), 17);
        let second = sequence(s.as_ref(), 17);
        assert_eq!(
            first,
            second,
            "{}: same seed, fresh evaluator — the evaluation order drifted, which \
             means some internal container leaks iteration order",
            s.name()
        );
        assert!(!first.is_empty(), "{} evaluated nothing", s.name());
    }
}

#[test]
fn hill_climb_neighbourhood_order_is_pinned() {
    // The steepest-ascent scan visits the lattice-order neighbourhood of the
    // midpoint start. Pin the head of the sequence outright: these exact configs,
    // in this exact order, for seed 17 on the 6x4x6 lattice. A hash-ordered
    // container anywhere in the climb would shuffle this list between processes.
    let head: Vec<Vec<u32>> = sequence(&HillClimbSearch::new(12), 17)
        .into_iter()
        .take(4)
        .collect();
    assert_eq!(head[0], vec![3, 2, 3], "the climb starts at the midpoint");
    let expected: Vec<Vec<u32>> = vec![vec![3, 2, 3], vec![4, 2, 3], vec![2, 2, 3], vec![3, 3, 3]];
    assert_eq!(
        head, expected,
        "the first neighbourhood must be scanned in lattice order"
    );
}

#[test]
fn rsm_design_prefix_is_pinned() {
    // The central-composite design is generated deterministically from the
    // lattice; the trace must replay it verbatim as its prefix.
    let ev = small_evaluator();
    let design = ResponseSurfaceSearch::design_points(&ev.lattice());
    let trace = ResponseSurfaceSearch::new(40).run_search(&ev, 17);
    let prefix: Vec<Vec<u32>> = trace
        .evaluations()
        .iter()
        .take(design.len())
        .map(|e| e.config.clone())
        .collect();
    assert_eq!(
        prefix, design,
        "design points must be evaluated in design order"
    );
}
