//! Differential tests for the parallel batch-evaluation engine: `evaluate_many` must be
//! indistinguishable from serial evaluation — bit-identical `Evaluation`s, identical caching
//! behaviour, identical strategy traces — and measurably faster on multi-core hosts.

use ribbon::evaluator::{ConfigEvaluator, EvaluatorSettings};
use ribbon::prelude::*;
use ribbon::search::RibbonSettings;
use ribbon::strategies::ExhaustiveSearch;
use ribbon_models::{ModelKind, Workload};
use std::time::Instant;

fn workload(num_queries: usize) -> Workload {
    let mut w = Workload::standard(ModelKind::MtWnd);
    w.num_queries = num_queries;
    w
}

fn evaluator_with_threads(num_queries: usize, threads: usize) -> ConfigEvaluator {
    ConfigEvaluator::new(
        &workload(num_queries),
        EvaluatorSettings {
            explicit_bounds: Some(vec![6, 4, 6]),
            threads: Some(threads),
            ..Default::default()
        },
    )
}

/// A 16-configuration batch spread over the 6x4x6 lattice.
fn batch16() -> Vec<Vec<u32>> {
    vec![
        vec![1, 0, 0],
        vec![2, 0, 0],
        vec![3, 0, 0],
        vec![4, 0, 0],
        vec![5, 0, 0],
        vec![6, 0, 0],
        vec![3, 1, 0],
        vec![3, 2, 0],
        vec![3, 0, 2],
        vec![3, 0, 4],
        vec![2, 2, 2],
        vec![4, 2, 2],
        vec![4, 4, 4],
        vec![6, 4, 6],
        vec![1, 1, 1],
        vec![2, 1, 3],
    ]
}

/// Asserts two evaluations are equal down to the bit patterns of their floats
/// (stricter than `PartialEq`, which would conflate 0.0 and -0.0).
fn assert_bit_identical(a: &Evaluation, b: &Evaluation) {
    assert_eq!(a.config, b.config);
    assert_eq!(a.pool.describe(), b.pool.describe());
    assert_eq!(a.meets_qos, b.meets_qos);
    for (x, y, field) in [
        (
            a.satisfaction_rate,
            b.satisfaction_rate,
            "satisfaction_rate",
        ),
        (a.hourly_cost, b.hourly_cost, "hourly_cost"),
        (a.objective, b.objective, "objective"),
        (a.mean_latency_s, b.mean_latency_s, "mean_latency_s"),
        (a.tail_latency_s, b.tail_latency_s, "tail_latency_s"),
    ] {
        assert_eq!(x.to_bits(), y.to_bits(), "{field}: {x} vs {y}");
    }
}

#[test]
fn evaluate_many_is_bit_identical_to_serial_evaluation() {
    let parallel = evaluator_with_threads(1200, 8);
    let serial = evaluator_with_threads(1200, 1);
    let configs = batch16();

    let batch = parallel.evaluate_many(&configs);
    let reference: Vec<Evaluation> = configs.iter().map(|c| serial.evaluate(c)).collect();

    assert_eq!(batch.len(), configs.len());
    for (b, r) in batch.iter().zip(&reference) {
        assert_bit_identical(b, r);
    }
}

#[test]
fn evaluate_many_returns_results_in_input_order() {
    let ev = evaluator_with_threads(800, 8);
    let configs = batch16();
    let evals = ev.evaluate_many(&configs);
    let returned: Vec<Vec<u32>> = evals.into_iter().map(|e| e.config).collect();
    assert_eq!(returned, configs);
}

#[test]
fn revisited_configurations_hit_the_cache_and_are_not_resimulated() {
    let ev = evaluator_with_threads(800, 8);
    let configs = batch16();

    let first = ev.evaluate_many(&configs);
    let sims_after_first = ev.num_simulations();
    assert_eq!(
        sims_after_first,
        configs.len(),
        "every distinct config simulated exactly once"
    );

    // The whole batch again: all cache hits.
    let second = ev.evaluate_many(&configs);
    assert_eq!(
        ev.num_simulations(),
        sims_after_first,
        "revisit must not re-simulate"
    );
    for (a, b) in first.iter().zip(&second) {
        assert_bit_identical(a, b);
    }

    // And the serial path shares the same cache.
    let one = ev.evaluate(&configs[3]);
    assert_eq!(ev.num_simulations(), sims_after_first);
    assert_bit_identical(&one, &first[3]);
}

#[test]
fn duplicates_within_a_batch_are_simulated_once() {
    let ev = evaluator_with_threads(800, 8);
    let configs = vec![vec![2, 1, 1], vec![3, 0, 0], vec![2, 1, 1], vec![2, 1, 1]];
    let evals = ev.evaluate_many(&configs);
    assert_eq!(
        ev.num_simulations(),
        2,
        "two distinct configs, two simulations"
    );
    assert_bit_identical(&evals[0], &evals[2]);
    assert_bit_identical(&evals[0], &evals[3]);
}

#[test]
fn mixed_cache_states_are_assembled_correctly() {
    let ev = evaluator_with_threads(800, 8);
    let warm = ev.evaluate(&[3, 1, 0]);
    let configs = vec![vec![1, 0, 0], vec![3, 1, 0], vec![2, 0, 2]];
    let evals = ev.evaluate_many(&configs);
    assert_bit_identical(&evals[1], &warm);
    assert_eq!(ev.num_simulations(), 3, "one warm hit + two fresh misses");
}

#[test]
fn bound_probing_is_identical_across_thread_counts() {
    let make = |threads: usize| {
        ConfigEvaluator::new(
            &workload(800),
            EvaluatorSettings {
                max_per_type: 6,
                threads: Some(threads),
                ..Default::default()
            },
        )
    };
    assert_eq!(make(1).bounds(), make(8).bounds());
}

#[test]
fn homogeneous_optimum_is_identical_across_thread_counts() {
    let serial = evaluator_with_threads(1200, 1);
    let parallel = evaluator_with_threads(1200, 8);
    let a = homogeneous_optimum(&serial, 8);
    let b = homogeneous_optimum(&parallel, 8);
    match (a, b) {
        (Some(x), Some(y)) => {
            assert_eq!(x.count, y.count);
            assert_eq!(x.hourly_cost.to_bits(), y.hourly_cost.to_bits());
        }
        (x, y) => assert_eq!(x.is_none(), y.is_none()),
    }
}

#[test]
fn every_strategy_trace_is_identical_across_thread_counts() {
    let serial = evaluator_with_threads(1000, 1);
    let parallel = evaluator_with_threads(1000, 8);

    let strategies: Vec<Box<dyn SearchStrategy>> = vec![
        Box::new(RibbonSearch::new(RibbonSettings {
            max_evaluations: 15,
            ..RibbonSettings::fast()
        })),
        Box::new(HillClimbSearch::new(25)),
        Box::new(RandomSearch::new(25)),
        Box::new(ResponseSurfaceSearch::new(25)),
        Box::new(ExhaustiveSearch::capped(30)),
    ];
    for s in strategies {
        let a = s.run_search(&serial, 11);
        let b = s.run_search(&parallel, 11);
        assert_eq!(a.len(), b.len(), "{}: trace lengths differ", s.name());
        for (x, y) in a.evaluations().iter().zip(b.evaluations()) {
            assert_bit_identical(x, y);
        }
    }
}

#[test]
fn config_seed_is_stable_and_per_configuration() {
    let a = evaluator_with_threads(800, 1);
    let b = evaluator_with_threads(800, 8);
    // Same workload => same seed, regardless of evaluator parallelism or call order.
    assert_eq!(a.config_seed(&[3, 1, 2]), b.config_seed(&[3, 1, 2]));
    assert_ne!(a.config_seed(&[3, 1, 2]), a.config_seed(&[2, 1, 3]));
    // Different workload seeds decorrelate.
    let other = ConfigEvaluator::new(
        &workload(800).with_seed(999),
        EvaluatorSettings {
            explicit_bounds: Some(vec![6, 4, 6]),
            ..Default::default()
        },
    );
    assert_ne!(a.config_seed(&[3, 1, 2]), other.config_seed(&[3, 1, 2]));
}

/// The acceptance demonstration: a 16-configuration batch on >=4 threads vs. serial.
/// Timings (best of 3, cache-cold per attempt) are always printed
/// (`cargo test parallel_speedup -- --nocapture`); results are always asserted
/// bit-identical. The >=2x speedup bound is asserted only when `RIBBON_REQUIRE_SPEEDUP`
/// is set *and* the host has at least 4 cores: wall-clock ratios on shared CI runners and
/// hyperthreaded shards are too noisy to gate every push on (the Criterion
/// `evaluator_bench` is the reproducible demonstration on real hardware).
#[test]
fn parallel_speedup_on_a_16_config_batch() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let configs = batch16();
    let attempts = 3;

    let mut serial_best = f64::INFINITY;
    let mut parallel_best = f64::INFINITY;
    let mut serial_evals = Vec::new();
    let mut parallel_evals = Vec::new();
    for _ in 0..attempts {
        // Fresh evaluators so every attempt starts cache-cold on identical state.
        let serial = evaluator_with_threads(4000, 1);
        let parallel = evaluator_with_threads(4000, cores.max(4));

        let t0 = Instant::now();
        serial_evals = serial.evaluate_many(&configs);
        serial_best = serial_best.min(t0.elapsed().as_secs_f64());

        let t1 = Instant::now();
        parallel_evals = parallel.evaluate_many(&configs);
        parallel_best = parallel_best.min(t1.elapsed().as_secs_f64());
    }

    for (a, b) in serial_evals.iter().zip(&parallel_evals) {
        assert_bit_identical(a, b);
    }

    let speedup = serial_best / parallel_best.max(1e-9);
    println!(
        "evaluate_many 16 configs x 4000 queries (best of {attempts}): serial {:.1} ms, \
         parallel ({} threads on {cores} cores) {:.1} ms, speedup {speedup:.2}x",
        serial_best * 1e3,
        cores.max(4),
        parallel_best * 1e3,
    );

    if std::env::var_os("RIBBON_REQUIRE_SPEEDUP").is_some() && cores >= 4 {
        assert!(
            speedup >= 2.0,
            "expected >=2x speedup on {cores} cores, got {speedup:.2}x"
        );
    }
    // Otherwise the run is informational: identity is what's asserted unconditionally.
    // (Below 4 cores — often hyperthread siblings of one physical core — and on shared
    // CI runners, wall-clock ratios are pure noise.)
}
