//! Integration test of the load-change adaptation pipeline (Fig. 16 scenario) across the two
//! recommendation workloads.

use ribbon::adapt::LoadAdapter;
use ribbon::evaluator::EvaluatorSettings;
use ribbon::search::RibbonSettings;
use ribbon_models::{ModelKind, Workload};

fn adapter() -> LoadAdapter {
    LoadAdapter::new(
        RibbonSettings {
            max_evaluations: 22,
            ..RibbonSettings::fast()
        },
        EvaluatorSettings {
            max_per_type: 9,
            ..Default::default()
        },
    )
}

#[test]
fn mt_wnd_adapts_to_a_1_5x_load_increase() {
    let mut w = Workload::standard(ModelKind::MtWnd);
    w.num_queries = 1500;
    let outcome = adapter().run(&w, 1.5, 7).expect("initial search converges");
    // The old optimum violates under the new load, warm-start estimates were injected, and a
    // new, more expensive optimum is found.
    assert!(outcome.adaptation_steps[0].violation_percent > 1.0);
    assert!(outcome.estimates_injected > 0);
    let best = outcome.new_best.expect("new optimum found");
    assert!(best.meets_qos);
    assert!(best.hourly_cost > outcome.initial_best.hourly_cost);
}

#[test]
fn dien_adaptation_converges_faster_than_the_initial_search() {
    let mut w = Workload::standard(ModelKind::Dien);
    w.num_queries = 1500;
    let outcome = adapter()
        .run(&w, 1.5, 19)
        .expect("initial search converges");
    let steps_to_recover = outcome
        .steps_to_first_satisfying()
        .expect("a satisfying configuration is found for the new load");
    // The warm start points the search at the satisfying region quickly: the first
    // satisfying configuration appears within half of the adaptation budget.
    assert!(
        steps_to_recover <= 12,
        "took {steps_to_recover} adaptation steps to reach a satisfying configuration"
    );
}

#[test]
fn a_load_decrease_keeps_the_old_optimum_satisfying_without_estimates() {
    let mut w = Workload::standard(ModelKind::MtWnd);
    w.num_queries = 1200;
    let outcome = adapter().run(&w, 0.8, 3).expect("initial search converges");
    // With less load the old optimum still meets QoS, so no warm-start estimates are needed
    // and the new optimum is no more expensive than the old one.
    assert_eq!(outcome.estimates_injected, 0);
    assert!(outcome.adaptation_steps[0].meets_qos);
    assert!(outcome.new_cost_ratio.unwrap() <= 1.0 + 1e-9);
}
