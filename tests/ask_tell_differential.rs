//! Differential suite for the ask/tell search driver.
//!
//! Two families of pins:
//!
//! 1. **Batch-1 bit-identity** — every strategy routed through the
//!    [`ribbon::search::SearchDriver`] at `batch = 1` must reproduce its legacy
//!    one-suggestion-at-a-time loop bit for bit: RIBBON's BO engine against the verbatim
//!    historical loop ([`RibbonSearch::run_legacy_with`]), TPE's seeded-random fallback
//!    against the BO initial phase, and the RANDOM / Hill-Climb / RSM / exhaustive
//!    baselines through their [`AskTellStrategy`] adapters against their legacy
//!    `run_search` loops.
//! 2. **Successive-halving soundness** — a proptest that multi-fidelity promotion never
//!    discards a configuration that full-fidelity evaluation would have ranked best:
//!    every discarded estimate's true full-stream objective is at most the best full
//!    objective the trace kept.

use proptest::prelude::*;
use ribbon::evaluator::{ConfigEvaluator, EvaluatorSettings};
use ribbon::search::SearchTrace;
use ribbon::strategies::{
    BatchedSearch, ExhaustiveSearch, HillClimbSearch, RandomSearch, ResponseSurfaceSearch,
    SearchStrategy, TpeSearch,
};
use ribbon::{RibbonSearch, RibbonSettings};
use ribbon_models::{ModelKind, Workload};
use std::sync::OnceLock;

fn build_small_evaluator() -> ConfigEvaluator {
    let mut w = Workload::standard(ModelKind::MtWnd);
    w.num_queries = 800;
    ConfigEvaluator::new(
        &w,
        EvaluatorSettings {
            explicit_bounds: Some(vec![6, 4, 6]),
            ..Default::default()
        },
    )
}

/// A small MT-WND evaluator (800 queries, 6×4×6 lattice) shared by the deterministic
/// bit-identity tests. Kept separate from the multi-fidelity proptests' instance so the
/// deterministic tests never contend with hundreds of concurrent proptest cases for the
/// simulation cache.
fn small_evaluator() -> &'static ConfigEvaluator {
    static EV: OnceLock<ConfigEvaluator> = OnceLock::new();
    EV.get_or_init(build_small_evaluator)
}

/// A second instance shared across the multi-fidelity proptest cases, so the simulation
/// caches amortize repeated configurations between cases.
fn fidelity_evaluator() -> &'static ConfigEvaluator {
    static EV: OnceLock<ConfigEvaluator> = OnceLock::new();
    EV.get_or_init(build_small_evaluator)
}

/// An even smaller lattice for the exhaustive comparison.
fn tiny_evaluator() -> ConfigEvaluator {
    let mut w = Workload::standard(ModelKind::MtWnd);
    w.num_queries = 600;
    ConfigEvaluator::new(
        &w,
        EvaluatorSettings {
            explicit_bounds: Some(vec![5, 0, 4]),
            ..Default::default()
        },
    )
}

fn assert_bit_identical(driver: &SearchTrace, legacy: &SearchTrace, label: &str) {
    assert_eq!(
        driver.evaluations, legacy.evaluations,
        "{label}: driver trace diverges from the legacy loop"
    );
    assert!(
        driver.estimates.is_empty(),
        "{label}: full-fidelity run produced estimates"
    );
    assert_eq!(
        driver.fidelity.prefix_evaluations, 0,
        "{label}: full-fidelity run spent prefix simulations"
    );
}

#[test]
fn ribbon_driver_at_batch_1_is_bit_identical_to_the_legacy_loop() {
    let ev = small_evaluator();
    for seed in [1u64, 7, 42] {
        let search = RibbonSearch::new(RibbonSettings {
            max_evaluations: 12,
            ..RibbonSettings::fast()
        });
        let mut bo = search.make_optimizer(ev);
        let driver = search.run_with(ev, &mut bo, seed);
        let mut bo = search.make_optimizer(ev);
        let legacy = search.run_legacy_with(ev, &mut bo, seed);
        assert_bit_identical(&driver, &legacy, &format!("RIBBON seed {seed}"));
    }
}

#[test]
fn ribbon_driver_matches_the_legacy_loop_with_a_start_config() {
    let ev = small_evaluator();
    let search = RibbonSearch::new(RibbonSettings {
        max_evaluations: 10,
        start_config: Some(vec![3, 2, 3]),
        ..RibbonSettings::fast()
    });
    let mut bo = search.make_optimizer(ev);
    let driver = search.run_with(ev, &mut bo, 5);
    let mut bo = search.make_optimizer(ev);
    let legacy = search.run_legacy_with(ev, &mut bo, 5);
    assert_bit_identical(&driver, &legacy, "RIBBON with start config");
}

/// TPE's seeded-random fallback (the phase before enough observations exist to fit the
/// Parzen densities) asks the same configurations as the BO engine's random initial
/// phase: pinning a TPE run that never leaves the fallback against the legacy RIBBON
/// loop that never leaves its initial phase compares both, evaluation for evaluation.
#[test]
fn tpe_random_fallback_is_bit_identical_to_the_legacy_initial_phase() {
    let ev = small_evaluator();
    for seed in [0u64, 3, 11] {
        let budget = 10;
        let mut tpe = TpeSearch::new(budget);
        tpe.settings.initial_samples = budget; // never leaves the random fallback
        let driver = tpe.run_search(ev, seed);

        let search = RibbonSearch::new(RibbonSettings {
            max_evaluations: budget,
            initial_samples: budget, // never leaves the random initial phase
            ..RibbonSettings::fast()
        });
        let mut bo = search.make_optimizer(ev);
        let legacy = search.run_legacy_with(ev, &mut bo, seed);
        assert_bit_identical(&driver, &legacy, &format!("TPE fallback seed {seed}"));
    }
}

#[test]
fn baseline_adapters_at_batch_1_are_bit_identical_to_their_legacy_loops() {
    let ev = small_evaluator();
    for seed in [0u64, 5, 9] {
        for budget in [6usize, 14] {
            let legacy = RandomSearch::new(budget).run_search(ev, seed);
            let driver = BatchedSearch::new(RandomSearch::new(budget)).run_search(ev, seed);
            assert_bit_identical(&driver, &legacy, &format!("RANDOM seed {seed}/{budget}"));

            let legacy = HillClimbSearch::new(budget).run_search(ev, seed);
            let driver = BatchedSearch::new(HillClimbSearch::new(budget)).run_search(ev, seed);
            assert_bit_identical(
                &driver,
                &legacy,
                &format!("Hill-Climb seed {seed}/{budget}"),
            );

            let legacy = ResponseSurfaceSearch::new(budget).run_search(ev, seed);
            let driver =
                BatchedSearch::new(ResponseSurfaceSearch::new(budget)).run_search(ev, seed);
            assert_bit_identical(&driver, &legacy, &format!("RSM seed {seed}/{budget}"));
        }
    }
}

#[test]
fn exhaustive_adapter_is_bit_identical_at_any_batch() {
    let ev = tiny_evaluator();
    let legacy = ExhaustiveSearch::default().run_search(&ev, 0);
    for batch in [1usize, 4] {
        let driver = BatchedSearch::new(ExhaustiveSearch::default())
            .with_batch(batch)
            .run_search(&ev, 0);
        assert_eq!(
            driver.evaluations, legacy.evaluations,
            "exhaustive diverges at batch {batch}"
        );
    }
}

proptest! {

    /// Successive halving is sound: whatever the seed, batch size, fidelity fraction, and
    /// budget, no discarded candidate's true full-fidelity objective exceeds the best full
    /// objective the trace kept — the multi-fidelity stage can only drop provable losers.
    #[test]
    fn sh_never_discards_the_best(
        seed in 0u64..200,
        batch in 2usize..7,
        budget in 6usize..12,
        fidelity_pct in 10u32..80,
    ) {
        let ev = fidelity_evaluator();
        let trace = RibbonSearch::new(RibbonSettings {
            max_evaluations: budget,
            batch,
            fidelity: Some(f64::from(fidelity_pct) / 100.0),
            ..RibbonSettings::fast()
        })
        .run(ev, seed);
        prop_assert!(!trace.is_empty());
        prop_assert!(trace.len() <= budget);
        let best_full = trace
            .evaluations()
            .iter()
            .map(|e| e.objective)
            .fold(f64::NEG_INFINITY, f64::max);
        for est in &trace.estimates {
            let full = ev.evaluate(&est.config);
            prop_assert!(
                full.objective <= best_full,
                "discarded {:?} (full objective {}) beats the best kept ({best_full})",
                est.config,
                full.objective
            );
        }
    }

    /// The batched TPE strategy obeys the same soundness bound.
    #[test]
    fn sh_is_sound_under_tpe(seed in 0u64..100, batch in 2usize..6) {
        let ev = fidelity_evaluator();
        let trace = TpeSearch::new(10)
            .with_batch(batch)
            .with_fidelity(Some(0.25))
            .run_search(ev, seed);
        prop_assert!(!trace.is_empty());
        let best_full = trace
            .evaluations()
            .iter()
            .map(|e| e.objective)
            .fold(f64::NEG_INFINITY, f64::max);
        for est in &trace.estimates {
            let full = ev.evaluate(&est.config);
            prop_assert!(full.objective <= best_full);
        }
    }
}
