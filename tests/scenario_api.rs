//! Integration tests of the declarative scenario layer against the *repository
//! artifacts*: every bundled `scenarios/*.toml` must parse, round-trip losslessly, and
//! compile; `data/catalog.toml` must equal the engine's built-in catalog; and malformed
//! files must fail with actionable, path-tagged errors.
//!
//! (The bit-for-bit golden-trace differential for the façade lives in
//! `crates/bench/tests/scenario_golden.rs` and in CI's `perfsnap --check`.)

use ribbon::scenario::{RunMode, Scenario, ScenarioError, ScenarioSpec};
use ribbon_cloudsim::Catalog;
use std::path::PathBuf;

fn repo_root() -> PathBuf {
    // Integration tests run with CWD = crates/ribbon; artifacts live two levels up.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn bundled_toml_files() -> Vec<PathBuf> {
    let dir = repo_root().join("scenarios");
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("read {}: {e}", dir.display()))
        .map(|entry| entry.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "toml"))
        .collect();
    files.sort();
    files
}

fn is_fleet_file(path: &std::path::Path) -> bool {
    path.file_name()
        .is_some_and(|n| n.to_string_lossy().starts_with("fleet_"))
}

/// Single-model scenario files (the fleet files have their own suite below).
fn bundled_scenarios() -> Vec<PathBuf> {
    let files: Vec<PathBuf> = bundled_toml_files()
        .into_iter()
        .filter(|p| !is_fleet_file(p))
        .collect();
    assert!(
        files.len() >= 4,
        "expected several bundled scenarios, found {}",
        files.len()
    );
    files
}

fn bundled_fleets() -> Vec<PathBuf> {
    let files: Vec<PathBuf> = bundled_toml_files()
        .into_iter()
        .filter(|p| is_fleet_file(p))
        .collect();
    assert!(
        files.len() >= 2,
        "expected several bundled fleet files, found {}",
        files.len()
    );
    files
}

#[test]
fn every_bundled_scenario_parses_round_trips_and_compiles() {
    for path in bundled_scenarios() {
        let path_str = path.to_string_lossy().into_owned();
        let scenario = Scenario::load(&path_str).unwrap_or_else(|e| panic!("{path_str}: {e}"));

        // Lossless round-trip: spec -> TOML -> spec and spec -> JSON -> spec.
        let spec = &scenario.spec;
        let via_toml = ScenarioSpec::from_toml_str(&spec.to_toml_string())
            .unwrap_or_else(|e| panic!("{path_str} toml round-trip: {e}"));
        assert_eq!(
            *spec, via_toml,
            "{path_str}: TOML round-trip changed the spec"
        );
        let via_json = ScenarioSpec::from_json_str(&spec.to_json_string())
            .unwrap_or_else(|e| panic!("{path_str} json round-trip: {e}"));
        assert_eq!(
            *spec, via_json,
            "{path_str}: JSON round-trip changed the spec"
        );

        // Serve-mode scenarios must come with a compiled traffic trace.
        if spec.mode == RunMode::Serve {
            assert!(
                scenario.traffic.is_some(),
                "{path_str}: serve without traffic"
            );
        }
        // Every bundled scenario resolves its pool through the data-file catalog.
        assert_eq!(
            scenario.catalog,
            Catalog::builtin(),
            "{path_str}: bundled scenarios use the (builtin-equal) data catalog"
        );
    }
}

#[test]
fn bundled_scenarios_cover_three_models_and_two_traffic_shapes() {
    let mut models = std::collections::HashSet::new();
    let mut shapes = std::collections::HashSet::new();
    for path in bundled_scenarios() {
        let scenario = Scenario::load(&path.to_string_lossy()).unwrap();
        models.insert(scenario.workload.model.name().to_string());
        if let Some(t) = &scenario.spec.traffic {
            if let Some(s) = &t.scenario {
                shapes.insert(s.clone());
            }
        }
    }
    assert!(models.len() >= 3, "models covered: {models:?}");
    assert!(shapes.len() >= 2, "traffic shapes covered: {shapes:?}");
}

#[test]
fn every_bundled_fleet_parses_round_trips_and_compiles() {
    use ribbon::fleet::{Fleet, FleetSpec};
    for path in bundled_fleets() {
        let path_str = path.to_string_lossy().into_owned();
        let fleet = Fleet::load(&path_str).unwrap_or_else(|e| panic!("{path_str}: {e}"));
        assert!(
            fleet.num_members() >= 2,
            "{path_str}: fleets co-locate models"
        );

        // Lossless round-trip through both formats.
        let spec = &fleet.spec;
        let via_toml = FleetSpec::from_toml_str(&spec.to_toml_string())
            .unwrap_or_else(|e| panic!("{path_str} toml round-trip: {e}"));
        assert_eq!(
            *spec, via_toml,
            "{path_str}: TOML round-trip changed the spec"
        );
        let via_json = FleetSpec::from_json_str(&spec.to_json_string())
            .unwrap_or_else(|e| panic!("{path_str} json round-trip: {e}"));
        assert_eq!(
            *spec, via_json,
            "{path_str}: JSON round-trip changed the spec"
        );

        // Serve-mode fleets compile traffic for every member; all bundled fleets
        // resolve through the (builtin-equal) data catalog.
        if spec.mode == RunMode::Serve {
            for member in &fleet.members {
                assert!(
                    member.scenario.traffic.is_some(),
                    "{path_str}: serve-mode member {} without traffic",
                    member.name
                );
            }
        }
        assert_eq!(fleet.catalog, Catalog::builtin(), "{path_str}");
    }
}

#[test]
fn bundled_fleets_mix_policies_and_declare_shared_pools() {
    let mut policies = std::collections::HashSet::new();
    let mut any_shared = false;
    for path in bundled_fleets() {
        let fleet = ribbon::fleet::Fleet::load(&path.to_string_lossy()).unwrap();
        any_shared |= fleet.has_shared();
        for member in &fleet.members {
            policies.insert(member.scenario.policy.describe());
        }
    }
    assert!(
        policies.len() >= 3,
        "bundled fleets must mix QoS policies: {policies:?}"
    );
    assert!(
        any_shared,
        "at least one bundled fleet declares shared slots"
    );
}

#[test]
fn catalog_data_file_matches_the_builtin_table() {
    let path = repo_root().join("data/catalog.toml");
    let loaded = Catalog::load(&path.to_string_lossy())
        .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    assert_eq!(
        loaded,
        Catalog::builtin(),
        "data/catalog.toml drifted from instance::BUILTIN_CATALOG"
    );
}

#[test]
fn variants_data_file_matches_the_builtin_table() {
    use ribbon_cloudsim::VariantCatalog;
    let path = repo_root().join("data/variants.toml");
    let loaded = VariantCatalog::load(&path.to_string_lossy())
        .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    let builtin = ribbon_models::variants::builtin_variant_catalog();
    loaded
        .ensure_matches(&builtin)
        .unwrap_or_else(|e| panic!("data/variants.toml drifted from ribbon_models::variants: {e}"));
    assert_eq!(
        loaded.entries().len(),
        builtin.entries().len(),
        "data/variants.toml must list the full builtin variant table, not a subset"
    );
}

#[test]
fn a_quick_bundled_scenario_actually_runs_end_to_end() {
    // The smallest bundled plan scenario, shrunk further so the debug-mode test stays
    // fast: the file's structure is exercised verbatim, only stream size and budget drop.
    let path = repo_root().join("scenarios/mtwnd_plan.toml");
    let mut spec = Scenario::load(&path.to_string_lossy()).unwrap().spec;
    spec.workload.num_queries = Some(600);
    spec.planner.budget = 4;
    spec.planner.baseline = false;
    spec.evaluator.bounds = Some(vec![4, 2, 4]);
    let report = spec
        .compile_with_base(Some(&repo_root().join("scenarios")))
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(report.planner, "RIBBON");
    assert!(report.plan.unwrap().trace.len() <= 4);
}

#[test]
fn missing_files_and_syntax_errors_are_reported_not_panicked() {
    match Scenario::load("/definitely/not/here.toml") {
        Err(ScenarioError::Io { path, .. }) => assert!(path.contains("not/here")),
        other => panic!("expected Io error, got {other:?}"),
    }

    let dir = std::env::temp_dir().join("ribbon-scenario-api-test");
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.toml");
    std::fs::write(&bad, "[scenario]\nname = \"x\"\nbroken =\n").unwrap();
    match Scenario::load(&bad.to_string_lossy()) {
        Err(ScenarioError::Parse(e)) => assert!(e.path.contains("line 3"), "{e}"),
        other => panic!("expected Parse error, got {other:?}"),
    }
}

#[test]
fn the_error_display_forms_are_actionable() {
    let e = ScenarioSpec::from_toml_str("[workload]\nmodel = \"MT-WND\"\n").unwrap_err();
    // Missing [scenario] section names the section.
    assert!(e.to_string().contains("scenario"), "{e}");

    let spec =
        ScenarioSpec::from_toml_str("[scenario]\nname = \"x\"\n\n[workload]\nmodel = \"nope\"\n")
            .unwrap();
    let e = spec.compile().unwrap_err();
    let msg = e.to_string();
    assert!(msg.contains("workload.model"), "{msg}");
    assert!(msg.contains("MT-WND"), "error lists known models: {msg}");
}
