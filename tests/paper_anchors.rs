//! Reproduction anchors taken directly from the paper's figures, evaluated on the full-size
//! workloads (4000-query streams). These are the claims EXPERIMENTS.md reports against.

use ribbon_cloudsim::{simulate, InstanceType, PoolSpec};
use ribbon_models::{ModelKind, ModelProfile, Workload, ALL_MODELS};

/// Fig. 4: the MT-WND (g4dn + t3) anatomy — which configurations meet the 20 ms p99 target.
#[test]
fn fig4_mt_wnd_pool_anatomy_matches_the_paper() {
    let workload = Workload::standard(ModelKind::MtWnd);
    let profile = workload.profile();
    let queries = workload.stream_config().generate();
    let anchors: [(u32, u32, bool); 6] = [
        (4, 0, false),
        (5, 0, true),
        (0, 12, false),
        (3, 4, true),
        (2, 4, false),
        (4, 4, true),
    ];
    for (g, t, expect_meets) in anchors {
        let pool = PoolSpec::new(vec![InstanceType::G4dn, InstanceType::T3], vec![g, t]);
        let rate = simulate(&pool, &queries, &profile)
            .satisfaction_rate(workload.qos.latency_target_s)
            .expect("non-empty stream");
        assert_eq!(
            workload.qos.is_met_by_rate(rate),
            expect_meets,
            "({g} + {t}) has satisfaction rate {rate:.4}, expected meets={expect_meets}"
        );
    }
    // And the cost ordering of Fig. 4: (3+4) is cheaper than (5+0), (4+4) is more expensive.
    let cost = |g: u32, t: u32| {
        PoolSpec::new(vec![InstanceType::G4dn, InstanceType::T3], vec![g, t]).hourly_cost()
    };
    assert!(cost(3, 4) < cost(5, 0));
    assert!(cost(4, 4) > cost(5, 0));
    assert!(cost(0, 12) < cost(5, 0));
}

/// Fig. 3: the GPU leads performance at batch 128 but is the least cost-effective at batch 32,
/// and the memory-optimized instances top the cost-effectiveness ranking.
#[test]
fn fig3_performance_and_cost_effectiveness_shape() {
    let p = ModelProfile::new(ModelKind::MtWnd);
    let others = [
        InstanceType::C5,
        InstanceType::M5n,
        InstanceType::T3,
        InstanceType::R5,
        InstanceType::R5n,
    ];
    for t in others {
        assert!(
            p.throughput_qps(InstanceType::G4dn, 128) > p.throughput_qps(t, 128),
            "g4dn must lead performance at batch 128 (vs {t})"
        );
        assert!(
            p.cost_effectiveness(t, 32) > p.cost_effectiveness(InstanceType::G4dn, 32),
            "g4dn must be least cost-effective at batch 32 (vs {t})"
        );
    }
    for t in [InstanceType::G4dn, InstanceType::C5, InstanceType::M5n] {
        assert!(p.cost_effectiveness(InstanceType::R5, 32) > p.cost_effectiveness(t, 32));
        assert!(p.cost_effectiveness(InstanceType::R5, 128) > p.cost_effectiveness(t, 128));
    }
}

/// Sec. 5.1: the QoS targets are reachable on the base type — the largest possible batch is
/// served within the latency target on an idle base instance.
#[test]
fn qos_targets_are_feasible_for_every_model() {
    for m in ALL_MODELS {
        let w = Workload::standard(m);
        let p = ModelProfile::new(m);
        let worst = p.latency_ms(w.base_type, w.max_batch) / 1000.0;
        assert!(
            worst < w.qos.latency_target_s,
            "{m}: worst-case service {worst:.3}s exceeds the target {:.3}s",
            w.qos.latency_target_s
        );
    }
}

/// The core claim behind the whole paper: for every model there exists a heterogeneous
/// configuration that meets QoS at a cost strictly below the optimal homogeneous pool.
#[test]
fn a_cheaper_qos_meeting_heterogeneous_configuration_exists_for_every_model() {
    use ribbon::evaluator::{ConfigEvaluator, EvaluatorSettings};
    use ribbon::prelude::*;
    use ribbon::strategies::ExhaustiveSearch;

    for m in ALL_MODELS {
        let mut w = Workload::standard(m);
        w.num_queries = 2000; // full shape, reduced stream length to keep the test quick
        let ev = ConfigEvaluator::new(
            &w,
            EvaluatorSettings {
                max_per_type: 10,
                ..Default::default()
            },
        );
        let homo =
            homogeneous_optimum(&ev, 14).unwrap_or_else(|| panic!("{m}: no homogeneous optimum"));
        let hetero =
            ExhaustiveSearch::optimum(&ev).unwrap_or_else(|| panic!("{m}: no hetero optimum"));
        assert!(
            hetero.hourly_cost < homo.hourly_cost + 1e-9,
            "{m}: heterogeneous optimum ${:.3} should not exceed homogeneous ${:.3}",
            hetero.hourly_cost,
            homo.hourly_cost
        );
    }
}
