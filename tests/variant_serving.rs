//! Variant-serving suite (INFaaS-style model-less serving): the joint variant × pool
//! planner, the per-lane degrade/upgrade router, and the differential guarantees that
//! make the variant axis safe to ship.
//!
//! Three families of pins:
//!
//! * **acceptance** — the bundled `mtwnd_variant_plan` scenario's joint plan is
//!   *strictly* cheaper than the best single-variant plan (computed exhaustively over
//!   the uniform-assignment sub-lattice), and the bundled `fleet_variant_flash` crowd
//!   is absorbed entirely by palette degradation — zero pool reconfigurations;
//! * **differential** — a single-entry palette (`variants = ["fp32-b1"]`) is the
//!   variant-less pipeline bit for bit, for single-model serve and for sharded fleets
//!   alike, so turning the axis *on* without using it changes nothing;
//! * **properties** — spec round-trips preserve the palette keys, and the joint
//!   evaluator's split/accuracy helpers hold on random configurations.

use proptest::prelude::*;
use ribbon::evaluator::{BatchEvaluator, EvaluatorSettings};
use ribbon::fleet::{FleetPlanner, FleetReport, FleetSpec, RibbonFleetPlanner};
use ribbon::scenario::{Scenario, ScenarioReport, ScenarioSpec};
use ribbon::VariantEvaluator;
use std::path::PathBuf;

fn repo_root() -> PathBuf {
    // Integration tests run with CWD = crates/ribbon; artifacts live two levels up.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

// ---------------------------------------------------------------------------
// Acceptance: the bundled scenarios do what their headers promise.
// ---------------------------------------------------------------------------

/// The joint variant × pool plan of `scenarios/mtwnd_variant_plan.toml` meets QoS on a
/// pool *strictly* cheaper than the best plan restricted to a single serving variant.
/// The single-variant optimum is computed exhaustively (uniform palette assignments
/// over the full pool lattice), so the comparison is against the true frontier, not
/// against another search's luck.
#[test]
fn joint_variant_plan_beats_every_single_variant_plan() {
    let path = repo_root().join("scenarios/mtwnd_variant_plan.toml");
    let scenario = Scenario::load(&path.to_string_lossy()).expect("bundled scenario loads");
    let report = scenario.run().expect("the plan runs");
    let plan = report.plan.expect("plan mode produces a plan section");
    let best = plan
        .best_config
        .expect("the search finds a QoS-meeting plan");
    let joint_cost = plan.best_hourly_cost.expect("a best plan has a cost");

    // The chosen plan actually mixes variants across populated types.
    let names = plan
        .variants
        .expect("variant scenarios report an assignment");
    let evaluator = scenario.build_variant_evaluator();
    let (counts, _) = evaluator.split(&best);
    let populated: std::collections::BTreeSet<&str> = counts
        .iter()
        .zip(&names)
        .filter(|(&c, _)| c > 0)
        .map(|(_, n)| n.as_str())
        .collect();
    assert!(
        populated.len() >= 2,
        "the winning plan must mix variants, got {names:?} over pool {counts:?}"
    );
    let min_accuracy = scenario
        .workload
        .min_accuracy
        .expect("scenario sets a floor");
    assert!(plan.worst_accuracy.expect("reported") >= min_accuracy);

    // Exhaustive single-variant frontier: every pool point, every *uniform* assignment.
    let bounds = evaluator.pool_bounds().to_vec();
    let palette = scenario.workload.variants.len() as u32;
    let mut uniform = Vec::new();
    for c0 in 0..=bounds[0] {
        for c1 in 0..=bounds[1] {
            for c2 in 0..=bounds[2] {
                if c0 + c1 + c2 == 0 {
                    continue;
                }
                for v in 0..palette {
                    uniform.push(vec![c0, c1, c2, v, v, v]);
                }
            }
        }
    }
    let best_uniform = evaluator
        .evaluate_many(&uniform)
        .into_iter()
        .filter(|e| e.meets_qos)
        .map(|e| e.hourly_cost)
        .fold(f64::INFINITY, f64::min);
    assert!(
        best_uniform.is_finite(),
        "some single-variant plan must meet QoS for the comparison to mean anything"
    );
    assert!(
        joint_cost < best_uniform,
        "joint plan (${joint_cost:.4}/hr) must beat the single-variant frontier \
         (${best_uniform:.4}/hr) strictly"
    );
}

/// The `fleet_variant_flash` crowd is absorbed by the MT-WND lane stepping down its
/// palette: non-zero degraded-query counts and router switches, *zero* pool
/// reconfigurations anywhere in the fleet — degradation is the cheaper first resort.
#[test]
fn fleet_flash_crowd_is_absorbed_by_degradation_not_reconfiguration() {
    let path = repo_root().join("scenarios/fleet_variant_flash.toml");
    let fleet = ribbon::fleet::Fleet::load(&path.to_string_lossy()).expect("fleet loads");
    let report = RibbonFleetPlanner.serve(&fleet).expect("the fleet serves");

    let totals = report.serve.as_ref().expect("serve totals");
    assert_eq!(
        totals.reconfigurations, 0,
        "the crowd must not force a replan"
    );
    assert!(
        totals.variant_switches > 0,
        "the crowd must trip the router"
    );

    let mt = report.models[0].serve.as_ref().expect("serve section");
    assert!(mt.events.is_empty(), "no slice reconfigurations for MT-WND");
    assert!(!mt.variant_switches.is_empty());
    let served = mt.variant_served.as_ref().expect("palette members report");
    assert_eq!(served.len(), 3, "one counter per palette entry");
    assert!(served[0] > 0, "baseline serves outside the crowd");
    assert!(
        served[1] + served[2] > 0,
        "the crowd is served degraded: {served:?}"
    );

    // The fixed-precision member neither degrades nor reports a palette.
    let dien = report.models[1].serve.as_ref().expect("serve section");
    assert!(dien.events.is_empty());
    assert!(dien.variant_served.is_none());
    assert!(dien.variant_switches.is_empty());
}

// ---------------------------------------------------------------------------
// Differential: a single-entry palette is the variant-less pipeline, bit for bit.
// ---------------------------------------------------------------------------

fn serve_scenario_toml() -> &'static str {
    r#"
[scenario]
name = "variant-differential"
mode = "serve"
seed = 11

[workload]
model = "MT-WND"
num_queries = 900

[planner]
name = "ribbon"
budget = 8
baseline = false

[evaluator]
bounds = [3, 2, 3]

[traffic]
phases = [
  { duration_s = 8.0, qps = 1300.0 },
  { duration_s = 6.0, qps = 1500.0 },
]

[online]
window_s = 2.0
spin_up_factor = 0.5
planning_queries = 1200
"#
}

fn run_serve(palette: Option<&[&str]>) -> ScenarioReport {
    let mut spec = ScenarioSpec::from_toml_str(serve_scenario_toml()).unwrap();
    spec.workload.variants = palette.map(|p| p.iter().map(|s| s.to_string()).collect());
    spec.compile().unwrap().run().unwrap()
}

/// `variants = ["fp32-b1"]` declares the axis without ever leaving the baseline: the
/// whole serve report — every window, every reconfiguration, every cost bit — must
/// equal the variant-less run, and no variant fields may appear.
#[test]
fn single_entry_palette_serve_is_bit_identical_to_variantless() {
    let baseline = run_serve(None);
    let pinned = run_serve(Some(&["fp32-b1"]));
    assert_eq!(baseline, pinned, "a one-entry palette must change nothing");
    let serve = baseline.serve.expect("serve section");
    assert!(serve.variant_events.is_empty());
    assert!(serve.variant_served.is_none());
    assert!(serve.final_variant.is_none());

    // And the money fields agree to the bit, not just under f64 PartialEq.
    let a = run_serve(None).serve.unwrap();
    let b = run_serve(Some(&["fp32-b1"])).serve.unwrap();
    assert_eq!(a.total_cost_usd.to_bits(), b.total_cost_usd.to_bits());
    assert_eq!(a.mean_hourly_cost.to_bits(), b.mean_hourly_cost.to_bits());
    assert_eq!(a.final_hourly_cost.to_bits(), b.final_hourly_cost.to_bits());
}

fn fleet_toml() -> &'static str {
    r#"
[fleet]
name = "variant-fleet-differential"
mode = "serve"
seed = 7
budget = 14
baseline = false
shared_pool = ["g4dn", "r5n"]
shared_bounds = [6, 6]

[[model]]
bounds = [4, 2, 4]

[model.workload]
model = "MT-WND"
num_queries = 900

[model.traffic]
phases = [
  { duration_s = 8.0, qps = 1300.0 },
  { duration_s = 6.0, qps = 1500.0 },
]

[model.online]
window_s = 2.0
spin_up_factor = 0.5
planning_queries = 1200

[[model]]
bounds = [4, 2, 4]

[model.workload]
model = "DIEN"
num_queries = 800

[model.traffic]
phases = [
  { duration_s = 14.0, qps = 1150.0 },
]

[model.online]
window_s = 2.0
spin_up_factor = 0.5
planning_queries = 1200
"#
}

fn serve_fleet(palette: Option<&[&str]>, shards: Option<usize>) -> FleetReport {
    let mut spec = FleetSpec::from_toml_str(fleet_toml()).unwrap();
    spec.shards = shards;
    for m in &mut spec.models {
        m.workload.variants = palette.map(|p| p.iter().map(|s| s.to_string()).collect());
    }
    let fleet = spec.compile().unwrap();
    RibbonFleetPlanner.serve(&fleet).expect("the fleet serves")
}

/// The same guarantee for fleets, at every shard count the drive distinguishes: a
/// one-entry palette on every member reproduces the variant-less fleet report exactly,
/// so sharding and the variant axis cannot interact.
#[test]
fn single_entry_palette_fleet_is_bit_identical_at_every_shard_count() {
    for shards in [Some(1), Some(2), Some(4)] {
        let baseline = serve_fleet(None, shards);
        let pinned = serve_fleet(Some(&["fp32-b1"]), shards);
        assert_eq!(
            baseline, pinned,
            "shards={shards:?}: a one-entry palette must change nothing"
        );
        for m in &baseline.models {
            let serve = m.serve.as_ref().expect("serve section");
            assert!(serve.variant_served.is_none());
            assert!(serve.variant_switches.is_empty());
        }
        assert_eq!(baseline.serve.as_ref().unwrap().variant_switches, 0);
    }
}

// ---------------------------------------------------------------------------
// Spec-layer guarantees and evaluator properties.
// ---------------------------------------------------------------------------

/// Unknown variant names are rejected at compile time with the offending index in the
/// error path, and palettes violating the accuracy floor name the violating entry.
#[test]
fn bad_palettes_fail_with_path_tagged_errors() {
    let mut spec = ScenarioSpec::from_toml_str(serve_scenario_toml()).unwrap();
    spec.workload.variants = Some(vec!["fp32-b1".into(), "fp4-turbo".into()]);
    let err = spec.compile().unwrap_err().to_string();
    assert!(err.contains("workload.variants[1]"), "{err}");
    assert!(err.contains("fp4-turbo"), "{err}");

    let mut spec = ScenarioSpec::from_toml_str(serve_scenario_toml()).unwrap();
    spec.workload.variants = Some(vec!["fp32-b1".into(), "int8-compiled".into()]);
    spec.workload.min_accuracy = Some(0.7995);
    let err = spec.compile().unwrap_err().to_string();
    assert!(err.contains("workload.variants[1]"), "{err}");
    assert!(err.contains("min_accuracy"), "{err}");
}

proptest! {
    /// Any subset of the supported palette (baseline first) plus any representable
    /// accuracy floor round-trips through both serialization formats unchanged.
    #[test]
    fn prop_variant_keys_round_trip_through_toml_and_json(
        take_fp16 in 0u32..2,
        take_int8 in 0u32..2,
        has_floor in 0u32..2,
        floor_val in 0.70f64..0.79,
    ) {
        let mut palette = vec!["fp32-b1".to_string()];
        if take_fp16 == 1 {
            palette.push("fp16-b8".to_string());
        }
        if take_int8 == 1 {
            palette.push("int8-compiled".to_string());
        }
        let floor = (has_floor == 1).then_some(floor_val);
        let mut spec = ScenarioSpec::from_toml_str(serve_scenario_toml()).unwrap();
        spec.workload.variants = Some(palette);
        spec.workload.min_accuracy = floor;
        let via_toml = ScenarioSpec::from_toml_str(&spec.to_toml_string()).unwrap();
        prop_assert_eq!(&spec, &via_toml);
        let via_json = ScenarioSpec::from_json_str(&spec.to_json_string()).unwrap();
        prop_assert_eq!(&spec, &via_json);
        // The compiled workload keeps the palette in declaration order.
        let scenario = spec.compile().unwrap();
        prop_assert_eq!(
            scenario.workload.variants.len(),
            spec.workload.variants.as_ref().unwrap().len()
        );
    }

    /// Joint-lattice helper invariants on random configurations: `split` inverts
    /// `baseline_config`, and `worst_accuracy` is the min over populated types only.
    #[test]
    fn prop_split_and_worst_accuracy_hold_on_random_configs(
        c0 in 0u32..4, c1 in 0u32..4, c2 in 0u32..4,
        v0 in 0u32..3, v1 in 0u32..3, v2 in 0u32..3,
    ) {
        use ribbon_models::{ModelKind, Workload, ALL_VARIANT_KINDS};
        let mut w = Workload::standard(ModelKind::MtWnd);
        w.num_queries = 50; // helpers only — no simulation below
        w.variants = ALL_VARIANT_KINDS.to_vec();
        let ev = VariantEvaluator::new(&w, EvaluatorSettings {
            explicit_bounds: Some(vec![4, 4, 4]),
            ..Default::default()
        });
        let counts = [c0, c1, c2];
        let joint = [c0, c1, c2, v0, v1, v2];
        let (pool, vars) = ev.split(&joint);
        prop_assert_eq!(pool, &counts[..]);
        prop_assert_eq!(vars, &[v0, v1, v2][..]);
        let base = ev.baseline_config(&counts);
        prop_assert_eq!(&base[..3], &counts[..]);
        prop_assert_eq!(&base[3..], &[0u32, 0, 0][..]);

        let acc_of = |v: u32| ribbon_models::variants::accuracy(
            ModelKind::MtWnd,
            ALL_VARIANT_KINDS[v as usize],
        );
        let expected = counts
            .iter()
            .zip([v0, v1, v2])
            .filter(|(&c, _)| c > 0)
            .map(|(_, v)| acc_of(v))
            .fold(acc_of(0), f64::min);
        prop_assert_eq!(ev.worst_accuracy(&joint), expected);
    }
}
