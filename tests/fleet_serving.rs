//! Integration suite of the multi-model fleet layer:
//!
//! 1. **single-model differential** — a fleet with one member and no shared families
//!    must reproduce the single-model `RibbonPlanner` path *bit for bit*: the plan
//!    trace (configs, objectives, full evaluations) and the serve phase (every
//!    monitoring window, every reconfiguration event, total cost) alike;
//! 2. **the bundled three-model fleet** — `scenarios/fleet_rec_trio.toml` plans
//!    end-to-end with every model's QoS met and a total hourly cost *strictly below*
//!    the sum of the three dedicated-pool optima, deterministically under its fixed
//!    seed, and the same fleet serves end-to-end with healthy per-model satisfaction;
//! 3. **joint-allocation semantics** — shared slots actually carry both models'
//!    queries, and attributed per-model costs decompose the fleet total.

use ribbon::fleet::{FleetPlanner, FleetSpec, RibbonFleetPlanner};
use ribbon::online::serve_online_with_policy;
use ribbon::scenario::{RunMode, ScenarioSpec};
use ribbon::search::RibbonSearch;

fn single_model_scenario_toml() -> &'static str {
    r#"
[scenario]
name = "solo"
mode = "plan"
seed = 9

[workload]
model = "MT-WND"
num_queries = 900

[planner]
name = "ribbon"
budget = 10
baseline = false

[evaluator]
bounds = [6, 4, 6]
"#
}

fn single_model_fleet_toml() -> &'static str {
    r#"
[fleet]
name = "solo-fleet"
mode = "plan"
seed = 9
budget = 10
baseline = false

[[model]]
bounds = [6, 4, 6]

[model.workload]
model = "MT-WND"
num_queries = 900
"#
}

#[test]
fn single_model_fleet_plan_is_bit_identical_to_the_ribbon_planner() {
    let scenario = ScenarioSpec::from_toml_str(single_model_scenario_toml())
        .unwrap()
        .compile()
        .unwrap();
    let solo = scenario.run().unwrap().plan.expect("plan mode");

    let fleet = FleetSpec::from_toml_str(single_model_fleet_toml())
        .unwrap()
        .compile()
        .unwrap();
    let report = fleet.run().unwrap();

    assert_eq!(report.evaluations, solo.trace.len());
    for (fe, se) in report.trace.iter().zip(solo.trace.evaluations()) {
        assert_eq!(fe.per_model.len(), 1);
        assert_eq!(
            &fe.per_model[0], se,
            "joint trace must be the member's evaluation, bit for bit"
        );
        assert_eq!(fe.config, se.config, "flat allocation == member config");
        assert_eq!(
            fe.objective, se.objective,
            "fleet Eq. 2 must equal RibbonObjective for one member"
        );
    }
    let best = solo.trace.best_satisfying().expect("solo found a pool");
    assert_eq!(report.models[0].dedicated_config, best.config);
    assert_eq!(report.models[0].dedicated_hourly_cost, best.hourly_cost);
    assert!(report.models[0].meets_qos);
}

#[test]
fn single_model_fleet_serve_is_bit_identical_to_serve_online() {
    let serve_toml = r#"
[fleet]
name = "solo-serve"
mode = "serve"
seed = 7
budget = 18
baseline = false

[[model]]
bounds = [7, 4, 7]

[model.workload]
model = "MT-WND"

[model.traffic]
scenario = "flash-crowd"
duration_s = 24.0

[model.online]
window_s = 2.0
spin_up_factor = 0.5
planning_queries = 1200
"#;
    let fleet = FleetSpec::from_toml_str(serve_toml)
        .unwrap()
        .compile()
        .unwrap();
    let member = &fleet.members[0];
    let outcome = serve_online_with_policy(
        &member.scenario.workload,
        member.scenario.traffic.as_ref().expect("serve traffic"),
        &member.scenario.online_settings,
        fleet.spec.seed,
        member.scenario.policy.clone(),
    )
    .expect("single-model serve converges");

    let report = fleet.run().unwrap();
    let ms = report.models[0].serve.as_ref().expect("serve section");
    let totals = report.serve.as_ref().expect("fleet totals");

    assert_eq!(ms.initial_config, outcome.initial_config);
    assert_eq!(ms.final_config, outcome.final_config);
    assert_eq!(
        ms.window_stats, outcome.windows,
        "every monitoring window must be bit-identical to serve_online's"
    );
    assert_eq!(ms.queries, outcome.stats.num_queries);
    assert_eq!(ms.satisfaction_rate, outcome.stats.satisfaction_rate());
    assert_eq!(ms.events.len(), outcome.events.len());
    for (fe, oe) in ms.events.iter().zip(&outcome.events) {
        assert_eq!(fe.window_index, oe.window_index);
        assert_eq!(fe.config, oe.config);
        assert_eq!(fe.planned_qps, oe.planned_qps);
        assert_eq!(fe.transition_cost_usd, oe.transition_cost_usd);
    }
    assert_eq!(totals.total_cost_usd, outcome.total_cost_usd);
    assert_eq!(totals.duration_s, outcome.duration_s);
    assert_eq!(totals.final_hourly_cost, outcome.final_hourly_cost);
}

fn trio_path() -> &'static str {
    // Integration tests run with the package root (crates/ribbon) as CWD.
    "../../scenarios/fleet_rec_trio.toml"
}

#[test]
fn bundled_trio_beats_the_dedicated_pools_baseline_with_all_qos_met() {
    let fleet = ribbon::fleet::Fleet::load(trio_path()).expect("bundled trio loads");
    let report = fleet.run().expect("the trio plans");

    // Every model meets its own QoS policy under the chosen allocation.
    for m in &report.models {
        assert!(m.meets_qos, "{} violated its policy: {:?}", m.name, m);
        assert!(m.satisfaction_rate >= 0.99 || m.qos.contains("mean latency"));
    }
    // The joint allocation is strictly cheaper than running three dedicated pools.
    let baseline = report
        .baseline_total_hourly_cost
        .expect("baseline = true computes the dedicated optima");
    assert!(
        report.total_hourly_cost < baseline,
        "joint ${} must beat dedicated ${baseline}",
        report.total_hourly_cost
    );
    // The saving comes from actual sharing: both recommendation models lean on the
    // shared slots at plan time.
    assert!(report.shared_config.iter().any(|&c| c > 0));
    assert!(
        report.models[0].shared_queries > 0,
        "MT-WND uses shared slots"
    );
    assert!(
        report.models[1].shared_queries > 0,
        "DIEN uses shared slots"
    );
    assert_eq!(
        report.models[2].shared_queries, 0,
        "ResNet50 (share_weight = 0) never touches them"
    );
    // Attributed per-model costs decompose the fleet total.
    let attributed: f64 = report.models.iter().map(|m| m.attributed_hourly_cost).sum();
    assert!((attributed - report.total_hourly_cost).abs() < 1e-9);
}

#[test]
fn bundled_trio_plan_is_deterministic_under_its_seed() {
    let a = ribbon::fleet::Fleet::load(trio_path())
        .unwrap()
        .run()
        .unwrap();
    let b = ribbon::fleet::Fleet::load(trio_path())
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(a, b, "same spec + same seed must reproduce the full report");
}

#[test]
fn trio_serves_end_to_end_with_healthy_per_model_satisfaction() {
    // The bundled trio with steady slightly-below-plan traffic attached to each
    // member: the fleet must serve end-to-end with every model's stream staying at
    // (or above) its planning-time satisfaction.
    let mut spec = FleetSpec::load_file(trio_path()).unwrap();
    spec.mode = RunMode::Serve;
    spec.catalog = None; // test CWD differs from the scenario dir
    let duration = 16.0;
    let loads = [1300.0, 1150.0, 46.0];
    for (m, qps) in spec.models.iter_mut().zip(loads) {
        m.traffic = Some(ribbon::scenario::TrafficSpec {
            scenario: None,
            phases: Some(vec![ribbon::scenario::PhaseSpec {
                duration_s: duration,
                qps,
            }]),
            duration_s: None,
        });
        m.online.window_s = Some(2.0);
        m.online.spin_up_factor = Some(0.5);
        m.online.planning_queries = Some(1200);
    }
    let fleet = spec.compile().unwrap();
    let report = RibbonFleetPlanner.serve(&fleet).expect("the trio serves");
    let totals = report.serve.as_ref().expect("fleet totals");
    assert!(totals.queries > 0);
    assert!(totals.total_cost_usd > 0.0);
    for m in &report.models {
        let serve = m.serve.as_ref().expect("per-member serve section");
        assert!(serve.queries > 0, "{} served no queries", m.name);
        if m.qos.contains("mean latency") {
            // ResNet50 is judged by its own policy: a query-weighted mean within the
            // 200 ms budget (heavy-tail batches are structurally late against the
            // 400 ms classification deadline, so the per-query rate is not its bar).
            let (sum, n) = serve
                .window_stats
                .iter()
                .filter_map(|w| w.mean_latency_s.map(|mean| (mean, w.num_queries)))
                .fold((0.0, 0usize), |(s, c), (mean, nq)| {
                    (s + mean * nq as f64, c + nq)
                });
            let mean_s = sum / n as f64;
            assert!(
                mean_s <= 0.200,
                "{} whole-stream mean latency {mean_s}s blew the 200 ms budget",
                m.name
            );
        } else {
            let rate = serve.satisfaction_rate.expect("non-empty stream");
            assert!(
                rate >= 0.98,
                "{} whole-stream satisfaction {rate} degraded under steady load",
                m.name
            );
        }
    }
    // Serve mode keeps a reconfigurable dedicated slice for every member.
    for m in &report.models {
        assert!(
            m.serve
                .as_ref()
                .unwrap()
                .initial_config
                .iter()
                .any(|&c| c > 0),
            "{} must keep a dedicated slice in serve mode",
            m.name
        );
    }
}

#[test]
fn joint_search_degrades_gracefully_when_nothing_satisfies() {
    // One-instance bounds cannot carry MT-WND's load: the planner must report a run
    // error, not panic or return a violating "best".
    let fleet = FleetSpec::from_toml_str(
        r#"
[fleet]
name = "starved"
seed = 3
budget = 6
baseline = false

[[model]]
bounds = [1, 0, 0]

[model.workload]
model = "MT-WND"
num_queries = 400

[[model]]
bounds = [1, 0, 0]

[model.workload]
model = "DIEN"
num_queries = 400
"#,
    )
    .unwrap()
    .compile()
    .unwrap();
    let err = fleet.run().unwrap_err();
    assert!(err.to_string().contains("no allocation"), "{err}");
}

#[test]
fn member_baselines_match_standalone_ribbon_searches() {
    // The "dedicated-pool optimum" the fleet report quotes must be exactly what a
    // standalone RIBBON search over the same member finds.
    let fleet = ribbon::fleet::Fleet::load(trio_path()).unwrap();
    let report = fleet.run().unwrap();
    let evaluator = ribbon::fleet::FleetEvaluator::new(&fleet).unwrap();
    for (m, member) in fleet.members.iter().enumerate() {
        let search = RibbonSearch::new(member.scenario.search_settings.clone());
        let trace = search.run(evaluator.member_evaluator(m), fleet.spec.seed);
        let best = trace
            .best_satisfying()
            .expect("standalone search converges");
        assert_eq!(
            report.models[m].baseline_config.as_deref(),
            Some(best.config.as_slice()),
            "{}",
            member.name
        );
        assert_eq!(
            report.models[m].baseline_hourly_cost,
            Some(best.hourly_cost)
        );
    }
}
