//! Cross-crate integration tests: the full pipeline from workload definition through
//! simulation, objective, and Ribbon's BO search, on reduced-size workloads.

use ribbon::evaluator::{ConfigEvaluator, EvaluatorSettings};
use ribbon::prelude::*;
use ribbon::search::RibbonSettings;
use ribbon::strategies::ExhaustiveSearch;

fn small_workload(model: ModelKind, num_queries: usize) -> Workload {
    let mut w = Workload::standard(model);
    w.num_queries = num_queries;
    w
}

fn evaluator(model: ModelKind, bounds: Vec<u32>, num_queries: usize) -> ConfigEvaluator {
    ConfigEvaluator::new(
        &small_workload(model, num_queries),
        EvaluatorSettings {
            explicit_bounds: Some(bounds),
            ..Default::default()
        },
    )
}

#[test]
fn ribbon_beats_or_matches_the_homogeneous_baseline_on_mt_wnd() {
    let ev = evaluator(ModelKind::MtWnd, vec![6, 5, 8], 1500);
    let homogeneous = homogeneous_optimum(&ev, 8).expect("homogeneous optimum exists");
    // As in the paper, the search starts from the currently deployed (homogeneous) pool, so
    // the result can only match or improve on it.
    let settings = RibbonSettings {
        max_evaluations: 30,
        start_config: Some(ev.homogeneous_config(homogeneous.count)),
        ..RibbonSettings::fast()
    };
    let trace = RibbonSearch::new(settings).run(&ev, 5);
    let best = trace
        .best_satisfying()
        .expect("ribbon finds a satisfying pool");
    assert!(best.hourly_cost <= homogeneous.hourly_cost + 1e-9);
    assert!(best.meets_qos);
}

#[test]
fn ribbon_reaches_the_exhaustive_optimum_with_far_fewer_evaluations() {
    let ev = evaluator(ModelKind::MtWnd, vec![5, 0, 8], 1200);
    let exhaustive = ExhaustiveSearch::full().run_search(&ev, 0);
    let optimum = exhaustive
        .best_satisfying()
        .expect("optimum exists")
        .clone();
    let trace = RibbonSearch::new(RibbonSettings {
        max_evaluations: 30,
        ..RibbonSettings::fast()
    })
    .run(&ev, 9);
    let best = trace.best_satisfying().expect("ribbon converges");
    // Ribbon's best is within 15% of the true optimum cost while evaluating a fraction of
    // the lattice.
    assert!(
        best.hourly_cost <= optimum.hourly_cost * 1.15 + 1e-9,
        "ribbon ${:.3} vs optimum ${:.3}",
        best.hourly_cost,
        optimum.hourly_cost
    );
    assert!(trace.len() < exhaustive.len() / 2);
}

#[test]
fn evaluations_are_reproducible_across_evaluator_instances() {
    let a = evaluator(ModelKind::Dien, vec![5, 4, 6], 1000).evaluate(&[3, 1, 2]);
    let b = evaluator(ModelKind::Dien, vec![5, 4, 6], 1000).evaluate(&[3, 1, 2]);
    assert_eq!(a.satisfaction_rate, b.satisfaction_rate);
    assert_eq!(a.objective, b.objective);
    assert_eq!(a.hourly_cost, b.hourly_cost);
}

#[test]
fn objective_ranks_satisfying_configs_above_violating_ones_end_to_end() {
    let ev = evaluator(ModelKind::MtWnd, vec![6, 4, 6], 1200);
    let violating = ev.evaluate(&[1, 0, 0]);
    let satisfying = ev.evaluate(&[6, 2, 2]);
    assert!(!violating.meets_qos);
    assert!(satisfying.meets_qos);
    assert!(satisfying.objective > violating.objective);
}

#[test]
fn candle_workload_pipeline_produces_a_cost_saving_diverse_pool() {
    let mut w = small_workload(ModelKind::Candle, 1500);
    w.num_queries = 1500;
    let ev = ConfigEvaluator::new(
        &w,
        EvaluatorSettings {
            max_per_type: 10,
            ..Default::default()
        },
    );
    let homogeneous = homogeneous_optimum(&ev, 12).expect("candle homogeneous baseline");
    let settings = RibbonSettings {
        max_evaluations: 30,
        start_config: Some(ev.homogeneous_config(homogeneous.count)),
        ..RibbonSettings::fast()
    };
    let trace = RibbonSearch::new(settings).run(&ev, 3);
    let best = trace.best_satisfying().expect("candle diverse pool found");
    assert!(best.hourly_cost <= homogeneous.hourly_cost + 1e-9);
    // The diverse optimum mixes instance types (it is not just the homogeneous pool) in the
    // common case; at minimum it must never be more expensive.
    assert!(best.meets_qos);
}
