//! Shard-invariance suite for the fleet serve drive: the coupling-group partition is
//! fixed by the fleet's sharing structure, and `fleet.shards` only caps how many
//! worker threads the groups spread across — so the **full serve report** (every
//! monitoring window including the fleet-wide cost fields, every reconfiguration
//! event, the exact totals) must be identical at every shard count, for multi-group
//! fleets (where lanes really run on different workers) and single-group fleets
//! alike. The companion `fleet_serving` suite pins the single-group drive to the
//! single-model `serve_online` path bit for bit; together they bound both sides:
//! sharding changes nothing, and the unsharded semantics are the historical ones.

use ribbon::fleet::{FleetPlanner, FleetReport, FleetSpec, RibbonFleetPlanner};

/// MT-WND and DIEN contend for a shared slice (one coupled group) while a
/// zero-share-weight DIEN lane runs dedicated (a singleton group): two groups, so at
/// `shards >= 2` the drive genuinely runs on several workers.
fn multi_group_serve_toml() -> &'static str {
    r#"
[fleet]
name = "sharded-serve"
mode = "serve"
seed = 7
budget = 14
baseline = false
shared_pool = ["g4dn", "r5n"]
shared_bounds = [6, 6]

[[model]]
bounds = [4, 2, 4]

[model.workload]
model = "MT-WND"
num_queries = 900

[model.traffic]
phases = [
  { duration_s = 8.0, qps = 1300.0 },
  { duration_s = 6.0, qps = 1500.0 },
]

[model.online]
window_s = 2.0
spin_up_factor = 0.5
planning_queries = 1200

[[model]]
bounds = [4, 2, 4]

[model.workload]
model = "DIEN"
num_queries = 800

[model.traffic]
phases = [
  { duration_s = 14.0, qps = 1150.0 },
]

[model.online]
window_s = 2.0
spin_up_factor = 0.5
planning_queries = 1200

[[model]]
name = "dien-solo"
bounds = [4, 2, 4]
share_weight = 0.0

[model.workload]
model = "DIEN"
num_queries = 700

[model.traffic]
phases = [
  { duration_s = 14.0, qps = 1000.0 },
]

[model.online]
window_s = 2.0
spin_up_factor = 0.5
planning_queries = 1200
"#
}

fn serve_with_shards(shards: Option<usize>) -> FleetReport {
    let mut spec = FleetSpec::from_toml_str(multi_group_serve_toml()).unwrap();
    spec.shards = shards;
    let fleet = spec.compile().unwrap();
    RibbonFleetPlanner.serve(&fleet).expect("the fleet serves")
}

#[test]
fn multi_group_serve_is_identical_at_every_shard_count() {
    let reference = serve_with_shards(Some(1));
    // The zero-weight member is a singleton group: it must never touch the shared
    // slice, while the coupled pair contends for it.
    let solo = reference.models[2].serve.as_ref().expect("serve section");
    assert_eq!(
        solo.shared_queries, 0,
        "share_weight = 0 never routes shared"
    );
    assert!(reference.serve.as_ref().expect("totals").queries > 0);

    for shards in [2usize, 3, 8] {
        let sharded = serve_with_shards(Some(shards));
        assert_eq!(
            reference, sharded,
            "shards={shards} must reproduce the single-worker serve report exactly"
        );
        // `PartialEq` on f64 conflates -0.0 with 0.0; pin the money fields to the bit.
        let a = reference.serve.as_ref().unwrap();
        let b = sharded.serve.as_ref().unwrap();
        assert_eq!(a.total_cost_usd.to_bits(), b.total_cost_usd.to_bits());
        assert_eq!(a.final_hourly_cost.to_bits(), b.final_hourly_cost.to_bits());
        for (ma, mb) in reference.models.iter().zip(&sharded.models) {
            let (sa, sb) = (ma.serve.as_ref().unwrap(), mb.serve.as_ref().unwrap());
            for (wa, wb) in sa.window_stats.iter().zip(&sb.window_stats) {
                assert_eq!(wa.cost_so_far_usd.to_bits(), wb.cost_so_far_usd.to_bits());
                assert_eq!(wa.pool_hourly_cost.to_bits(), wb.pool_hourly_cost.to_bits());
            }
        }
    }

    // The default (no `shards` key) picks a thread cap from the stream size; whatever
    // it picks, the report is still the same one.
    let auto = serve_with_shards(None);
    assert_eq!(reference, auto);
}

#[test]
fn shards_key_round_trips_through_the_spec() {
    let mut spec = FleetSpec::from_toml_str(multi_group_serve_toml()).unwrap();
    assert_eq!(spec.shards, None, "unset by default");
    spec.shards = Some(3);
    let value = spec.to_value();
    let back = FleetSpec::from_value(&value).unwrap();
    assert_eq!(back.shards, Some(3));
}
