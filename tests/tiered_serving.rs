//! Integration suite of the differentiated QoS tiers:
//!
//! 1. **flash-crowd acceptance** — the bundled `mtwnd_tiered_flash.toml` scenario must
//!    shield the premium tier through the surge (zero admission drops, every window
//!    with premium evidence at or above the premium target) while the best-effort tier
//!    absorbs the overflow at admission (drops > 0);
//! 2. **single-tier identity** — a spec with one default-`standard` tier is the
//!    untiered semantics exactly: it compiles its tier set away, the streaming
//!    simulator reproduces the untiered run bit for bit, and a single-tier fleet
//!    member serves identically to its untiered twin at every shard count;
//! 3. **accounting invariants** — per-tier window counts partition the window's
//!    counts, per-tier totals partition the stream's (proptest), and tiers that see
//!    no query in a window report no evidence rather than zero satisfaction.

use std::path::PathBuf;

use proptest::prelude::*;
use ribbon::fleet::{FleetPlanner, FleetReport, FleetSpec, RibbonFleetPlanner};
use ribbon::online::serve_online_tiered;
use ribbon::scenario::{Scenario, TierSpecDef};
use ribbon_cloudsim::dist::{ArrivalProcess, BatchDistribution};
use ribbon_cloudsim::latency::FnLatencyModel;
use ribbon_cloudsim::{
    AdmissionClass, InstanceType, PoolSpec, Query, StreamConfig, StreamingSim, StreamingSimConfig,
    TierPush, TierSet, TierSpec, WindowConfig,
};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn load(rel: &str) -> Scenario {
    let path = repo_root().join(rel);
    Scenario::load(&path.to_string_lossy()).unwrap_or_else(|e| panic!("{rel}: {e}"))
}

// ---------------------------------------------------------------------------
// 1. Flash-crowd acceptance: premium shielded, best-effort sheds.
// ---------------------------------------------------------------------------

#[test]
fn tiered_flash_crowd_shields_premium_while_best_effort_sheds() {
    let scenario = load("scenarios/mtwnd_tiered_flash.toml");
    let set = scenario.tiers.clone().expect("the scenario is tiered");
    let traffic = scenario.traffic.as_ref().expect("serve mode has traffic");
    let outcome = serve_online_tiered(
        &scenario.workload,
        traffic,
        &scenario.online_settings,
        scenario.spec.seed,
        scenario.policy.clone(),
        Some(set.clone()),
    )
    .expect("bootstrap converges");

    assert_eq!(outcome.tier_totals.len(), set.len());
    let class_of = |i: usize| set.tiers()[i].class;

    // The paying tiers are never shed at admission; the best-effort tier absorbs the
    // surge there, which is the whole point of its admission cap.
    let mut best_effort_drops = 0;
    for (i, t) in outcome.tier_totals.iter().enumerate() {
        assert!(t.served > 0, "tier {i} served nothing");
        match class_of(i) {
            AdmissionClass::BestEffort => best_effort_drops += t.admission_drops,
            _ => assert_eq!(
                t.admission_drops, 0,
                "tier {i} gates QoS and must never be admission-dropped"
            ),
        }
    }
    assert!(
        best_effort_drops > 0,
        "the flash crowd must push the best-effort tier over its admission cap"
    );

    // Premium holds its target in every window where it has evidence — the surge is
    // absorbed by preempting queued best-effort work, not by degrading premium.
    let premium: Vec<usize> = (0..set.len())
        .filter(|&i| class_of(i) == AdmissionClass::Premium)
        .collect();
    assert!(!premium.is_empty());
    let mut premium_windows = 0;
    let mut preemptions = 0u64;
    for w in &outcome.windows {
        if w.is_empty() {
            continue;
        }
        assert_eq!(
            w.tiers.len(),
            set.len(),
            "window {} carries tier rows",
            w.index
        );
        for &t in &premium {
            let row = &w.tiers[t];
            preemptions += row.preemptions as u64;
            let Some(rate) = row.satisfaction_rate else {
                continue;
            };
            premium_windows += 1;
            let target = set.effective_rate(t, scenario.policy.threshold());
            assert!(
                rate >= target,
                "window {}: premium satisfaction {rate} below target {target}",
                w.index
            );
        }
    }
    assert!(premium_windows > 0, "the stream has premium evidence");
    assert!(
        preemptions > 0,
        "premium must have overtaken queued best-effort work during the surge"
    );

    // Per-tier totals partition the served stream.
    let served: u64 = outcome.tier_totals.iter().map(|t| t.served).sum();
    assert_eq!(served, outcome.stats.num_queries as u64);
}

// ---------------------------------------------------------------------------
// 2. Single-tier identity with untiered serving.
// ---------------------------------------------------------------------------

#[test]
fn a_single_default_standard_tier_compiles_to_untiered() {
    let mut spec = load("scenarios/mtwnd_flash_crowd.toml").spec;
    spec.qos_tiers = Some(vec![TierSpecDef {
        name: "all".to_string(),
        class: "standard".to_string(),
        weight: None,
        share: 1.0,
        target_rate: None,
        latency_ms: None,
        admission_cap_ms: None,
    }]);
    let compiled = spec
        .compile_with_base(Some(&repo_root().join("scenarios")))
        .unwrap();
    assert!(
        compiled.tiers.is_none(),
        "one default-standard tier is the untiered semantics and must compile away"
    );

    // Any override breaks the degeneracy and the set must survive compilation.
    spec.qos_tiers.as_mut().unwrap()[0].target_rate = Some(0.999);
    let tiered = spec
        .compile_with_base(Some(&repo_root().join("scenarios")))
        .unwrap();
    assert!(tiered.tiers.is_some(), "a rate override is a real tier set");
}

fn mixed_model() -> FnLatencyModel<impl Fn(InstanceType, u32) -> f64> {
    FnLatencyModel::new("mixed", |ty, b| {
        if ty == InstanceType::G4dn {
            0.004 + 4e-5 * b as f64
        } else {
            0.004 + 45e-5 * b as f64
        }
    })
}

fn stream(qps: f64, n: usize, seed: u64) -> Vec<Query> {
    StreamConfig {
        arrivals: ArrivalProcess::Poisson { qps },
        batches: BatchDistribution::default_heavy_tail(32.0, 256),
        num_queries: n,
        seed,
    }
    .generate()
}

#[test]
fn single_standard_tier_streaming_is_bit_identical_to_untiered() {
    let pool = PoolSpec::new(vec![InstanceType::G4dn, InstanceType::C5], vec![2, 3]);
    let m = mixed_model();
    let set = TierSet::try_new(vec![TierSpec::new(
        "all",
        AdmissionClass::Standard,
        1.0,
        1.0,
    )])
    .unwrap();
    let cfg = StreamingSimConfig::new(0.020, 99.0, WindowConfig::tumbling(1.0));

    for seed in [3u64, 19] {
        let queries = stream(700.0, 4000, seed);

        let mut plain = StreamingSim::new(&pool, &m, cfg);
        let mut plain_windows = Vec::new();
        for q in &queries {
            plain.push_into(q, &mut plain_windows);
        }
        plain_windows.extend(plain.finish_windows());

        let mut tiered = StreamingSim::new(&pool, &m, cfg);
        tiered.enable_tiers(set.clone());
        let mut assigner = set.assigner();
        let mut tiered_windows = Vec::new();
        for q in &queries {
            let outcome = tiered.push_tiered_into(q, assigner.next_tier(), &mut tiered_windows);
            assert_eq!(outcome, TierPush::Served { preempted: false });
        }
        tiered_windows.extend(tiered.finish_windows());

        // The standard class replicates the untiered FCFS float operations exactly.
        assert_eq!(plain.latencies(), tiered.latencies(), "seed {seed}");
        assert_eq!(plain.assigned_slots(), tiered.assigned_slots());
        assert_eq!(plain.makespan().to_bits(), tiered.makespan().to_bits());
        assert_eq!(plain.stats(), tiered.stats(), "seed {seed}");

        assert_eq!(plain_windows.len(), tiered_windows.len());
        for (a, b) in plain_windows.iter().zip(&tiered_windows) {
            assert_eq!(a.num_queries, b.num_queries);
            assert_eq!(a.satisfied, b.satisfied);
            assert_eq!(a.satisfaction_rate, b.satisfaction_rate);
            assert_eq!(a.cost_so_far_usd.to_bits(), b.cost_so_far_usd.to_bits());
            assert_eq!(a.pool_hourly_cost.to_bits(), b.pool_hourly_cost.to_bits());
        }

        // The whole stream lands in the one standard tier.
        let totals = tiered.tier_totals();
        assert_eq!(totals.len(), 1);
        assert_eq!(totals[0].served, queries.len() as u64);
        assert_eq!(totals[0].admission_drops, 0);
        assert_eq!(totals[0].preemptions, 0);
    }
}

/// Two coupled members so that the serve drive really routes through the shared
/// slice; traffic and budget trimmed for debug-mode test time.
fn small_fleet_toml() -> &'static str {
    r#"
[fleet]
name = "single-tier-identity"
mode = "serve"
seed = 7
budget = 10
baseline = false
shared_pool = ["g4dn", "r5n"]
shared_bounds = [6, 6]

[[model]]
bounds = [4, 2, 4]

[model.workload]
model = "MT-WND"
num_queries = 800

[model.traffic]
phases = [
  { duration_s = 6.0, qps = 1300.0 },
  { duration_s = 4.0, qps = 1500.0 },
]

[model.online]
window_s = 2.0
spin_up_factor = 0.5
planning_queries = 1000

[[model]]
bounds = [4, 2, 4]

[model.workload]
model = "DIEN"
num_queries = 700

[model.traffic]
phases = [
  { duration_s = 10.0, qps = 1150.0 },
]

[model.online]
window_s = 2.0
spin_up_factor = 0.5
planning_queries = 1000
"#
}

fn serve_small_fleet(single_tier: bool, shards: usize) -> FleetReport {
    let mut spec = FleetSpec::from_toml_str(small_fleet_toml()).unwrap();
    if single_tier {
        spec.models[0].qos_tiers = Some(vec![TierSpecDef {
            name: "all".to_string(),
            class: "standard".to_string(),
            weight: None,
            share: 1.0,
            target_rate: None,
            latency_ms: None,
            admission_cap_ms: None,
        }]);
    }
    spec.shards = Some(shards);
    let fleet = spec.compile().unwrap();
    RibbonFleetPlanner.serve(&fleet).expect("the fleet serves")
}

#[test]
fn single_tier_fleet_member_reproduces_the_untiered_serve_at_every_shard_count() {
    let reference = serve_small_fleet(false, 1);
    for shards in [1usize, 2, 4] {
        let tiered = serve_small_fleet(true, shards);
        assert_eq!(
            reference, tiered,
            "a single default-standard tier at shards={shards} must reproduce the \
             untiered serve report exactly"
        );
        let a = reference.serve.as_ref().unwrap();
        let b = tiered.serve.as_ref().unwrap();
        assert_eq!(a.total_cost_usd.to_bits(), b.total_cost_usd.to_bits());
        assert_eq!(a.final_hourly_cost.to_bits(), b.final_hourly_cost.to_bits());
    }
}

// ---------------------------------------------------------------------------
// 3. Accounting invariants.
// ---------------------------------------------------------------------------

fn three_tier_set(premium_share: f64, standard_share: f64) -> TierSet {
    let mut best_effort = TierSpec::new(
        "batch",
        AdmissionClass::BestEffort,
        0.0,
        1.0 - premium_share - standard_share,
    );
    best_effort.admission_cap_s = Some(0.010);
    TierSet::try_new(vec![
        TierSpec::new("premium", AdmissionClass::Premium, 3.0, premium_share),
        TierSpec::new("standard", AdmissionClass::Standard, 1.0, standard_share),
        best_effort,
    ])
    .unwrap()
}

proptest! {
    /// Random tier shares and stream shapes: in every window the per-tier rows
    /// partition the window's served counts, and over the stream the per-tier totals
    /// partition the per-model totals — served plus admission drops accounts for
    /// every pushed query.
    #[test]
    fn prop_tier_window_counts_partition_model_counts(
        premium_share in 0.10f64..0.45,
        standard_share in 0.10f64..0.45,
        qps in 300.0f64..900.0,
        n in 400usize..1200,
        seed in 0u64..1024,
    ) {
        let set = three_tier_set(premium_share, standard_share);
        let pool = PoolSpec::new(vec![InstanceType::G4dn, InstanceType::C5], vec![1, 2]);
        let m = mixed_model();
        let mut sim = StreamingSim::new(
            &pool,
            &m,
            StreamingSimConfig::new(0.020, 99.0, WindowConfig::tumbling(0.5)),
        );
        sim.enable_tiers(set.clone());
        let mut assigner = set.assigner();
        let queries = stream(qps, n, seed);
        let mut windows = Vec::new();
        let mut dropped = 0u64;
        for q in &queries {
            if sim.push_tiered_into(q, assigner.next_tier(), &mut windows) == TierPush::Dropped {
                dropped += 1;
            }
        }
        windows.extend(sim.finish_windows());

        for w in &windows {
            prop_assert_eq!(w.tiers.len(), set.len());
            let served: usize = w.tiers.iter().map(|t| t.num_queries).sum();
            prop_assert_eq!(served, w.num_queries, "window {} served", w.index);
            let satisfied: usize = w.tiers.iter().map(|t| t.satisfied).sum();
            prop_assert_eq!(satisfied, w.satisfied, "window {} satisfied", w.index);
        }

        let totals = sim.tier_totals();
        let stats = sim.stats();
        let served: u64 = totals.iter().map(|t| t.served).sum();
        let drops: u64 = totals.iter().map(|t| t.admission_drops).sum();
        prop_assert_eq!(served, stats.num_queries as u64);
        prop_assert_eq!(drops, dropped);
        prop_assert_eq!(served + drops, queries.len() as u64);
        let satisfied: u64 = totals.iter().map(|t| t.satisfied).sum();
        prop_assert_eq!(satisfied, stats.satisfied as u64);

        // Window rows recombine into the stream totals tier by tier.
        for (t, total) in totals.iter().enumerate() {
            let window_sum: u64 = windows.iter().map(|w| w.tiers[t].num_queries as u64).sum();
            prop_assert_eq!(window_sum, total.served);
            let drop_sum: u64 = windows.iter().map(|w| w.tiers[t].admission_drops as u64).sum();
            prop_assert_eq!(drop_sum, total.admission_drops);
        }
    }
}

#[test]
fn tiers_without_evidence_in_a_window_report_none() {
    let set = three_tier_set(0.3, 0.4);
    let pool = PoolSpec::homogeneous(InstanceType::G4dn, 1);
    let m = mixed_model();
    let mut sim = StreamingSim::new(
        &pool,
        &m,
        StreamingSimConfig::new(0.020, 99.0, WindowConfig::tumbling(1.0)),
    );
    sim.enable_tiers(set.clone());

    // Only premium (tier 0) queries, at t = 0.5 and t = 5.5: windows 1..=4 are wholly
    // empty, and even window 0 has no standard or best-effort evidence.
    let mut closed = Vec::new();
    for (id, arrival) in [(0u64, 0.5f64), (1, 5.5)] {
        let q = Query {
            id,
            arrival,
            batch_size: 8,
        };
        assert_eq!(
            sim.push_tiered_into(&q, 0, &mut closed),
            TierPush::Served { preempted: false }
        );
    }
    assert_eq!(closed.len(), 5, "windows [0,1) .. [4,5) close at t=5.5");

    let first = &closed[0];
    assert_eq!(first.tiers[0].num_queries, 1);
    assert_eq!(first.tiers[0].satisfaction_rate, Some(1.0));
    for t in 1..set.len() {
        assert_eq!(first.tiers[t].num_queries, 0);
        assert_eq!(
            first.tiers[t].satisfaction_rate, None,
            "a tier that served nothing has no evidence, not a zero rate"
        );
        assert_eq!(first.tiers[t].mean_latency_s, None);
        assert_eq!(first.tiers[t].tail_latency_s, None);
    }
    for w in &closed[1..] {
        assert!(w.is_empty());
        for row in &w.tiers {
            assert_eq!(row.num_queries, 0);
            assert_eq!(row.satisfaction_rate, None);
        }
    }

    // Whole-stream totals: silence is no evidence there either.
    let totals = sim.tier_totals();
    assert_eq!(totals[0].satisfaction_rate(), Some(1.0));
    assert_eq!(totals[1].satisfaction_rate(), None);
    assert_eq!(totals[2].satisfaction_rate(), None);
}
