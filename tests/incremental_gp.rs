//! Differential suite for the incremental GP/BO hot path: the reused, rank-1-extended
//! surrogate ([`ribbon_gp::IncrementalGridGp`], driven by `reuse_surrogate = true`) must
//! reproduce the from-scratch grid refit exactly — identical hyperparameter winners,
//! posteriors within 1e-9 (they are in fact bit-identical), and identical end-to-end
//! search traces on the real evaluator.

use proptest::prelude::*;
use ribbon::evaluator::{ConfigEvaluator, EvaluatorSettings};
use ribbon::{RibbonSearch, RibbonSettings};
use ribbon_gp::{fit_gp, FitConfig, IncrementalGridGp};
use ribbon_models::{ModelKind, Workload};

fn small_evaluator() -> ConfigEvaluator {
    let mut w = Workload::standard(ModelKind::MtWnd);
    w.num_queries = 800;
    ConfigEvaluator::new(
        &w,
        EvaluatorSettings {
            explicit_bounds: Some(vec![6, 4, 6]),
            ..Default::default()
        },
    )
}

fn settings(reuse: bool, budget: usize) -> RibbonSettings {
    RibbonSettings {
        max_evaluations: budget,
        fit: FitConfig::coarse(),
        reuse_surrogate: reuse,
        ..RibbonSettings::fast()
    }
}

#[test]
fn incremental_and_full_refit_searches_produce_identical_traces() {
    for seed in [1u64, 9, 23] {
        let incremental = RibbonSearch::new(settings(true, 15)).run(&small_evaluator(), seed);
        let from_scratch = RibbonSearch::new(settings(false, 15)).run(&small_evaluator(), seed);
        let inc: Vec<_> = incremental
            .evaluations()
            .iter()
            .map(|e| (e.config.clone(), e.objective.to_bits()))
            .collect();
        let full: Vec<_> = from_scratch
            .evaluations()
            .iter()
            .map(|e| (e.config.clone(), e.objective.to_bits()))
            .collect();
        assert_eq!(inc, full, "seed {seed}: traces must be bit-identical");
    }
}

#[test]
fn incremental_search_with_default_grid_matches_full_refit() {
    // The default (non-coarse) hyperparameter grid exercises many more cells, including
    // ones that fail to factorize at small n.
    let s = |reuse| RibbonSettings {
        max_evaluations: 10,
        fit: FitConfig::default(),
        reuse_surrogate: reuse,
        ..RibbonSettings::default()
    };
    let a = RibbonSearch::new(s(true)).run(&small_evaluator(), 4);
    let b = RibbonSearch::new(s(false)).run(&small_evaluator(), 4);
    let ca: Vec<_> = a.evaluations().iter().map(|e| e.config.clone()).collect();
    let cb: Vec<_> = b.evaluations().iter().map(|e| e.config.clone()).collect();
    assert_eq!(ca, cb);
}

proptest! {

    /// Random observation histories: after every append, the incremental grid designates
    /// the same winner as a fresh `fit_gp` and its posterior agrees within 1e-9 (the
    /// implementation actually guarantees bit-identity; the tolerance is the spec floor).
    #[test]
    fn prop_incremental_grid_tracks_fit_gp(seed in 0u64..400, n in 3usize..14) {
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let x: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..3).map(|_| (next() * 6.0).round()).collect())
            .collect();
        let y: Vec<f64> = (0..n).map(|_| next()).collect();
        let cfg = FitConfig::coarse();

        let mut grid = IncrementalGridGp::fit(&x[..2], &y[..2], &cfg).unwrap();
        for i in 2..n {
            grid.append(x[i].clone(), y[i]).unwrap();
            let oracle = fit_gp(&x[..=i], &y[..=i], &cfg).unwrap();
            let best = grid.best().expect("winner");
            prop_assert_eq!(best.length_scale, oracle.length_scale);
            prop_assert_eq!(best.noise_variance, oracle.noise_variance);
            prop_assert_eq!(best.signal_variance, oracle.signal_variance);
            for q in [[0.0, 1.0, 2.0], [3.0, 3.0, 3.0], [6.0, 0.0, 5.0]] {
                let pi = best.gp.predict(&q).unwrap();
                let pf = oracle.gp.predict(&q).unwrap();
                prop_assert!((pi.mean - pf.mean).abs() <= 1e-9, "mean {} vs {}", pi.mean, pf.mean);
                prop_assert!(
                    (pi.variance - pf.variance).abs() <= 1e-9,
                    "variance {} vs {}", pi.variance, pf.variance
                );
            }
        }
    }
}
