//! Integration suite of the online serving runtime:
//!
//! 1. **streaming vs batch bit-identity** — pushing a stream through `StreamingSim` with
//!    zero reconfigurations must reproduce `simulate` / `simulate_stats` bit for bit;
//! 2. **windowed vs whole-stream stats** — on a constant-rate trace, tumbling windows must
//!    partition the stream and their aggregates must recombine into the stream totals;
//! 3. **flash-crowd adaptation** — on the spike trace the controller must detect the
//!    violation, reconfigure mid-stream, restore QoS within a bounded number of windows,
//!    and end up cheaper than the naive always-max-pool deployment.

use ribbon::accounting::{max_pool_hourly_cost, OnlineCostReport};
use ribbon::evaluator::EvaluatorSettings;
use ribbon::online::{serve_online, OnlineControllerSettings, OnlineRunSettings, ReconfigTrigger};
use ribbon::search::RibbonSettings;
use ribbon_cloudsim::{
    simulate, simulate_stats, PhasedArrivalProcess, PhasedStreamConfig, StreamingSim,
    StreamingSimConfig, WindowConfig,
};
use ribbon_models::{ModelKind, TrafficScenario, Workload};

fn run_settings() -> OnlineRunSettings {
    OnlineRunSettings {
        initial_search: RibbonSettings {
            max_evaluations: 30,
            ..RibbonSettings::fast()
        },
        controller: OnlineControllerSettings {
            evaluator: EvaluatorSettings {
                explicit_bounds: Some(vec![7, 4, 7]),
                ..Default::default()
            },
            planning_queries: 2500,
            ..Default::default()
        },
        window: WindowConfig::tumbling(2.0),
        spin_up_factor: 0.5,
    }
}

#[test]
fn streaming_with_zero_reconfigurations_is_bit_identical_to_batch() {
    let workload = Workload::standard(ModelKind::MtWnd);
    let profile = workload.profile();
    let queries = workload.stream_config().generate();
    let pool = workload.diverse_pool_spec(&[3, 1, 2]);
    let target = workload.qos.latency_target_s;

    let mut sim = StreamingSim::new(
        &pool,
        &profile,
        StreamingSimConfig::new(target, 99.0, WindowConfig::tumbling(0.5)),
    );
    for q in &queries {
        sim.push(q);
    }

    let full = simulate(&pool, &queries, &profile);
    assert_eq!(sim.latencies(), full.latencies.as_slice());
    assert_eq!(sim.assigned_slots(), full.assigned_instance.as_slice());
    assert_eq!(sim.per_slot_load(), full.per_instance_load);
    assert_eq!(sim.makespan(), full.makespan);

    let stats = sim.stats();
    let batch = simulate_stats(&pool, &queries, &profile, target, 99.0);
    assert_eq!(
        stats, batch,
        "streaming stats must equal the lean batch path"
    );
    assert_eq!(stats.satisfaction_rate(), full.satisfaction_rate(target));
    assert_eq!(stats.mean_latency_s, full.mean_latency());
    assert_eq!(stats.tail_latency_s, full.tail_latency(99.0));
}

#[test]
fn windowed_stats_recombine_into_whole_stream_stats_on_a_constant_trace() {
    let workload = Workload::standard(ModelKind::MtWnd);
    let profile = workload.profile();
    let traffic = PhasedStreamConfig {
        arrivals: PhasedArrivalProcess::constant(workload.qps, 10.0),
        batches: workload.batch_distribution(),
        duration_s: 10.0,
        seed: 31,
    };
    let queries = traffic.generate();
    let pool = workload.diverse_pool_spec(&[5, 0, 2]);
    let mut sim = StreamingSim::new(
        &pool,
        &profile,
        StreamingSimConfig::new(
            workload.qos.latency_target_s,
            99.0,
            WindowConfig::tumbling(1.0),
        ),
    );
    let mut windows = Vec::new();
    for q in &queries {
        windows.extend(sim.push(q));
    }
    windows.extend(sim.finish_windows());
    let stats = sim.stats();

    // Tumbling windows partition the stream: counts and satisfied totals recombine.
    assert_eq!(
        windows.iter().map(|w| w.num_queries).sum::<usize>(),
        stats.num_queries
    );
    assert_eq!(
        windows.iter().map(|w| w.satisfied).sum::<usize>(),
        stats.satisfied
    );
    // The query-weighted mean of window means is the stream mean.
    let weighted: f64 = windows
        .iter()
        .filter_map(|w| w.mean_latency_s.map(|m| m * w.num_queries as f64))
        .sum();
    assert!((weighted / stats.num_queries as f64 - stats.mean_latency_s).abs() < 1e-9);
    // On a constant-rate healthy trace, every window sees traffic and satisfaction close
    // to the whole-stream rate.
    let whole = stats.satisfaction_rate().unwrap();
    for w in &windows {
        assert!(!w.is_empty(), "constant trace leaves no window empty");
        let rate = w.satisfaction_rate.unwrap();
        assert!(
            (rate - whole).abs() < 0.05,
            "window {} rate {rate} vs whole-stream {whole}",
            w.index
        );
        // Each window's tail is bounded by its own max, and cost accrues monotonically.
        assert!(w.tail_latency_s.unwrap() >= w.mean_latency_s.unwrap());
    }
    for pair in windows.windows(2) {
        assert!(pair[1].cost_so_far_usd > pair[0].cost_so_far_usd);
    }
}

#[test]
fn flash_crowd_forces_a_reconfiguration_that_restores_qos_below_the_max_pool_cost() {
    let workload = Workload::standard(ModelKind::MtWnd);
    let settings = run_settings();
    let traffic = TrafficScenario::FlashCrowd.stream(&workload, 60.0);
    let outcome = serve_online(&workload, &traffic, &settings, 7).expect("bootstrap converges");

    // The spike must have tripped at least one scale-up.
    let up = outcome
        .events
        .iter()
        .find(|e| e.trigger == ReconfigTrigger::QosViolation)
        .expect("the 1.5x flash crowd must force a scale-up");
    assert!(
        up.applied.launched > 0,
        "a scale-up launches instances: {up:?}"
    );
    assert!(
        up.applied.ready_at_s > up.applied.at_s,
        "spin-up delay applies"
    );
    assert!(up.transition_cost_usd > 0.0);

    // QoS is restored within a bounded number of windows after the reconfiguration.
    let healthy = outcome
        .first_healthy_window_after(up.window_index + 1, workload.qos.target_rate)
        .expect("QoS recovers after the scale-up");
    assert!(
        healthy <= up.window_index + 6,
        "recovery took too long: window {healthy} after reconfig at {}",
        up.window_index
    );

    // Post-adaptation pool costs less per hour than the naive always-max deployment.
    let bounds = settings
        .controller
        .evaluator
        .explicit_bounds
        .clone()
        .unwrap();
    let max_cost = max_pool_hourly_cost(&workload.diverse_pool, &bounds);
    let adapted_cost = workload.diverse_pool_spec(&up.config).hourly_cost();
    assert!(
        adapted_cost < max_cost,
        "adapted pool ${adapted_cost} must beat always-max ${max_cost}"
    );
    // And the whole run's time-averaged cost beats always-max too.
    let report = OnlineCostReport::new(outcome.total_cost_usd, outcome.duration_s, max_cost);
    assert!(
        report.saving_percent > 0.0,
        "online serving must be cheaper than static peak provisioning: {report:?}"
    );

    // The stream as a whole stayed mostly healthy (the spike is a bounded excursion).
    assert!(outcome.stats.satisfaction_rate().unwrap() > 0.9);
}

#[test]
fn load_drop_scales_the_pool_down() {
    let workload = Workload::standard(ModelKind::MtWnd);
    let settings = run_settings();
    let traffic = TrafficScenario::LoadDrop.stream(&workload, 60.0);
    let outcome = serve_online(&workload, &traffic, &settings, 7).expect("bootstrap converges");

    let down = outcome
        .events
        .iter()
        .find(|e| e.trigger == ReconfigTrigger::OverProvisioning)
        .expect("a 0.6x load drop must trip the over-provisioning hysteresis");
    // Make-before-break: the retire phase may be deferred to `completed`.
    let retired = down.applied.retired + down.completed.as_ref().map_or(0, |c| c.retired);
    assert!(retired > 0, "scale-down retires instances: {down:?}");
    assert!(
        workload.diverse_pool_spec(&down.config).hourly_cost()
            < down.applied.old_pool.hourly_cost(),
        "scale-down must reduce the hourly cost"
    );
    // Service stays healthy after the scale-down. A cost-optimal pool runs *at* the p99
    // edge, so individual ~1700-query windows fluctuate a few per-mille around the
    // target; the honest property is that the aggregate stays at the target and no
    // window degrades materially.
    let after: Vec<_> = outcome
        .windows
        .iter()
        .filter(|w| w.index > down.window_index + 2 && !w.is_empty())
        .collect();
    assert!(!after.is_empty());
    let served: usize = after.iter().map(|w| w.num_queries).sum();
    let satisfied: usize = after.iter().map(|w| w.satisfied).sum();
    let aggregate = satisfied as f64 / served as f64;
    assert!(
        aggregate >= workload.qos.target_rate - 0.005,
        "post-scale-down aggregate satisfaction {aggregate} fell away from the target"
    );
    for w in &after {
        assert!(
            w.satisfaction_rate.unwrap() >= 0.98,
            "window {} degraded materially: {:?}",
            w.index,
            w.satisfaction_rate
        );
    }
}

#[test]
fn online_outcome_is_deterministic() {
    let workload = Workload::standard(ModelKind::MtWnd);
    let settings = run_settings();
    let traffic = TrafficScenario::FlashCrowd.stream(&workload, 40.0);
    let a = serve_online(&workload, &traffic, &settings, 11).expect("run a");
    let b = serve_online(&workload, &traffic, &settings, 11).expect("run b");
    assert_eq!(a.initial_config, b.initial_config);
    assert_eq!(a.events.len(), b.events.len());
    for (ea, eb) in a.events.iter().zip(&b.events) {
        assert_eq!(ea, eb);
    }
    assert_eq!(a.windows, b.windows);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.total_cost_usd, b.total_cost_usd);
}
