//! Integration suite of the online serving runtime:
//!
//! 1. **streaming vs batch bit-identity** — pushing a stream through `StreamingSim` with
//!    zero reconfigurations must reproduce `simulate` / `simulate_stats` bit for bit;
//! 2. **windowed vs whole-stream stats** — on a constant-rate trace, tumbling windows must
//!    partition the stream and their aggregates must recombine into the stream totals;
//! 3. **flash-crowd adaptation** — on the spike trace the controller must detect the
//!    violation, reconfigure mid-stream, restore QoS within a bounded number of windows,
//!    and end up cheaper than the naive always-max-pool deployment.

use ribbon::accounting::{max_pool_hourly_cost, OnlineCostReport};
use ribbon::evaluator::EvaluatorSettings;
use ribbon::online::{serve_online, OnlineControllerSettings, OnlineRunSettings, ReconfigTrigger};
use ribbon::search::RibbonSettings;
use ribbon_cloudsim::{
    simulate, simulate_stats, PhasedArrivalProcess, PhasedStreamConfig, StreamingSim,
    StreamingSimConfig, WindowConfig,
};
use ribbon_models::{ModelKind, TrafficScenario, Workload};

fn run_settings() -> OnlineRunSettings {
    OnlineRunSettings {
        initial_search: RibbonSettings {
            max_evaluations: 30,
            ..RibbonSettings::fast()
        },
        controller: OnlineControllerSettings {
            evaluator: EvaluatorSettings {
                explicit_bounds: Some(vec![7, 4, 7]),
                ..Default::default()
            },
            planning_queries: 2500,
            ..Default::default()
        },
        window: WindowConfig::tumbling(2.0),
        spin_up_factor: 0.5,
    }
}

#[test]
fn streaming_with_zero_reconfigurations_is_bit_identical_to_batch() {
    let workload = Workload::standard(ModelKind::MtWnd);
    let profile = workload.profile();
    let queries = workload.stream_config().generate();
    let pool = workload.diverse_pool_spec(&[3, 1, 2]);
    let target = workload.qos.latency_target_s;

    let mut sim = StreamingSim::new(
        &pool,
        &profile,
        StreamingSimConfig::new(target, 99.0, WindowConfig::tumbling(0.5)),
    );
    for q in &queries {
        sim.push(q);
    }

    let full = simulate(&pool, &queries, &profile);
    assert_eq!(sim.latencies(), full.latencies.as_slice());
    assert_eq!(sim.assigned_slots(), full.assigned_instance.as_slice());
    assert_eq!(sim.per_slot_load(), full.per_instance_load);
    assert_eq!(sim.makespan(), full.makespan);

    let stats = sim.stats();
    let batch = simulate_stats(&pool, &queries, &profile, target, 99.0);
    assert_eq!(
        stats, batch,
        "streaming stats must equal the lean batch path"
    );
    assert_eq!(stats.satisfaction_rate(), full.satisfaction_rate(target));
    assert_eq!(stats.mean_latency_s, full.mean_latency());
    assert_eq!(stats.tail_latency_s, full.tail_latency(99.0));
}

#[test]
fn windowed_stats_recombine_into_whole_stream_stats_on_a_constant_trace() {
    let workload = Workload::standard(ModelKind::MtWnd);
    let profile = workload.profile();
    let traffic = PhasedStreamConfig {
        arrivals: PhasedArrivalProcess::constant(workload.qps, 10.0),
        batches: workload.batch_distribution(),
        duration_s: 10.0,
        seed: 31,
    };
    let queries = traffic.generate();
    let pool = workload.diverse_pool_spec(&[5, 0, 2]);
    let mut sim = StreamingSim::new(
        &pool,
        &profile,
        StreamingSimConfig::new(
            workload.qos.latency_target_s,
            99.0,
            WindowConfig::tumbling(1.0),
        ),
    );
    let mut windows = Vec::new();
    for q in &queries {
        windows.extend(sim.push(q));
    }
    windows.extend(sim.finish_windows());
    let stats = sim.stats();

    // Tumbling windows partition the stream: counts and satisfied totals recombine.
    assert_eq!(
        windows.iter().map(|w| w.num_queries).sum::<usize>(),
        stats.num_queries
    );
    assert_eq!(
        windows.iter().map(|w| w.satisfied).sum::<usize>(),
        stats.satisfied
    );
    // The query-weighted mean of window means is the stream mean.
    let weighted: f64 = windows
        .iter()
        .filter_map(|w| w.mean_latency_s.map(|m| m * w.num_queries as f64))
        .sum();
    assert!((weighted / stats.num_queries as f64 - stats.mean_latency_s).abs() < 1e-9);
    // On a constant-rate healthy trace, every window sees traffic and satisfaction close
    // to the whole-stream rate.
    let whole = stats.satisfaction_rate().unwrap();
    for w in &windows {
        assert!(!w.is_empty(), "constant trace leaves no window empty");
        let rate = w.satisfaction_rate.unwrap();
        assert!(
            (rate - whole).abs() < 0.05,
            "window {} rate {rate} vs whole-stream {whole}",
            w.index
        );
        // Each window's tail is bounded by its own max, and cost accrues monotonically.
        assert!(w.tail_latency_s.unwrap() >= w.mean_latency_s.unwrap());
    }
    for pair in windows.windows(2) {
        assert!(pair[1].cost_so_far_usd > pair[0].cost_so_far_usd);
    }
}

#[test]
fn flash_crowd_forces_a_reconfiguration_that_restores_qos_below_the_max_pool_cost() {
    let workload = Workload::standard(ModelKind::MtWnd);
    let settings = run_settings();
    let traffic = TrafficScenario::FlashCrowd.stream(&workload, 60.0);
    let outcome = serve_online(&workload, &traffic, &settings, 7).expect("bootstrap converges");

    // The spike must have tripped at least one scale-up.
    let up = outcome
        .events
        .iter()
        .find(|e| e.trigger == ReconfigTrigger::QosViolation)
        .expect("the 1.5x flash crowd must force a scale-up");
    assert!(
        up.applied.launched > 0,
        "a scale-up launches instances: {up:?}"
    );
    assert!(
        up.applied.ready_at_s > up.applied.at_s,
        "spin-up delay applies"
    );
    assert!(up.transition_cost_usd > 0.0);

    // QoS is restored within a bounded number of windows after the reconfiguration.
    let healthy = outcome
        .first_healthy_window_after(up.window_index + 1, workload.qos.target_rate)
        .expect("QoS recovers after the scale-up");
    assert!(
        healthy <= up.window_index + 6,
        "recovery took too long: window {healthy} after reconfig at {}",
        up.window_index
    );

    // Post-adaptation pool costs less per hour than the naive always-max deployment.
    let bounds = settings
        .controller
        .evaluator
        .explicit_bounds
        .clone()
        .unwrap();
    let max_cost = max_pool_hourly_cost(&workload.diverse_pool, &bounds);
    let adapted_cost = workload.diverse_pool_spec(&up.config).hourly_cost();
    assert!(
        adapted_cost < max_cost,
        "adapted pool ${adapted_cost} must beat always-max ${max_cost}"
    );
    // And the whole run's time-averaged cost beats always-max too.
    let report = OnlineCostReport::new(outcome.total_cost_usd, outcome.duration_s, max_cost);
    assert!(
        report.saving_percent > 0.0,
        "online serving must be cheaper than static peak provisioning: {report:?}"
    );

    // The stream as a whole stayed mostly healthy (the spike is a bounded excursion).
    assert!(outcome.stats.satisfaction_rate().unwrap() > 0.9);
}

#[test]
fn load_drop_scales_the_pool_down() {
    let workload = Workload::standard(ModelKind::MtWnd);
    let settings = run_settings();
    let traffic = TrafficScenario::LoadDrop.stream(&workload, 60.0);
    let outcome = serve_online(&workload, &traffic, &settings, 7).expect("bootstrap converges");

    let down = outcome
        .events
        .iter()
        .find(|e| e.trigger == ReconfigTrigger::OverProvisioning)
        .expect("a 0.6x load drop must trip the over-provisioning hysteresis");
    // Make-before-break: the retire phase may be deferred to `completed`.
    let retired = down.applied.retired + down.completed.as_ref().map_or(0, |c| c.retired);
    assert!(retired > 0, "scale-down retires instances: {down:?}");
    assert!(
        workload.diverse_pool_spec(&down.config).hourly_cost()
            < down.applied.old_pool.hourly_cost(),
        "scale-down must reduce the hourly cost"
    );
    // Service stays healthy after the scale-down. A cost-optimal pool runs *at* the p99
    // edge, so individual ~1700-query windows fluctuate a few per-mille around the
    // target; the honest property is that the aggregate stays at the target and no
    // window degrades materially.
    let after: Vec<_> = outcome
        .windows
        .iter()
        .filter(|w| w.index > down.window_index + 2 && !w.is_empty())
        .collect();
    assert!(!after.is_empty());
    let served: usize = after.iter().map(|w| w.num_queries).sum();
    let satisfied: usize = after.iter().map(|w| w.satisfied).sum();
    let aggregate = satisfied as f64 / served as f64;
    assert!(
        aggregate >= workload.qos.target_rate - 0.005,
        "post-scale-down aggregate satisfaction {aggregate} fell away from the target"
    );
    for w in &after {
        assert!(
            w.satisfaction_rate.unwrap() >= 0.98,
            "window {} degraded materially: {:?}",
            w.index,
            w.satisfaction_rate
        );
    }
}

/// A synthetic monitoring window for direct controller-edge tests.
fn synthetic_window(index: u64, rate: Option<f64>, qps: f64) -> ribbon_cloudsim::WindowStats {
    ribbon_cloudsim::WindowStats {
        index,
        start_s: index as f64,
        end_s: index as f64 + 1.0,
        num_queries: if rate.is_some() { 100 } else { 0 },
        satisfied: rate.map_or(0, |r| (r * 100.0) as usize),
        satisfaction_rate: rate,
        mean_latency_s: rate.map(|_| 0.01),
        tail_latency_s: rate.map(|_| 0.02),
        arrival_qps: qps,
        throughput_qps: qps,
        pool_hourly_cost: 2.0,
        cost_so_far_usd: 0.1,
        tiers: Vec::new(),
    }
}

fn edge_controller() -> ribbon::online::OnlineController {
    let settings = OnlineControllerSettings {
        evaluator: EvaluatorSettings {
            explicit_bounds: Some(vec![7, 4, 7]),
            ..Default::default()
        },
        planning_queries: 800,
        ..Default::default()
    };
    let initial = RibbonSettings {
        max_evaluations: 20,
        ..RibbonSettings::fast()
    };
    ribbon::online::OnlineController::bootstrap(
        &Workload::standard(ModelKind::MtWnd),
        &initial,
        settings,
        3,
    )
    .expect("bootstrap converges")
}

#[test]
fn cooldown_expires_exactly_on_the_window_boundary() {
    // Default hysteresis: violation_windows = 2, cooldown_windows = 3. After a replan,
    // exactly `cooldown` windows are ignored — the very next window counts again, so
    // a persistent violation re-trips after cooldown + violation_windows windows, not
    // one window later.
    let mut c = edge_controller();
    let cooldown = 3u64;
    let violation_windows = 2u64;
    assert!(c
        .observe(&synthetic_window(0, Some(0.90), 2100.0))
        .is_none());
    assert!(
        c.observe(&synthetic_window(1, Some(0.90), 2100.0))
            .is_some(),
        "second violating window trips the first replan"
    );
    let mut idx = 2u64;
    // The cooldown swallows exactly `cooldown` windows — violating ones included.
    for _ in 0..cooldown {
        assert!(
            c.observe(&synthetic_window(idx, Some(0.60), 2600.0))
                .is_none(),
            "window {idx} falls inside the cooldown"
        );
        idx += 1;
    }
    // The first post-cooldown window counts: a fresh violation streak needs exactly
    // `violation_windows` windows, no more and no fewer.
    for k in 0..violation_windows {
        let decision = c.observe(&synthetic_window(idx, Some(0.60), 2600.0));
        if k + 1 < violation_windows {
            assert!(
                decision.is_none(),
                "window {idx} is only violation {} of the fresh streak",
                k + 1
            );
        } else {
            let plan = decision.expect("streak completes exactly at the boundary");
            assert_eq!(plan.trigger, ReconfigTrigger::QosViolation);
            assert_eq!(plan.window_index, idx);
        }
        idx += 1;
    }
    assert_eq!(c.replans(), 2);
}

#[test]
fn simultaneous_violation_and_underload_counts_as_violation_only() {
    // A window can be BOTH violating and under the over-provisioning headroom (QoS
    // missed at low load — e.g. a latency regression, not a capacity shortfall). It
    // must advance the violation streak and reset the over-provisioning streak, never
    // both.
    let mut c = edge_controller();
    let planned = c.planned_qps();
    let under = 0.5 * planned; // far below the 0.8 headroom
                               // Three healthy-but-underloaded windows: one short of the scale-down threshold (4).
    for idx in 0..3u64 {
        assert!(c
            .observe(&synthetic_window(idx, Some(0.999), under))
            .is_none());
    }
    // The conflicted window: violating AND underloaded. If it (wrongly) advanced the
    // over-provisioning streak, a scale-down would fire here.
    assert!(
        c.observe(&synthetic_window(3, Some(0.90), under)).is_none(),
        "a violating window must not complete an over-provisioning streak"
    );
    // It counted as a violation: one more violating window completes that streak.
    let plan = c
        .observe(&synthetic_window(4, Some(0.90), under))
        .expect("the conflicted window started the violation streak");
    assert_eq!(plan.trigger, ReconfigTrigger::QosViolation);
    assert_eq!(c.replans(), 1);
}

#[test]
fn pending_retire_phase_is_applied_at_stream_end() {
    // A make-before-break scale-down whose retire phase lands after the last arrival:
    // serve_online must still complete it so the final pool matches the controller's
    // deployment — instead of leaving the union pool running (and billed) forever.
    let workload = Workload::standard(ModelKind::MtWnd);
    let settings = run_settings();
    let traffic_to = |duration_s: f64| PhasedStreamConfig {
        arrivals: PhasedArrivalProcess::step_change(workload.qps, 0.6 * workload.qps, 12.0),
        batches: workload.batch_distribution(),
        duration_s,
        seed: 23,
    };

    // Probe run: find the scale-down decision and its two-phase application window.
    let probe = serve_online(&workload, &traffic_to(40.0), &settings, 5).expect("probe serves");
    let down = probe
        .events
        .iter()
        .find(|e| e.trigger == ReconfigTrigger::OverProvisioning)
        .expect("the load drop trips a scale-down");
    assert!(
        down.completed.is_some(),
        "this scenario's scale-down must be make-before-break (launch + retire): {down:?}"
    );
    let ready = down.applied.ready_at_s;
    assert!(ready > down.applied.at_s, "launched instances spin up");

    // Truncated run: the stream ends between the decision and the retire point, so no
    // arrival can trigger the deferred phase. The arrivals up to the cut are identical
    // (same seed, absolute phase boundaries), so the decision replays identically.
    let cut = down.applied.at_s + 0.5 * (ready - down.applied.at_s);
    let outcome = serve_online(&workload, &traffic_to(cut), &settings, 5).expect("truncated run");
    let last = outcome
        .events
        .iter()
        .find(|e| e.trigger == ReconfigTrigger::OverProvisioning)
        .expect("the same scale-down replays in the truncated run");
    assert_eq!(last.config, down.config, "identical decision up to the cut");
    let completed = last
        .completed
        .as_ref()
        .expect("the pending retire phase must be applied at stream end");
    assert!(completed.retired > 0, "the retire phase actually retires");
    assert_eq!(
        outcome.final_config, last.config,
        "final deployment matches the controller's decision"
    );
    let expected_hourly = workload.diverse_pool_spec(&last.config).hourly_cost();
    assert!(
        (outcome.final_hourly_cost - expected_hourly).abs() < 1e-9,
        "the union pool must not be left running: {} vs {expected_hourly}",
        outcome.final_hourly_cost
    );
}

#[test]
fn online_outcome_is_deterministic() {
    let workload = Workload::standard(ModelKind::MtWnd);
    let settings = run_settings();
    let traffic = TrafficScenario::FlashCrowd.stream(&workload, 40.0);
    let a = serve_online(&workload, &traffic, &settings, 11).expect("run a");
    let b = serve_online(&workload, &traffic, &settings, 11).expect("run b");
    assert_eq!(a.initial_config, b.initial_config);
    assert_eq!(a.events.len(), b.events.len());
    for (ea, eb) in a.events.iter().zip(&b.events) {
        assert_eq!(ea, eb);
    }
    assert_eq!(a.windows, b.windows);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.total_cost_usd, b.total_cost_usd);
}
