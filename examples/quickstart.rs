//! Quickstart: find a cost-optimal heterogeneous pool for the MT-WND recommendation workload.
//!
//! This is the smallest end-to-end use of the public API:
//!   1. pick a workload (model, QoS target, query stream, candidate instance types),
//!   2. build a `ConfigEvaluator` (it probes the per-type search bounds m_i),
//!   3. find the homogeneous baseline,
//!   4. run Ribbon's BO search and compare.
//!
//! Run: `cargo run --release -p ribbon --example quickstart`

use ribbon::evaluator::EvaluatorSettings;
use ribbon::prelude::*;
use ribbon::search::RibbonSettings;

fn main() {
    // The paper's MT-WND workload: 20 ms p99 target, Poisson arrivals, heavy-tail batches,
    // diverse pool {g4dn, c5, r5n}. A shorter stream keeps the example fast.
    let mut workload = Workload::standard(ModelKind::MtWnd);
    workload.num_queries = 2000;

    println!(
        "Workload: {} | QoS {:.0} ms p{:.0} | {:.0} queries/s | pool {:?}",
        workload.model,
        workload.qos.latency_target_s * 1000.0,
        workload.qos.target_rate * 100.0,
        workload.qps,
        workload
            .diverse_pool
            .iter()
            .map(|t| t.family())
            .collect::<Vec<_>>()
    );

    // Build the evaluator (this probes the search bounds m_i by simulation).
    let evaluator = ConfigEvaluator::new(
        &workload,
        EvaluatorSettings {
            max_per_type: 10,
            ..Default::default()
        },
    );
    println!("Search bounds m_i: {:?}", evaluator.bounds());

    // The traditional answer: the cheapest homogeneous pool of the base type that meets QoS.
    let homogeneous = homogeneous_optimum(&evaluator, 12).expect("homogeneous pool exists");
    println!(
        "Homogeneous optimum: {} at ${:.2}/hr",
        homogeneous.evaluation.pool.describe(),
        homogeneous.hourly_cost
    );

    // Ribbon: Bayesian Optimization over the diverse pool.
    let ribbon = RibbonSearch::new(RibbonSettings {
        max_evaluations: 30,
        ..RibbonSettings::fast()
    });
    let trace = ribbon.run(&evaluator, 42);
    let best = trace
        .best_satisfying()
        .expect("a QoS-satisfying diverse pool exists");

    let saving = (homogeneous.hourly_cost - best.hourly_cost) / homogeneous.hourly_cost * 100.0;
    println!(
        "Ribbon found {} at ${:.2}/hr after {} evaluations ({} QoS-violating samples)",
        best.pool.describe(),
        best.hourly_cost,
        trace.len(),
        trace.num_violations()
    );
    println!("Cost saving over the homogeneous optimum: {saving:.1}%");
}
