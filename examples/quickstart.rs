//! Quickstart: find a cost-optimal heterogeneous pool for the MT-WND recommendation
//! workload — declaratively.
//!
//! The whole experiment is one TOML document (the same format the `ribbon` CLI reads
//! from `scenarios/*.toml`): workload, planner, budget. The scenario façade compiles it
//! into the evaluator/search machinery and returns one structured report.
//!
//! Run: `cargo run --release -p ribbon --example quickstart`

use ribbon::scenario::ScenarioSpec;

const SPEC: &str = r#"
    [scenario]
    name = "quickstart"
    description = "MT-WND: cheapest diverse pool meeting 20 ms p99"
    mode = "plan"
    seed = 42

    [workload]
    model = "MT-WND"
    num_queries = 2000

    [planner]
    name = "ribbon"
    budget = 30
    baseline = true

    [evaluator]
    max_per_type = 10
"#;

fn main() {
    let spec = ScenarioSpec::from_toml_str(SPEC).expect("valid spec");
    let scenario = spec
        .compile()
        .expect("compiles against the builtin catalog");
    println!(
        "Workload: {} | QoS {} | {:.0} queries/s | pool {:?}",
        scenario.workload.model,
        scenario.policy.describe(),
        scenario.workload.qps,
        scenario
            .workload
            .diverse_pool
            .iter()
            .map(|t| t.family())
            .collect::<Vec<_>>()
    );

    let report = scenario.run().expect("the search runs");
    for line in report.summary_lines() {
        println!("{line}");
    }

    // The report is structured data, not just text: pull out what you need.
    let plan = report.plan.expect("plan mode fills the plan section");
    if let (Some(pool), Some(cost), Some(saving)) =
        (&plan.best_pool, plan.best_hourly_cost, plan.saving_percent)
    {
        println!(
            "\nRibbon found {pool} at ${cost:.2}/hr — {saving:.1}% cheaper than the \
             homogeneous optimum, with {} of {} sampled configurations violating QoS.",
            plan.violations,
            plan.trace.len()
        );
    }
}
