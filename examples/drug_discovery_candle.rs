//! Scientific-computing scenario: serving the CANDLE drug-response model (the paper's
//! drug-discovery workload) under a 40 ms p99 target, and how much further the cost drops
//! when the operator can accept a relaxed p98 target (the paper's Fig. 15 observation).
//!
//! Run: `cargo run --release -p ribbon --example drug_discovery_candle`

use ribbon::evaluator::EvaluatorSettings;
use ribbon::prelude::*;
use ribbon::search::RibbonSettings;

fn search_at(workload: &Workload, label: &str) {
    let evaluator = ConfigEvaluator::new(
        workload,
        EvaluatorSettings {
            max_per_type: 10,
            ..Default::default()
        },
    );
    let homogeneous = homogeneous_optimum(&evaluator, 12).expect("homogeneous baseline");
    let ribbon = RibbonSearch::new(RibbonSettings {
        max_evaluations: 35,
        ..RibbonSettings::fast()
    });
    let trace = ribbon.run(&evaluator, 11);
    match trace.best_satisfying() {
        Some(best) => {
            let saving =
                (homogeneous.hourly_cost - best.hourly_cost) / homogeneous.hourly_cost * 100.0;
            println!(
                "{label}: homogeneous {} (${:.2}/hr) -> diverse {} (${:.2}/hr), saving {:.1}% after {} evaluations",
                homogeneous.evaluation.pool.describe(),
                homogeneous.hourly_cost,
                best.pool.describe(),
                best.hourly_cost,
                saving,
                trace.len()
            );
        }
        None => println!("{label}: no QoS-satisfying diverse configuration found"),
    }
}

fn main() {
    let mut workload = Workload::standard(ModelKind::Candle);
    workload.num_queries = 2000;
    println!(
        "CANDLE drug-response inference, {:.0} queries/s, diverse pool {:?}\n",
        workload.qps,
        workload
            .diverse_pool
            .iter()
            .map(|t| t.family())
            .collect::<Vec<_>>()
    );

    search_at(&workload, "p99 target (default)");
    search_at(&workload.with_qos_rate(0.98), "p98 target (relaxed)");

    println!("\nExpected: the relaxed p98 target admits more of the cheap general-purpose");
    println!("instances into the pool, so the saving over the homogeneous optimum grows.");
}
