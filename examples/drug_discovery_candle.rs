//! Scientific-computing scenario: serving the CANDLE drug-response model (the paper's
//! drug-discovery workload) under a 40 ms p99 target, and how much further the cost drops
//! when the operator can accept a relaxed p98 target (the paper's Fig. 15 observation).
//!
//! The two settings differ by exactly one line of the declarative spec — the `[qos]`
//! target rate — which is the point of the scenario façade: a new experiment is a new
//! file, not new wiring.
//!
//! Run: `cargo run --release -p ribbon --example drug_discovery_candle`

use ribbon::scenario::ScenarioSpec;

fn spec_at(target_rate: f64) -> ScenarioSpec {
    ScenarioSpec::from_toml_str(&format!(
        r#"
        [scenario]
        name = "candle-p{:.0}"
        mode = "plan"
        seed = 11

        [workload]
        model = "CANDLE"
        num_queries = 2000

        [qos]
        latency_ms = 40.0
        target_rate = {target_rate}

        [planner]
        budget = 35
        baseline = true

        [evaluator]
        max_per_type = 10
        "#,
        target_rate * 100.0
    ))
    .expect("valid spec")
}

fn search_at(target_rate: f64, label: &str) {
    let scenario = spec_at(target_rate).compile().expect("compiles");
    let report = scenario.run().expect("the search runs");
    let plan = report.plan.expect("plan section");
    match (&plan.best_pool, plan.best_hourly_cost) {
        (Some(pool), Some(cost)) => {
            let baseline = plan.baseline.as_ref().expect("homogeneous baseline");
            println!(
                "{label}: homogeneous {} (${:.2}/hr) -> diverse {} (${:.2}/hr), \
                 saving {:.1}% after {} evaluations",
                baseline.pool,
                baseline.hourly_cost,
                pool,
                cost,
                plan.saving_percent.unwrap_or(0.0),
                plan.trace.len()
            );
        }
        _ => println!("{label}: no QoS-satisfying diverse configuration found"),
    }
}

fn main() {
    let scenario = spec_at(0.99).compile().expect("compiles");
    println!(
        "CANDLE drug-response inference, {:.0} queries/s, diverse pool {:?}\n",
        scenario.workload.qps,
        scenario
            .workload
            .diverse_pool
            .iter()
            .map(|t| t.family())
            .collect::<Vec<_>>()
    );

    search_at(0.99, "p99 target (default)");
    search_at(0.98, "p98 target (relaxed)");

    println!("\nExpected: the relaxed p98 target admits more of the cheap general-purpose");
    println!("instances into the pool, so the saving over the homogeneous optimum grows.");
}
