//! Load-spike adaptation: converge on an optimal DIEN pool, apply a 1.5x load increase, and
//! watch Ribbon warm-start the new search from its old exploration record (pruning the
//! configurations that cannot possibly serve the new load and injecting estimated objective
//! values for them).
//!
//! Run: `cargo run --release -p ribbon --example load_spike_adaptation`

use ribbon::adapt::LoadAdapter;
use ribbon::evaluator::EvaluatorSettings;
use ribbon::prelude::*;
use ribbon::search::RibbonSettings;

fn main() {
    let mut workload = Workload::standard(ModelKind::Dien);
    workload.num_queries = 2000;

    let adapter = LoadAdapter::new(
        RibbonSettings {
            max_evaluations: 25,
            ..RibbonSettings::fast()
        },
        EvaluatorSettings {
            max_per_type: 10,
            ..Default::default()
        },
    );
    let outcome = adapter
        .run(&workload, 1.5, 2024)
        .expect("initial search converges");

    println!(
        "Before the spike: optimal pool {} at ${:.2}/hr (found in {} evaluations)",
        outcome.initial_best.pool.describe(),
        outcome.initial_best.hourly_cost,
        outcome.initial_trace.len()
    );
    println!(
        "Load increases 1.5x; {} pseudo-observations injected from the old record.\n",
        outcome.estimates_injected
    );

    println!("step  config            violation%  cost(norm)  meets QoS");
    for (i, step) in outcome.adaptation_steps.iter().enumerate() {
        println!(
            "{:>4}  {:<16}  {:>9.2}  {:>9.2}  {}",
            i + 1,
            format!("{:?}", step.config),
            step.violation_percent,
            step.normalized_cost,
            if step.meets_qos { "yes" } else { "no" }
        );
    }

    match (&outcome.new_best, outcome.new_cost_ratio) {
        (Some(best), Some(ratio)) => println!(
            "\nNew optimum for the 1.5x load: {} at ${:.2}/hr — {:.2}x the pre-spike cost.",
            best.pool.describe(),
            best.hourly_cost,
            ratio
        ),
        _ => {
            println!("\nNo QoS-satisfying configuration found for the new load within the budget.")
        }
    }
}
