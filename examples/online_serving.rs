//! Online serving walkthrough: deploy the cheapest QoS-satisfying MT-WND pool, stream a
//! flash-crowd traffic trace through it, and watch the controller detect the sustained
//! violation, reconfigure mid-stream (make-before-break, with spin-up delays billed), and
//! scale back down once the crowd disperses.
//!
//! The run is declared as a scenario spec — the same document as the bundled
//! `scenarios/mtwnd_flash_crowd.toml` — and executed through the façade. For per-window
//! statistics beyond the report, drop down to `ribbon::online::serve_online` (see
//! `tests/online_serving.rs`).
//!
//! Run: `cargo run --release -p ribbon --example online_serving`

use ribbon::accounting::{max_pool_hourly_cost, OnlineCostReport};
use ribbon::scenario::ScenarioSpec;

const SPEC: &str = r#"
    [scenario]
    name = "mtwnd-flash-crowd"
    description = "MT-WND online serving through a flash crowd"
    mode = "serve"
    seed = 7

    [workload]
    model = "MT-WND"

    [planner]
    name = "ribbon"
    budget = 30

    [evaluator]
    bounds = [7, 4, 7]

    [traffic]
    scenario = "flash-crowd"
    duration_s = 60.0

    [online]
    window_s = 2.0
    spin_up_factor = 0.5
    planning_queries = 2500
"#;

fn main() {
    let scenario = ScenarioSpec::from_toml_str(SPEC)
        .expect("valid spec")
        .compile()
        .expect("compiles");
    let traffic = scenario.traffic.as_ref().expect("serve mode has traffic");
    println!(
        "Serving MT-WND ({}) under a flash-crowd trace: {:.0} qps base, {:.0} qps peak, \
         {:.0} s.\n",
        scenario.policy.describe(),
        scenario.workload.qps,
        traffic.arrivals.peak_qps(),
        traffic.duration_s,
    );

    let report = scenario.run().expect("the initial search finds a pool");
    let serve = report.serve.as_ref().expect("serve section");

    println!(
        "Deployed {} at ${:.2}/hr.\n",
        scenario
            .workload
            .diverse_pool_spec(&serve.initial_config)
            .describe(),
        scenario
            .workload
            .diverse_pool_spec(&serve.initial_config)
            .hourly_cost()
    );

    for e in &serve.events {
        println!(
            "window {:>2}: {} -> reconfigure to {:?} (planned for {:.0} qps), \
             transition ≈ ${:.4}",
            e.window_index, e.trigger, e.config, e.planned_qps, e.transition_cost_usd,
        );
    }

    let bounds = scenario
        .evaluator_settings
        .explicit_bounds
        .clone()
        .expect("this spec pins bounds");
    let max_cost = max_pool_hourly_cost(&scenario.workload.diverse_pool, &bounds);
    let cost_report = OnlineCostReport::new(serve.total_cost_usd, serve.duration_s, max_cost);
    println!(
        "\nWhole stream: {} queries over {} windows, satisfaction {}, total ${:.4} \
         over {:.0} s (mean ${:.2}/hr).",
        serve.queries,
        serve.windows,
        serve
            .satisfaction_rate
            .map_or("n/a".to_string(), |r| format!("{r:.4}")),
        serve.total_cost_usd,
        serve.duration_s,
        cost_report.mean_hourly_cost,
    );
    println!(
        "The naive always-max pool (${max_cost:.2}/hr) would absorb the spike too — at \
         {:.1}% more cost.",
        100.0 * (max_cost - cost_report.mean_hourly_cost) / cost_report.mean_hourly_cost,
    );
}
