//! Online serving walkthrough: deploy the cheapest QoS-satisfying MT-WND pool, stream a
//! flash-crowd traffic trace through it, and watch the controller detect the sustained
//! violation, reconfigure mid-stream (make-before-break, with spin-up delays billed), and
//! scale back down once the crowd disperses.
//!
//! Run: `cargo run --release -p ribbon --example online_serving`

use ribbon::accounting::{max_pool_hourly_cost, OnlineCostReport};
use ribbon::evaluator::EvaluatorSettings;
use ribbon::online::{serve_online, OnlineControllerSettings, OnlineRunSettings};
use ribbon::prelude::*;
use ribbon::search::RibbonSettings;
use ribbon_models::TrafficScenario;

fn main() {
    let workload = Workload::standard(ModelKind::MtWnd);
    let bounds = vec![7u32, 4, 7];
    let settings = OnlineRunSettings {
        initial_search: RibbonSettings {
            max_evaluations: 30,
            ..RibbonSettings::fast()
        },
        controller: OnlineControllerSettings {
            evaluator: EvaluatorSettings {
                explicit_bounds: Some(bounds.clone()),
                ..Default::default()
            },
            planning_queries: 2500,
            ..Default::default()
        },
        window: WindowConfig::tumbling(2.0),
        spin_up_factor: 0.5,
    };

    let traffic = TrafficScenario::FlashCrowd.stream(&workload, 60.0);
    println!(
        "Serving MT-WND ({}ms p99) under a {} trace: {:.0} qps base, {:.0} qps peak, 60 s.\n",
        workload.qos.latency_target_s * 1000.0,
        TrafficScenario::FlashCrowd,
        workload.qps,
        workload.qps * TrafficScenario::FlashCrowd.peak_factor(),
    );

    let outcome = serve_online(&workload, &traffic, &settings, 7)
        .expect("the initial search finds a satisfying pool");

    println!(
        "Deployed {} at ${:.2}/hr.\n",
        workload
            .diverse_pool_spec(&outcome.initial_config)
            .describe(),
        workload
            .diverse_pool_spec(&outcome.initial_config)
            .hourly_cost()
    );

    println!("window  t (s)        queries  satisfaction  offered qps  pool $/hr");
    for w in &outcome.windows {
        let marker = if outcome.events.iter().any(|e| e.window_index == w.index) {
            "  <- reconfigure"
        } else {
            ""
        };
        println!(
            "{:>6}  [{:>4.0},{:>4.0})  {:>7}  {}  {:>11.0}  {:>9.2}{marker}",
            w.index,
            w.start_s,
            w.end_s,
            w.num_queries,
            match w.satisfaction_rate {
                Some(r) => format!("{:>12.4}", r),
                None => "     (empty)".to_string(),
            },
            w.arrival_qps,
            w.pool_hourly_cost,
        );
    }

    println!();
    for e in &outcome.events {
        println!(
            "window {:>2}: {:?} -> reconfigure to {:?} (planned for {:.0} qps), \
             {} launched / {} retired, ready at {:.1} s, transition ≈ ${:.4}",
            e.window_index,
            e.trigger,
            e.config,
            e.planned_qps,
            e.applied.launched,
            e.applied.retired + e.completed.as_ref().map_or(0, |c| c.retired),
            e.applied.ready_at_s,
            e.transition_cost_usd,
        );
    }

    let max_cost = max_pool_hourly_cost(&workload.diverse_pool, &bounds);
    let report = OnlineCostReport::new(outcome.total_cost_usd, outcome.duration_s, max_cost);
    println!(
        "\nWhole stream: {} queries, satisfaction {:.4}, total ${:.4} over {:.0} s \
         (mean ${:.2}/hr).",
        outcome.stats.num_queries,
        outcome.stats.satisfaction_rate().unwrap_or(f64::NAN),
        outcome.total_cost_usd,
        outcome.duration_s,
        report.mean_hourly_cost,
    );
    println!(
        "The naive always-max pool ({} at ${:.2}/hr) would absorb the spike too — at \
         {:.1}% more cost.",
        PoolSpec::from_counts(&workload.diverse_pool, &bounds).describe(),
        max_cost,
        100.0 * (max_cost - report.mean_hourly_cost) / report.mean_hourly_cost,
    );
}
