//! Recommendation-model serving: compare Ribbon against the competing planners
//! (Hill-Climb, RANDOM, RSM) on the MT-WND and DIEN workloads that motivate the paper —
//! the programmatic equivalent of `ribbon compare scenario.toml --planners ...`.
//!
//! For each model the example reports, per planner: how many configurations were
//! evaluated, how many violated QoS, and the cheapest QoS-satisfying pool found.
//!
//! Run: `cargo run --release -p ribbon --example recommender_serving`

use ribbon::scenario::{planner_by_name, ScenarioSpec, ALL_PLANNER_NAMES};

fn spec_for(model: &str) -> ScenarioSpec {
    ScenarioSpec::from_toml_str(&format!(
        r#"
        [scenario]
        name = "recommender-{model}"
        mode = "plan"
        seed = 7

        [workload]
        model = "{model}"
        num_queries = 2000

        [planner]
        budget = 40
        baseline = true

        [evaluator]
        max_per_type = 10
        "#
    ))
    .expect("valid spec")
}

fn main() {
    for model in ["MT-WND", "DIEN"] {
        let scenario = spec_for(model).compile().expect("compiles");
        println!("\n=== {} — QoS {} ===", model, scenario.policy.describe());

        // Every planner but `exhaustive` (which would sweep the full lattice).
        for name in ALL_PLANNER_NAMES.iter().filter(|n| **n != "exhaustive") {
            let planner = planner_by_name(name, &scenario).expect("known planner");
            let report = scenario.run_with(planner.as_ref()).expect("plan runs");
            let plan = report.plan.expect("plan section");
            match (&plan.best_pool, plan.best_hourly_cost, plan.saving_percent) {
                (Some(pool), Some(cost), saving) => println!(
                    "{:<11} {:>2} evals, {:>2} violations -> best {} ${:.2}/hr{}",
                    report.planner,
                    plan.trace.len(),
                    plan.violations,
                    pool,
                    cost,
                    saving.map_or(String::new(), |s| format!(" ({s:+.1}% vs homogeneous)")),
                ),
                _ => println!(
                    "{:<11} {:>2} evals, {:>2} violations -> no QoS-satisfying pool found",
                    report.planner,
                    plan.trace.len(),
                    plan.violations
                ),
            }
        }
    }
}
