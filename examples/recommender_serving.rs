//! Recommendation-model serving: compare Ribbon against the competing search strategies
//! (Hill-Climb, RANDOM, RSM) on the MT-WND and DIEN workloads that motivate the paper.
//!
//! For each model the example reports, per strategy: how many configurations were evaluated,
//! how many violated QoS, and the cheapest QoS-satisfying pool found.
//!
//! Run: `cargo run --release -p ribbon --example recommender_serving`

use ribbon::accounting::TraceMetrics;
use ribbon::evaluator::EvaluatorSettings;
use ribbon::prelude::*;
use ribbon::search::RibbonSettings;

fn main() {
    let budget = 40;
    for model in [ModelKind::MtWnd, ModelKind::Dien] {
        let mut workload = Workload::standard(model);
        workload.num_queries = 2000;
        let evaluator = ConfigEvaluator::new(
            &workload,
            EvaluatorSettings {
                max_per_type: 10,
                ..Default::default()
            },
        );
        let homogeneous = homogeneous_optimum(&evaluator, 12).expect("homogeneous baseline");
        println!(
            "\n=== {} — QoS {:.0} ms p99, homogeneous baseline {} (${:.2}/hr) ===",
            model,
            workload.qos.latency_target_s * 1000.0,
            homogeneous.evaluation.pool.describe(),
            homogeneous.hourly_cost
        );

        let strategies: Vec<Box<dyn SearchStrategy>> = vec![
            Box::new(RibbonSearch::new(RibbonSettings {
                max_evaluations: budget,
                ..RibbonSettings::fast()
            })),
            Box::new(HillClimbSearch::new(budget)),
            Box::new(RandomSearch::new(budget)),
            Box::new(ResponseSurfaceSearch::new(budget)),
        ];
        for strategy in strategies {
            let trace = strategy.run_search(&evaluator, 7);
            let metrics = TraceMetrics::new(&trace, homogeneous.hourly_cost);
            match (&metrics.best_config, metrics.best_cost, metrics.saving_percent) {
                (Some(cfg), Some(cost), Some(saving)) => println!(
                    "{:<11} {:>2} evals, {:>2} violations -> best {:?} ${:.2}/hr ({:+.1}% vs homogeneous)",
                    strategy.name(),
                    metrics.num_evaluations,
                    metrics.num_violations,
                    cfg,
                    cost,
                    saving
                ),
                _ => println!(
                    "{:<11} {:>2} evals, {:>2} violations -> no QoS-satisfying pool found",
                    strategy.name(),
                    metrics.num_evaluations,
                    metrics.num_violations
                ),
            }
        }
    }
}
